"""Tests for the benchmark regression tracker (repro.obs.history).

Rows, dedupe, rolling-median baselines, the time-like-only regression
gate, and the ``repro bench-history`` CLI — including the acceptance
scenario: a synthetic 2x slowdown must flip ``--check`` to a non-zero
exit while an unchanged re-run stays green.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import MetricsRegistry, Trace, build_report, save_report
from repro.obs.history import (
    HISTORY_VERSION,
    append_rows,
    compute_deltas,
    extract_measures,
    find_regressions,
    history_row,
    is_time_measure,
    load_history,
)


def make_report(resolve_s=1.0, pairs=100, scale=0.1, dataset="ios"):
    """A synthetic run report with a controllable resolve wall time."""
    trace = Trace()
    with trace.span("resolve"):
        pass
    trace.roots[0].elapsed = resolve_s
    metrics = MetricsRegistry()
    metrics.inc("blocking.candidate_pairs", pairs)
    metrics.observe("resolve.latency_seconds", resolve_s, buckets=[0.5, 2.0])
    return build_report(
        trace,
        metrics,
        meta={
            "bench": "bench_fake",
            "scale": scale,
            "dataset": dataset,
            "time_total_s": resolve_s,
            # Nested numeric metadata (per-run raw timings) must land in
            # the measures, never in the config fingerprint.
            "runs": {"0": {"seconds": resolve_s}},
        },
    )


def make_row(resolve_s=1.0, n=0, **kwargs):
    return history_row(
        make_report(resolve_s=resolve_s, **kwargs),
        source=f"results/bench_fake.metrics.json#{n}",
        recorded_at=f"2026-08-0{(n % 9) + 1}T00:00:00+00:00",
        sha=f"sha{n}",
    )


class TestMeasures:
    def test_extract_flattens_every_block(self):
        measures = extract_measures(make_report(resolve_s=2.0, pairs=7))
        assert measures["span:resolve"] == pytest.approx(2.0)
        assert measures["meta:time_total_s"] == pytest.approx(2.0)
        assert measures["meta:scale"] == pytest.approx(0.1)
        assert measures["meta:runs.0.seconds"] == pytest.approx(2.0)
        assert measures["counter:blocking.candidate_pairs"] == 7.0
        assert measures["hist:resolve.latency_seconds.count"] == 1.0
        assert measures["hist:resolve.latency_seconds.mean"] == pytest.approx(2.0)

    def test_time_measure_classification(self):
        assert is_time_measure("span:resolve")
        assert is_time_measure("meta:time_total_s")
        assert is_time_measure("hist:query.latency_seconds.p95")
        assert not is_time_measure("counter:blocking.candidate_pairs")
        assert not is_time_measure("meta:scale")

    def test_fingerprint_ignores_measurements(self):
        # Different wall times and nested timings, same configuration →
        # same fingerprint, so the runs form one comparable series.
        fast = make_row(resolve_s=0.5, n=0)
        slow = make_row(resolve_s=5.0, n=1)
        assert fast["fingerprint"] == slow["fingerprint"]
        other = make_row(resolve_s=0.5, n=2, dataset="kil")
        assert other["fingerprint"] != fast["fingerprint"]

    def test_explicit_fingerprint_wins(self):
        report = make_report()
        report["meta"]["config_fingerprint"] = "pinned"
        assert history_row(report, "s", "t")["fingerprint"] == "pinned"

    def test_row_shape(self):
        row = make_row()
        assert row["version"] == HISTORY_VERSION
        assert row["bench"] == "bench_fake"
        assert row["scale"] == 0.1
        assert row["git_sha"] == "sha0"
        assert len(row["source_sha256"]) == 64


class TestAppendAndLoad:
    def test_append_and_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        rows = [make_row(n=0), make_row(resolve_s=1.1, n=1)]
        assert append_rows(path, rows) == rows
        assert load_history(path) == rows

    def test_append_is_idempotent(self, tmp_path):
        path = tmp_path / "history.jsonl"
        report = make_report()
        assert len(append_rows(path, [history_row(report, "s", "t1")])) == 1
        # Same artefact again (identical report → identical sha) skips,
        # even when re-recorded at a different time.
        assert append_rows(path, [history_row(report, "s", "t2")]) == []
        assert len(load_history(path)) == 1

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_load_rejects_corruption(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"version": 1, "bench": "a"\n')
        with pytest.raises(ValueError, match="corrupt"):
            load_history(path)
        path.write_text(json.dumps({"version": 99, "bench": "a"}) + "\n")
        with pytest.raises(ValueError, match="version"):
            load_history(path)


class TestDeltasAndRegressions:
    def test_baseline_is_median_of_window(self):
        rows = [make_row(resolve_s=s, n=i)
                for i, s in enumerate([1.0, 3.0, 2.0, 2.0])]
        (entry,) = compute_deltas(rows, window=5)
        comparison = entry["measures"]["span:resolve"]
        assert entry["baseline_runs"] == 3
        assert comparison["baseline"] == pytest.approx(2.0)  # median(1, 3, 2)
        assert comparison["ratio"] == pytest.approx(1.0)

    def test_first_run_has_no_baseline(self):
        (entry,) = compute_deltas([make_row()])
        assert entry["baseline_runs"] == 0 and entry["measures"] == {}

    def test_series_split_by_scale(self):
        rows = [make_row(n=0, scale=0.1), make_row(n=1, scale=1.0)]
        deltas = compute_deltas(rows)
        assert len(deltas) == 2
        assert all(entry["baseline_runs"] == 0 for entry in deltas)

    def test_synthetic_2x_slowdown_is_caught(self):
        rows = [make_row(resolve_s=1.0, n=0), make_row(resolve_s=2.0, n=1)]
        regressions = find_regressions(compute_deltas(rows))
        names = {r["measure"] for r in regressions}
        assert "span:resolve" in names and "meta:time_total_s" in names
        worst = next(r for r in regressions if r["measure"] == "span:resolve")
        assert worst["ratio"] == pytest.approx(2.0)
        assert worst["bench"] == "bench_fake"

    def test_counters_never_regress(self):
        # A counter doubling is a workload change, not a perf regression.
        rows = [make_row(n=0, pairs=100), make_row(n=1, pairs=200)]
        assert find_regressions(compute_deltas(rows)) == []

    def test_min_delta_filters_noise(self):
        # 3x ratio but only 2 ms absolute: below the floor, not a page.
        rows = [make_row(resolve_s=0.001, n=0), make_row(resolve_s=0.003, n=1)]
        assert find_regressions(compute_deltas(rows)) == []
        assert find_regressions(compute_deltas(rows), min_delta=0.0)


class TestBenchHistoryCli:
    def _emit(self, results_dir, resolve_s):
        results_dir.mkdir(exist_ok=True)
        save_report(
            make_report(resolve_s=resolve_s),
            results_dir / "bench_fake.metrics.json",
        )

    def _run(self, results_dir, history, sha, check=False):
        argv = [
            "bench-history",
            "--results-dir", str(results_dir),
            "--history", str(history),
            "--sha", sha,
        ]
        if check:
            argv.append("--check")
        return main(argv)

    def test_append_dedupe_and_check(self, tmp_path, capsys):
        results, history = tmp_path / "results", tmp_path / "history.jsonl"

        self._emit(results, resolve_s=1.0)
        assert self._run(results, history, "aaa111") == 0
        assert "1 new" in capsys.readouterr().out
        # Unchanged artefact: re-run appends nothing and stays green.
        assert self._run(results, history, "aaa111", check=True) == 0
        assert "0 new" in capsys.readouterr().out
        assert len(load_history(history)) == 1

        # A mild change appends a second row and passes the gate.
        self._emit(results, resolve_s=1.1)
        assert self._run(results, history, "bbb222", check=True) == 0
        out = capsys.readouterr().out
        assert "baseline of 1" in out and "regression check passed" in out
        assert len(load_history(history)) == 2

        # The acceptance scenario: a synthetic 2x slowdown fails --check.
        self._emit(results, resolve_s=2.2)
        assert self._run(results, history, "ccc333", check=True) == 3
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "span:resolve" in out

    def test_empty_results_dir_is_not_an_error(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        assert self._run(results, tmp_path / "h.jsonl", "abc") == 0
        assert "no *.metrics.json artefacts" in capsys.readouterr().err
