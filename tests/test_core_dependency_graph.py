"""Tests for dependency-graph construction (G_D)."""

import pytest

from repro.blocking.candidates import CandidatePair
from repro.core.config import SnapsConfig
from repro.core.dependency_graph import build_dependency_graph
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


@pytest.fixture()
def two_family_dataset():
    """Two birth certificates of the same couple (a sibling pair)."""
    records = [
        Record(1, 1, Role.BB, {"first_name": "john", "surname": "ross",
                               "gender": "m", "event_year": "1870"}, 11),
        Record(2, 1, Role.BM, {"first_name": "mary", "surname": "ross",
                               "event_year": "1870"}, 12),
        Record(3, 1, Role.BF, {"first_name": "angus", "surname": "ross",
                               "event_year": "1870"}, 13),
        Record(4, 2, Role.BB, {"first_name": "flora", "surname": "ross",
                               "gender": "f", "event_year": "1873"}, 14),
        Record(5, 2, Role.BM, {"first_name": "mary", "surname": "ross",
                               "event_year": "1873"}, 12),
        Record(6, 2, Role.BF, {"first_name": "angus", "surname": "ross",
                               "event_year": "1873"}, 13),
    ]
    certs = [
        Certificate(1, CertificateType.BIRTH, 1870, "uig",
                    {Role.BB: 1, Role.BM: 2, Role.BF: 3}),
        Certificate(2, CertificateType.BIRTH, 1873, "uig",
                    {Role.BB: 4, Role.BM: 5, Role.BF: 6}),
    ]
    return Dataset("fam", records, certs)


class TestBuildDependencyGraph:
    def test_nodes_created_per_candidate(self, two_family_dataset):
        pairs = [CandidatePair(2, 5), CandidatePair(3, 6)]
        graph = build_dependency_graph(two_family_dataset, pairs, SnapsConfig())
        assert graph.n_relational == 2
        assert set(graph.nodes) == {(2, 5), (3, 6)}

    def test_atomic_nodes_require_threshold(self, two_family_dataset):
        pairs = [CandidatePair(2, 5)]
        graph = build_dependency_graph(two_family_dataset, pairs, SnapsConfig())
        node = graph.node((2, 5))
        assert node.atomic["first_name"].similarity == 1.0
        assert node.atomic["surname"].similarity == 1.0

    def test_dissimilar_values_get_no_atomic_node(self, two_family_dataset):
        pairs = [CandidatePair(1, 4)]  # john vs flora
        graph = build_dependency_graph(two_family_dataset, pairs, SnapsConfig())
        assert "first_name" not in graph.node((1, 4)).atomic

    def test_groups_by_certificate_pair(self, two_family_dataset):
        pairs = [CandidatePair(2, 5), CandidatePair(3, 6)]
        graph = build_dependency_graph(two_family_dataset, pairs, SnapsConfig())
        assert len(graph.groups) == 1
        group = graph.groups[(1, 2)]
        assert sorted(group.node_keys) == [(2, 5), (3, 6)]

    def test_relationship_edges_between_parent_nodes(self, two_family_dataset):
        pairs = [CandidatePair(2, 5), CandidatePair(3, 6)]
        graph = build_dependency_graph(two_family_dataset, pairs, SnapsConfig())
        group = graph.groups[(1, 2)]
        # Mother node and father node are linked by the spouse relation.
        assert any(rel == "Sof" for _, rel, _ in group.edges)

    def test_mother_baby_edge(self, two_family_dataset):
        pairs = [CandidatePair(1, 4), CandidatePair(2, 5)]
        graph = build_dependency_graph(two_family_dataset, pairs, SnapsConfig())
        group = graph.groups[(1, 2)]
        assert ((1, 4) in {e[0] for e in group.edges} or
                (1, 4) in {e[2] for e in group.edges})

    def test_n_atomic_counts_distinct_value_pairs(self, two_family_dataset):
        pairs = [CandidatePair(2, 5), CandidatePair(3, 6)]
        graph = build_dependency_graph(two_family_dataset, pairs, SnapsConfig())
        # (mary,mary), (angus,angus) first names; (ross,ross) surname is
        # shared by both nodes → counted once.
        assert graph.n_atomic == 3

    def test_alive_group_nodes_excludes_merged(self, two_family_dataset):
        pairs = [CandidatePair(2, 5), CandidatePair(3, 6)]
        graph = build_dependency_graph(two_family_dataset, pairs, SnapsConfig())
        group = graph.groups[(1, 2)]
        graph.node((2, 5)).merged = True
        alive = graph.alive_group_nodes(group)
        assert [n.key() for n in alive] == [(3, 6)]

    def test_records_of(self, two_family_dataset):
        pairs = [CandidatePair(2, 5)]
        graph = build_dependency_graph(two_family_dataset, pairs, SnapsConfig())
        a, b = graph.records_of(graph.node((2, 5)))
        assert (a.record_id, b.record_id) == (2, 5)
