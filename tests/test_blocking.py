"""Tests for blocking strategies and candidate generation."""

import pytest

from repro.blocking import (
    LshBlocker,
    MinHasher,
    PhoneticBlocker,
    StandardBlocker,
    block_key_pairs,
    generate_candidate_pairs,
)
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
from repro.data.records import Record
from repro.data.roles import Role


def _record(rid, first, surname, role=Role.BM, cert=None, year=1880, person=0):
    return Record(
        rid,
        cert if cert is not None else rid,
        role,
        {"first_name": first, "surname": surname, "event_year": str(year)},
        person,
    )


class TestStandardBlocker:
    def test_same_prefixes_same_key(self):
        blocker = StandardBlocker()
        a = _record(1, "mary", "macdonald")
        b = _record(2, "margaret", "macdonell")
        # Same initial 'm' and same surname prefix 'macd'.
        assert blocker.block_keys(a) == blocker.block_keys(b)

    def test_missing_attribute_yields_no_key(self):
        blocker = StandardBlocker()
        record = _record(1, "", "macdonald")
        assert blocker.block_keys(record) == []

    def test_whole_value_with_zero_length(self):
        blocker = StandardBlocker({"surname": 0})
        assert blocker.block_keys(_record(1, "x", "macleod")) == ["macleod"]

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            StandardBlocker({})


class TestPhoneticBlocker:
    def test_sound_alikes_share_keys(self):
        blocker = PhoneticBlocker()
        a = _record(1, "catherine", "macdonald")
        b = _record(2, "katherine", "mcdonald")
        assert set(blocker.block_keys(a)) & set(blocker.block_keys(b))

    def test_keys_per_attribute(self):
        blocker = PhoneticBlocker()
        keys = blocker.block_keys(_record(1, "mary", "beaton"))
        assert len(keys) == 2

    def test_empty_attributes_rejected(self):
        with pytest.raises(ValueError):
            PhoneticBlocker(attributes=())


class TestMinHasher:
    def test_signature_deterministic(self):
        h = MinHasher(seed=1)
        assert h.signature("macdonald") == h.signature("macdonald")

    def test_signature_length(self):
        h = MinHasher(n_hashes=32)
        assert len(h.signature("mary")) == 32

    def test_jaccard_estimate_tracks_true_similarity(self):
        h = MinHasher(n_hashes=256, seed=2)
        close = h.estimate_jaccard(h.signature("macdonald"), h.signature("mcdonald"))
        far = h.estimate_jaccard(h.signature("macdonald"), h.signature("stewart"))
        assert close > far

    def test_identical_strings_estimate_one(self):
        h = MinHasher()
        sig = h.signature("campbell")
        assert h.estimate_jaccard(sig, sig) == 1.0

    def test_mismatched_signature_lengths_rejected(self):
        h = MinHasher(n_hashes=8)
        g = MinHasher(n_hashes=16)
        with pytest.raises(ValueError):
            h.estimate_jaccard(h.signature("a"), g.signature("a"))

    def test_invalid_n_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(n_hashes=0)


class TestLshBlocker:
    def test_identical_names_always_co_blocked(self):
        blocker = LshBlocker()
        a = _record(1, "mary", "macdonald")
        b = _record(2, "mary", "macdonald")
        assert set(blocker.block_keys(a)) == set(blocker.block_keys(b))

    def test_similar_names_share_some_band(self):
        blocker = LshBlocker()
        a = _record(1, "catherine", "macdonald")
        b = _record(2, "cathrine", "macdonald")
        assert set(blocker.block_keys(a)) & set(blocker.block_keys(b))

    def test_unrelated_names_rarely_collide(self):
        blocker = LshBlocker()
        a = _record(1, "angus", "gunn")
        b = _record(2, "wilhelmina", "sutherland")
        assert not set(blocker.block_keys(a)) & set(blocker.block_keys(b))

    def test_missing_names_produce_no_keys(self):
        blocker = LshBlocker()
        assert blocker.block_keys(_record(1, "", "")) == []

    def test_s_curve_probability(self):
        blocker = LshBlocker(n_bands=16, rows_per_band=4)
        low = blocker.estimated_pair_probability(0.2)
        high = blocker.estimated_pair_probability(0.8)
        assert low < 0.3 < 0.9 < high

    def test_probability_bounds_validated(self):
        blocker = LshBlocker()
        with pytest.raises(ValueError):
            blocker.estimated_pair_probability(1.5)

    def test_variant_names_canonicalised(self):
        blocker = LshBlocker()
        a = _record(1, "effie", "grant")
        b = _record(2, "euphemia", "grant")
        assert set(blocker.block_keys(a)) & set(blocker.block_keys(b))


class TestCompositeBlocker:
    def test_union_of_keys(self):
        composite = CompositeBlocker([LshBlocker(), PhoneticNameKeyBlocker()])
        keys = composite.block_keys(_record(1, "mary", "ross"))
        assert any(key.startswith("0#") for key in keys)
        assert any(key.startswith("1#") for key in keys)

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            CompositeBlocker([])

    def test_phonetic_key_requires_both_names(self):
        blocker = PhoneticNameKeyBlocker()
        assert blocker.block_keys(_record(1, "mary", "")) == []


class TestBlockKeyPairs:
    def test_pairs_deduplicated_and_sorted(self):
        records = [
            _record(3, "mary", "ross"),
            _record(1, "mary", "ross"),
            _record(2, "mary", "ross"),
        ]
        pairs = list(block_key_pairs(records, LshBlocker()))
        assert sorted(pairs) == [(1, 2), (1, 3), (2, 3)]
        assert len(pairs) == len(set(pairs))


class TestGenerateCandidatePairs:
    def test_same_certificate_filtered(self, tiny_dataset):
        pairs = generate_candidate_pairs(tiny_dataset, LshBlocker())
        for pair in pairs:
            a = tiny_dataset.record(pair.rid_a)
            b = tiny_dataset.record(pair.rid_b)
            assert a.cert_id != b.cert_id

    def test_roles_and_gender_compatible(self, tiny_dataset):
        for pair in generate_candidate_pairs(tiny_dataset, LshBlocker()):
            a = tiny_dataset.record(pair.rid_a)
            b = tiny_dataset.record(pair.rid_b)
            if a.gender and b.gender:
                assert a.gender == b.gender

    def test_temporal_overlap_respected(self, tiny_dataset):
        slack = 2
        for pair in generate_candidate_pairs(
            tiny_dataset, LshBlocker(), temporal_slack_years=slack
        ):
            lo_a, hi_a = tiny_dataset.record(pair.rid_a).birth_range()
            lo_b, hi_b = tiny_dataset.record(pair.rid_b).birth_range()
            assert lo_a - slack <= hi_b and lo_b - slack <= hi_a

    def test_candidate_pair_ordering_enforced(self):
        from repro.blocking.candidates import CandidatePair

        with pytest.raises(ValueError):
            CandidatePair(5, 5)
        with pytest.raises(ValueError):
            CandidatePair(7, 3)

    def test_role_restriction(self, tiny_dataset):
        pairs = generate_candidate_pairs(
            tiny_dataset, LshBlocker(), roles=[Role.BM, Role.DM]
        )
        for pair in pairs:
            assert tiny_dataset.record(pair.rid_a).role in (Role.BM, Role.DM)
            assert tiny_dataset.record(pair.rid_b).role in (Role.BM, Role.DM)
