"""Sharded resolution: partition soundness, byte parity, sidecar integrity.

``repro.shard`` promises that shard count is an execution detail: any
``--shards N`` run is byte-identical to the serial path, every candidate
pair is resolved exactly once (in its shard xor in the boundary pass),
checkpoints cross shard counts, and the snapshot sidecar it leaves
behind lets incremental ingest re-resolve only dirty shards.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.checkpoint import ResolveCheckpointer
from repro.core.config import SnapsConfig
from repro.core.resolver import SnapsResolver
from repro.data.loader import save_dataset_csv
from repro.data.records import Dataset
from repro.data.synthetic import make_tiny_dataset, split_stream
from repro.faults import InjectedFault, injected
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace
from repro.parallel import ParallelConfig
from repro.shard import (
    ShardPlan,
    build_shard_plan,
    closure_components,
    resolve_sharded,
    split_pairs,
)
from repro.shard.boundary import BOUNDARY
from repro.store import SnapshotStore
from repro.store.incremental import IncrementalResolver
from repro.store.manifest import SnapshotIntegrityError, config_fingerprint
from repro.store.shards import (
    has_shard_sidecar,
    load_merge_manifest,
    load_shard_payload,
    load_shard_plan,
    verify_shard_sidecar,
    write_shard_sidecar,
)


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_dataset(seed=3)


@pytest.fixture(scope="module")
def pairs(tiny):
    return SnapsResolver(SnapsConfig()).block(tiny)


@pytest.fixture(scope="module")
def serial(tiny):
    return SnapsResolver(SnapsConfig()).resolve(
        tiny, parallel=ParallelConfig(workers=0)
    )


def clusters_of(result):
    return sorted(
        tuple(sorted(e.record_ids)) for e in result.entities.entities()
    )


# ----------------------------------------------------------------------
# Partitioner: closure components and the plan
# ----------------------------------------------------------------------


class TestClosureComponents:
    def test_components_partition_covered_records(self, tiny, pairs):
        components = closure_components(tiny, pairs)
        covered = {pair.rid_a for pair in pairs} | {pair.rid_b for pair in pairs}
        seen: set[int] = set()
        for component in components:
            assert not seen & set(component)
            seen.update(component)
        assert seen == covered

    def test_components_ordered_by_smallest_member(self, tiny, pairs):
        components = closure_components(tiny, pairs)
        heads = [component[0] for component in components]
        assert heads == sorted(heads)
        for component in components:
            assert component == sorted(component)

    def test_pair_endpoints_share_a_component(self, tiny, pairs):
        components = closure_components(tiny, pairs)
        home = {
            rid: index
            for index, component in enumerate(components)
            for rid in component
        }
        for pair in pairs:
            assert home[pair.rid_a] == home[pair.rid_b]

    def test_certificate_pair_groups_stay_whole(self, tiny, pairs):
        """Pairs sharing a certificate-pair group key must co-locate —
        the dependency graph gates merges on group evidence."""
        components = closure_components(tiny, pairs)
        home = {
            rid: index
            for index, component in enumerate(components)
            for rid in component
        }
        groups: dict[tuple[int, int], set[int]] = {}
        for pair in pairs:
            cert_a = tiny.records[pair.rid_a].cert_id
            cert_b = tiny.records[pair.rid_b].cert_id
            key = (min(cert_a, cert_b), max(cert_a, cert_b))
            groups.setdefault(key, set()).add(home[pair.rid_a])
        for key, homes in groups.items():
            assert len(homes) == 1, f"group {key} spans components {homes}"


class TestShardPlan:
    def test_build_keeps_components_whole(self, tiny, pairs):
        plan = build_shard_plan(tiny, pairs, 4)
        for component in closure_components(tiny, pairs):
            shards = {plan.shard_of[rid] for rid in component}
            assert len(shards) == 1

    def test_round_trip_and_fingerprint(self, tiny, pairs):
        plan = build_shard_plan(tiny, pairs, 3)
        clone = ShardPlan.from_dict(plan.to_dict())
        assert clone.n_shards == plan.n_shards
        assert clone.shard_records == plan.shard_records
        assert clone.fingerprint == plan.fingerprint
        again = build_shard_plan(tiny, pairs, 3)
        assert again.fingerprint == plan.fingerprint

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(2, [[1, 2], [2, 3]])

    def test_loads_are_balanced(self, tiny, pairs):
        """Greedy packing: no shard is empty while another holds more
        than the largest single component above the mean."""
        plan = build_shard_plan(tiny, pairs, 2)
        sizes = [len(records) for records in plan.shard_records]
        assert all(size > 0 for size in sizes)
        largest_component = max(
            len(c) for c in closure_components(tiny, pairs)
        )
        assert max(sizes) - min(sizes) <= largest_component


# ----------------------------------------------------------------------
# Routing: every pair exactly once, in-shard xor boundary
# ----------------------------------------------------------------------


class TestSplitPairs:
    def test_native_plan_has_no_boundary(self, tiny, pairs):
        plan = build_shard_plan(tiny, pairs, 4)
        shard_pairs, boundary = split_pairs(tiny, pairs, plan)
        assert boundary == []
        assert sum(len(p) for p in shard_pairs) == len(pairs)

    def test_shard_lists_preserve_global_order(self, tiny, pairs):
        plan = build_shard_plan(tiny, pairs, 4)
        shard_pairs, _ = split_pairs(tiny, pairs, plan)
        position = {id(pair): index for index, pair in enumerate(pairs)}
        for pair_list in shard_pairs:
            indexes = [position[id(pair)] for pair in pair_list]
            assert indexes == sorted(indexes)

    @given(seed=st.integers(0, 2**32 - 1), n_shards=st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_every_pair_routed_exactly_once(self, seed, n_shards):
        """Property: under ANY partition — including ones that tear
        components apart — each pair lands in exactly one shard list or
        the boundary, never both, never twice."""
        tiny = make_tiny_dataset(seed=3)
        pairs = SnapsResolver(SnapsConfig()).block(tiny)
        rng = random.Random(seed)
        buckets: list[list[int]] = [[] for _ in range(n_shards)]
        for rid in tiny.records:
            buckets[rng.randrange(n_shards)].append(rid)
        plan = ShardPlan(n_shards, [sorted(b) for b in buckets])
        shard_pairs, boundary = split_pairs(tiny, pairs, plan)
        routed = [pair for pair_list in shard_pairs for pair in pair_list]
        routed.extend(boundary)
        assert len(routed) == len(pairs)
        assert {id(pair) for pair in routed} == {id(pair) for pair in pairs}
        # Pairs routed into a shard really live there: their whole
        # component maps to that one shard.
        components = closure_components(tiny, pairs)
        home = {
            rid: index
            for index, component in enumerate(components)
            for rid in component
        }
        target: dict[int, int] = {}
        for shard, pair_list in enumerate(shard_pairs):
            for pair in pair_list:
                assert target.setdefault(home[pair.rid_a], shard) == shard
        for pair in boundary:
            assert home[pair.rid_a] not in target or len(
                {plan.shard_of.get(rid) for rid in components[home[pair.rid_a]]}
            ) != 1


# ----------------------------------------------------------------------
# Parity: sharded output == serial output
# ----------------------------------------------------------------------


class TestResolveShardedParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_clusters_match_serial(self, tiny, serial, n_shards):
        sharded = resolve_sharded(tiny, SnapsConfig(), n_shards=n_shards)
        assert clusters_of(sharded.result) == clusters_of(serial)
        assert sharded.result.n_atomic == serial.n_atomic
        assert sharded.result.n_relational == serial.n_relational
        assert sharded.n_boundary_pairs == 0

    def test_adversarial_plan_boundary_is_exact(self, tiny, serial, pairs):
        """A plan that tears every component apart forces all pairs
        through the boundary pass — output must still match serial."""
        rids = sorted(tiny.records)
        plan = ShardPlan(3, [sorted(rids[i::3]) for i in range(3)])
        sharded = resolve_sharded(tiny, SnapsConfig(), n_shards=3, plan=plan)
        assert sharded.n_boundary_pairs > 0
        assert clusters_of(sharded.result) == clusters_of(serial)

    def test_real_pool_matches_serial(self, tiny, serial):
        # oversubscribe forces an actual ProcessPoolExecutor even on a
        # single-core machine: fork shipping, IPC, result ordering.
        sharded = resolve_sharded(
            tiny, SnapsConfig(), n_shards=2, workers=2, oversubscribe=True
        )
        assert clusters_of(sharded.result) == clusters_of(serial)

    def test_telemetry_propagates_across_shards(self, tiny):
        trace, metrics = Trace(), MetricsRegistry()
        sharded = resolve_sharded(
            tiny, SnapsConfig(), n_shards=2, trace=trace, metrics=metrics,
            workers=2, oversubscribe=True,
        )
        counters = metrics.as_dict()["counters"]
        assert counters["shard.resolved"] == len(sharded.shard_stats)
        # Worker-side resolver metrics merged home across the pool.
        assert any(name.startswith("merging.") for name in counters)
        assert counters["resolver.runs"] == len(sharded.shard_stats)
        spans = json.dumps([root.as_dict() for root in trace.roots])
        assert "shard.resolve.s0" in spans and "shard.resolve.s1" in spans

    def test_shard_count_outside_config_fingerprint(self):
        # Shard count must never enter the fingerprint: checkpoints and
        # snapshot ids have to match across shard counts.
        assert "shard" not in json.dumps(
            SnapsConfig().__dict__, default=str
        ).lower()
        assert config_fingerprint(SnapsConfig()) == config_fingerprint(
            SnapsConfig()
        )


# ----------------------------------------------------------------------
# CLI byte identity + checkpoint compatibility across shard counts
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def stem(tmp_path_factory):
    root = tmp_path_factory.mktemp("shard-data")
    stem = root / "tiny"
    save_dataset_csv(make_tiny_dataset(seed=3), stem)
    return stem


@pytest.fixture(scope="module")
def serial_outputs(stem, tmp_path_factory):
    root = tmp_path_factory.mktemp("shard-serial")
    out, store = root / "graph.json", root / "store"
    assert main([
        "resolve", "--data", str(stem), "--workers", "0",
        "--out", str(out), "--snapshot-out", str(store),
    ]) == 0
    return out.read_bytes(), SnapshotStore(store).latest()


class TestCliByteIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_shards_byte_identical_to_serial(
        self, n_shards, stem, serial_outputs, tmp_path
    ):
        serial_bytes, serial_id = serial_outputs
        out, store = tmp_path / "graph.json", tmp_path / "store"
        assert main([
            "resolve", "--data", str(stem), "--shards", str(n_shards),
            "--out", str(out), "--snapshot-out", str(store),
        ]) == 0
        assert out.read_bytes() == serial_bytes
        # Content-addressed: identical artefacts, identical snapshot id.
        assert SnapshotStore(store).latest() == serial_id

    def test_checkpoint_taken_serial_resumes_sharded(
        self, stem, serial_outputs, tmp_path
    ):
        ckdir, out = tmp_path / "ck", tmp_path / "graph.json"
        with injected("checkpoint.saved.blocking:error:times=1"):
            with pytest.raises(InjectedFault):
                main([
                    "resolve", "--data", str(stem), "--workers", "0",
                    "--checkpoint", str(ckdir), "--out", str(out),
                ])
        assert not out.exists()
        assert main([
            "resolve", "--resume", str(ckdir), "--shards", "2",
            "--out", str(out),
        ]) == 0
        assert out.read_bytes() == serial_outputs[0]

    def test_checkpoint_taken_sharded_resumes_serial(
        self, stem, serial_outputs, tmp_path
    ):
        ckdir, out = tmp_path / "ck", tmp_path / "graph.json"
        with injected("shard.resolve.worker:error:times=1"):
            with pytest.raises(InjectedFault):
                main([
                    "resolve", "--data", str(stem), "--shards", "2",
                    "--checkpoint", str(ckdir), "--out", str(out),
                ])
        assert not out.exists()
        assert main([
            "resolve", "--resume", str(ckdir), "--workers", "0",
            "--out", str(out),
        ]) == 0
        assert out.read_bytes() == serial_outputs[0]


# ----------------------------------------------------------------------
# Chaos: a shard worker dies mid-resolve
# ----------------------------------------------------------------------


class TestChaosShardWorker:
    def test_worker_death_then_rerun_is_byte_identical(self, tiny, tmp_path):
        config = SnapsConfig()
        ckdir = tmp_path / "ck"
        checkpoint = ResolveCheckpointer.begin(ckdir, tiny, config)
        with injected("shard.resolve.worker:error:times=1"):
            with pytest.raises(InjectedFault):
                resolve_sharded(
                    tiny, config, n_shards=2, checkpoint=checkpoint
                )
        # Blocking survived the crash; the rerun restores it and must
        # reproduce the serial clusters exactly.
        checkpoint, restored, config = ResolveCheckpointer.resume(ckdir)
        assert "blocking" in checkpoint.completed_prefix()
        sharded = resolve_sharded(
            restored, config, n_shards=2, checkpoint=checkpoint
        )
        reference = SnapsResolver(config).resolve(
            tiny, parallel=ParallelConfig(workers=0)
        )
        assert clusters_of(sharded.result) == clusters_of(reference)

    def test_worker_error_in_real_pool_is_retried_to_parity(self, tiny):
        # Supervised execution (PR 9): a transient in-worker error no
        # longer kills the run — the shard is re-executed and the output
        # still matches serial exactly.
        with injected("shard.resolve.worker:error:times=1"):
            # fork inherits the installed injector into pool workers
            sharded = resolve_sharded(
                tiny, SnapsConfig(), n_shards=2, workers=2,
                oversubscribe=True,
            )
        reference = SnapsResolver(SnapsConfig()).resolve(
            tiny, parallel=ParallelConfig(workers=0)
        )
        assert clusters_of(sharded.result) == clusters_of(reference)

    def test_worker_error_past_budget_fails_loudly(self, tiny):
        from repro.supervise import SuperviseConfig, TaskQuarantinedError

        supervise = SuperviseConfig(max_task_retries=0)
        with injected("shard.resolve.worker:error:times=none"):
            with pytest.raises(TaskQuarantinedError):
                resolve_sharded(
                    tiny, SnapsConfig(), n_shards=2, workers=2,
                    oversubscribe=True,
                    parallel=ParallelConfig(supervise=supervise),
                )


# ----------------------------------------------------------------------
# Snapshot sidecar: write / load / verify / content addressing
# ----------------------------------------------------------------------


@pytest.fixture()
def sharded_snapshot(tiny, tmp_path):
    config = SnapsConfig()
    sharded = resolve_sharded(tiny, config, n_shards=2)
    store = SnapshotStore(tmp_path / "store")
    manifest = store.save(
        sharded.result,
        config=config,
        sidecar_writer=lambda directory: write_shard_sidecar(
            directory, sharded.plan, sharded.result.entities
        ),
    )
    return store, manifest, sharded


class TestShardSidecar:
    def test_round_trip(self, sharded_snapshot):
        store, manifest, sharded = sharded_snapshot
        directory = store.path_of(manifest.snapshot_id)
        assert has_shard_sidecar(directory)
        merge = load_merge_manifest(directory)
        assert merge["n_shards"] == 2
        assert merge["partition_fingerprint"] == sharded.plan.fingerprint
        plan = load_shard_plan(directory)
        assert plan.shard_records == sharded.plan.shard_records
        payload = load_shard_payload(directory, 0)
        assert payload["shard"] == 0
        assert payload["records"] == sharded.plan.shard_records[0]
        assert verify_shard_sidecar(directory) == []
        assert store.verify(manifest.snapshot_id) == []

    def test_corruption_detected(self, sharded_snapshot):
        store, manifest, _ = sharded_snapshot
        directory = store.path_of(manifest.snapshot_id)
        victim = directory / "shards" / "shard-0001.json"
        victim.write_text(victim.read_text().replace("records", "recorsd", 1))
        problems = verify_shard_sidecar(directory)
        assert problems and "shard-0001.json" in problems[0]
        assert any("shards:" in p for p in store.verify(manifest.snapshot_id))
        with pytest.raises(SnapshotIntegrityError):
            load_shard_payload(directory, 1)

    def test_snapshot_id_invariant_and_reuse_adopts_sidecar(
        self, tiny, serial, tmp_path
    ):
        config = SnapsConfig()
        store = SnapshotStore(tmp_path / "store")
        plain = store.save(serial, config=config)
        assert not has_shard_sidecar(store.path_of(plain.snapshot_id))
        sharded = resolve_sharded(tiny, config, n_shards=4)
        again = store.save(
            sharded.result,
            config=config,
            sidecar_writer=lambda directory: write_shard_sidecar(
                directory, sharded.plan, sharded.result.entities
            ),
        )
        # The sidecar is outside the content address: same id, and the
        # reuse branch moved the fresh sidecar into the stored snapshot.
        assert again.snapshot_id == plain.snapshot_id
        assert has_shard_sidecar(store.path_of(plain.snapshot_id))


# ----------------------------------------------------------------------
# Incremental ingest re-resolves only dirty shards
# ----------------------------------------------------------------------


class TestShardedIngest:
    @pytest.fixture()
    def lineage(self, tmp_path):
        base, deltas = split_stream(make_tiny_dataset(seed=3), n_batches=3)
        config = SnapsConfig()
        store = SnapshotStore(tmp_path / "store")
        sharded = resolve_sharded(base, config, n_shards=4)
        store.save(
            sharded.result,
            config=config,
            sidecar_writer=lambda directory: write_shard_sidecar(
                directory, sharded.plan, sharded.result.entities
            ),
        )
        return store, base, deltas

    @staticmethod
    def single_certificate_delta(delta: Dataset) -> Dataset:
        cert = next(iter(delta.certificates.values()))
        records = [delta.records[rid] for rid in cert.member_record_ids()]
        return Dataset("delta-small", records, [cert])

    def test_only_dirty_shards_reresolved(self, lineage):
        store, _, deltas = lineage
        small = self.single_certificate_delta(deltas[0])
        metrics = MetricsRegistry()
        result = IncrementalResolver(store).ingest(small, metrics=metrics)
        assert result.stats["shards_total"] == 4
        # One certificate dirties one component — one shard; the other
        # three are replayed without re-resolution.
        assert result.stats["shards_reresolved"] == 1
        counters = metrics.as_dict()["counters"]
        assert counters["store.ingest.shards_reresolved"] == 1
        assert counters["store.ingest.shards_skipped"] == 3

    def test_child_inherits_parent_partitioning(self, lineage):
        store, _, deltas = lineage
        result = IncrementalResolver(store).ingest(
            self.single_certificate_delta(deltas[0])
        )
        child = store.path_of(result.manifest.snapshot_id)
        assert has_shard_sidecar(child)
        assert load_merge_manifest(child)["n_shards"] == 4
        assert store.verify(result.manifest.snapshot_id) == []

    def test_shards_override_on_ingest(self, lineage):
        store, _, deltas = lineage
        result = IncrementalResolver(store).ingest(
            self.single_certificate_delta(deltas[0]), shards=2
        )
        child = store.path_of(result.manifest.snapshot_id)
        assert load_merge_manifest(child)["n_shards"] == 2
        assert result.stats["shards_total"] == 4  # counted vs the parent

    def test_chain_matches_full_resolve(self, lineage):
        store, base, deltas = lineage
        from repro.data.records import concat_datasets

        result = IncrementalResolver(store).ingest(deltas[0])
        combined = concat_datasets(base, deltas[0])
        full = SnapsResolver(SnapsConfig()).resolve(
            combined, parallel=ParallelConfig(workers=0)
        )
        assert clusters_of(result.linkage) == clusters_of(full)

    def test_unsharded_parent_stays_unsharded(self, tmp_path):
        base, deltas = split_stream(make_tiny_dataset(seed=3), n_batches=2)
        config = SnapsConfig()
        store = SnapshotStore(tmp_path / "store")
        store.save(SnapsResolver(config).resolve(base), config=config)
        result = IncrementalResolver(store).ingest(
            self.single_certificate_delta(deltas[0])
        )
        assert "shards_total" not in result.stats
        assert not has_shard_sidecar(store.path_of(result.manifest.snapshot_id))
