"""Shared fixtures: one small resolved dataset reused across test modules.

Session scope keeps the suite fast — the resolver runs once, and the
dozens of tests over its output (entities, pedigree graph, indices,
queries) share it read-only.
"""

from __future__ import annotations

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.data.synthetic import make_tiny_dataset
from repro.pedigree import build_pedigree_graph
from repro.query import QueryEngine


@pytest.fixture(scope="session")
def tiny_dataset():
    """A deterministic ~400-record dataset with complete ground truth."""
    return make_tiny_dataset(seed=3)


@pytest.fixture(scope="session")
def resolved_tiny(tiny_dataset):
    """The tiny dataset resolved by the default SNAPS pipeline."""
    return SnapsResolver(SnapsConfig()).resolve(tiny_dataset)


@pytest.fixture(scope="session")
def tiny_pedigree_graph(tiny_dataset, resolved_tiny):
    """Pedigree graph built from the resolved tiny dataset."""
    return build_pedigree_graph(tiny_dataset, resolved_tiny.entities)


@pytest.fixture(scope="session")
def tiny_query_engine(tiny_pedigree_graph):
    """Query engine over the tiny pedigree graph."""
    return QueryEngine(tiny_pedigree_graph)
