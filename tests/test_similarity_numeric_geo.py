"""Tests for numeric and geographic comparators."""

import pytest

from repro.similarity.geo import GeoPoint, geo_similarity, haversine_km
from repro.similarity.numeric import gaussian_year_similarity, max_abs_diff_similarity


class TestMaxAbsDiff:
    def test_equal_values(self):
        assert max_abs_diff_similarity(1880, 1880, max_diff=3) == 1.0

    def test_at_max_diff_is_zero(self):
        assert max_abs_diff_similarity(1880, 1883, max_diff=3) == 0.0

    def test_beyond_max_diff_is_zero(self):
        assert max_abs_diff_similarity(1880, 1980, max_diff=3) == 0.0

    def test_linear_midpoint(self):
        assert max_abs_diff_similarity(1880, 1882, max_diff=4) == 0.5

    def test_invalid_max_diff(self):
        with pytest.raises(ValueError):
            max_abs_diff_similarity(1, 2, max_diff=0)

    def test_symmetry(self):
        assert max_abs_diff_similarity(1, 3, 5) == max_abs_diff_similarity(3, 1, 5)


class TestGaussianYear:
    def test_equal_is_one(self):
        assert gaussian_year_similarity(1880, 1880) == 1.0

    def test_decreasing_with_distance(self):
        s1 = gaussian_year_similarity(1880, 1881)
        s2 = gaussian_year_similarity(1880, 1885)
        assert 1.0 > s1 > s2 > 0.0

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            gaussian_year_similarity(1, 2, sigma=0)


class TestGeo:
    def test_zero_distance(self):
        p = GeoPoint(57.4, -6.2)
        assert haversine_km(p, p) == 0.0
        assert geo_similarity(p, p) == 1.0

    def test_known_distance_portree_dunvegan(self):
        # ~23-24 km between the two Skye villages.
        portree = GeoPoint(57.413, -6.196)
        dunvegan = GeoPoint(57.436, -6.587)
        distance = haversine_km(portree, dunvegan)
        assert 20.0 < distance < 28.0

    def test_half_distance_gives_half_similarity(self):
        a = GeoPoint(0.0, 0.0)
        # ~5 km east at the equator is about 0.04494 degrees longitude.
        b = GeoPoint(0.0, 0.0449366)
        assert geo_similarity(a, b, half_distance_km=5.0) == pytest.approx(0.5, abs=0.01)

    def test_invalid_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)

    def test_invalid_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)

    def test_invalid_half_distance(self):
        with pytest.raises(ValueError):
            geo_similarity(GeoPoint(0, 0), GeoPoint(1, 1), half_distance_km=0)

    def test_symmetry(self):
        a, b = GeoPoint(57.4, -6.2), GeoPoint(57.6, -6.3)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))
