"""Generation-assignment tests for pedigree extraction (grandparents at
+2, grandchildren at -2, in-laws share generation)."""

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.data.population import PopulationConfig, PopulationSimulator
from repro.pedigree import build_pedigree_graph, extract_pedigree


@pytest.fixture(scope="module")
def three_generation_graph():
    """A longer simulation so grandparent chains exist."""
    config = PopulationConfig(
        start_year=1855, end_year=1901, n_founder_couples=15, seed=43
    )
    dataset = PopulationSimulator(config).run()
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    return build_pedigree_graph(dataset, result.entities)


def _entity_with_parents_and_children(graph):
    for entity in graph:
        if graph.parents(entity.entity_id) and graph.children(entity.entity_id):
            return entity
    pytest.skip("no middle-generation entity resolved")


class TestGenerations:
    def test_parents_at_plus_one(self, three_generation_graph):
        graph = three_generation_graph
        entity = _entity_with_parents_and_children(graph)
        pedigree = extract_pedigree(graph, entity.entity_id, 2)
        for parent in graph.parents(entity.entity_id):
            if parent in pedigree.entities:
                assert pedigree.generation_of(parent) == 1

    def test_children_at_minus_one(self, three_generation_graph):
        graph = three_generation_graph
        entity = _entity_with_parents_and_children(graph)
        pedigree = extract_pedigree(graph, entity.entity_id, 2)
        for child in graph.children(entity.entity_id):
            if child in pedigree.entities:
                assert pedigree.generation_of(child) == -1

    def test_grandparents_at_plus_two(self, three_generation_graph):
        graph = three_generation_graph
        entity = _entity_with_parents_and_children(graph)
        pedigree = extract_pedigree(graph, entity.entity_id, 2)
        found = False
        for parent in graph.parents(entity.entity_id):
            for grandparent in graph.parents(parent):
                if grandparent in pedigree.entities:
                    assert pedigree.generation_of(grandparent) == 2
                    found = True
        if not found:
            pytest.skip("no grandparent chain resolved in this sample")

    def test_spouse_shares_generation(self, three_generation_graph):
        graph = three_generation_graph
        entity = _entity_with_parents_and_children(graph)
        pedigree = extract_pedigree(graph, entity.entity_id, 2)
        for spouse in graph.spouses(entity.entity_id):
            if spouse in pedigree.entities:
                assert pedigree.generation_of(spouse) == 0

    def test_six_generation_extraction_bounded(self, three_generation_graph):
        """The DS database promises up to six generations; deep
        extraction must stay well-formed."""
        graph = three_generation_graph
        entity = _entity_with_parents_and_children(graph)
        deep = extract_pedigree(graph, entity.entity_id, 6)
        shallow = extract_pedigree(graph, entity.entity_id, 2)
        assert set(shallow.entities) <= set(deep.entities)
        assert all(0 <= hop <= 6 for hop in deep.hops.values())
