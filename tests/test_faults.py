"""Tests for the fault-tolerance substrate (repro.faults)."""

from __future__ import annotations

import pytest

from repro.faults import (
    CLOSED,
    DATA,
    HALF_OPEN,
    OPEN,
    PERMANENT,
    TRANSIENT,
    CircuitBreaker,
    CircuitOpen,
    DataFault,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    PermanentFault,
    RetryPolicy,
    TransientFault,
    active,
    classify,
    fire,
    injected,
    parse_specs,
)
from repro.obs.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# Taxonomy
# ----------------------------------------------------------------------


class TestClassify:
    def test_fault_error_category_wins(self):
        assert classify(TransientFault("x")) == TRANSIENT
        assert classify(PermanentFault("x")) == PERMANENT
        assert classify(DataFault("x")) == DATA

    def test_stdlib_transients(self):
        assert classify(TimeoutError()) == TRANSIENT
        assert classify(OSError("disk momentarily gone")) == TRANSIENT

    def test_named_domain_errors(self):
        from repro.core.checkpoint import CheckpointError
        from repro.data import DatasetLoadError
        from repro.store import SnapshotIntegrityError, SnapshotSchemaError

        assert classify(SnapshotIntegrityError("bad sha")) == DATA
        assert classify(SnapshotSchemaError("old version")) == PERMANENT
        assert classify(DatasetLoadError("bad row")) == DATA
        assert classify(CheckpointError("torn")) == DATA

    def test_unknown_defaults_to_permanent(self):
        assert classify(ValueError("nope")) == PERMANENT
        assert classify(RuntimeError("nope")) == PERMANENT


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------


class TestParseSpecs:
    def test_full_syntax(self):
        specs = parse_specs(
            "store.load.*:error:times=2:category=data;"
            "query.search:latency:latency_s=0.25;"
            "checkpoint.torn.blocking:torn_write"
        )
        assert [s.site for s in specs] == [
            "store.load.*", "query.search", "checkpoint.torn.blocking"
        ]
        assert specs[0].mode == "error"
        assert specs[0].times == 2
        assert specs[0].category == "data"
        assert specs[1].mode == "latency"
        assert specs[1].latency_s == 0.25
        assert specs[2].mode == "torn_write"

    def test_times_none_means_forever(self):
        (spec,) = parse_specs("a.b:error:times=none")
        assert spec.times is None

    def test_empty_chunks_skipped(self):
        assert parse_specs(" ; ;") == []

    @pytest.mark.parametrize("text", [
        ":error",                    # empty site
        "a.b:explode",               # unknown mode
        "a.b:error:times",           # option without =
        "a.b:error:bogus=1",         # unknown option
        "a.b:error:category=nope",   # unknown category
    ])
    def test_bad_specs_raise(self, text):
        with pytest.raises(ValueError):
            parse_specs(text)


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------


class TestFaultInjector:
    def test_after_and_times_window(self):
        injector = FaultInjector(parse_specs("site:error:after=2:times=2"))
        injector.fire("site")          # 1: skipped (after)
        injector.fire("site")          # 2: skipped (after)
        with pytest.raises(InjectedFault):
            injector.fire("site")      # 3: fires
        with pytest.raises(InjectedFault):
            injector.fire("site")      # 4: fires
        injector.fire("site")          # 5: exhausted
        assert injector.fired("site") == 2

    def test_glob_matching(self):
        injector = FaultInjector(parse_specs("store.load.*:error:times=none"))
        with pytest.raises(InjectedFault):
            injector.fire("store.load.graph")
        with pytest.raises(InjectedFault):
            injector.fire("store.load.manifest")
        injector.fire("store.save.commit")  # no match → no fire

    def test_latency_mode_sleeps(self):
        slept = []
        injector = FaultInjector(
            parse_specs("slow:latency:latency_s=0.5"), sleep=slept.append
        )
        injector.fire("slow")
        assert slept == [0.5]

    def test_injected_fault_carries_site_and_category(self):
        injector = FaultInjector(parse_specs("x:error:category=data"))
        with pytest.raises(InjectedFault) as raised:
            injector.fire("x")
        assert raised.value.site == "x"
        assert classify(raised.value) == DATA

    def test_corrupt_write_truncates_and_raises(self, tmp_path):
        path = tmp_path / "payload.bin"
        path.write_bytes(b"0123456789")
        injector = FaultInjector(parse_specs("torn:torn_write"))
        with pytest.raises(InjectedFault):
            injector.corrupt_write("torn", path)
        assert path.read_bytes() == b"01234"
        # Exhausted: the next write survives.
        path.write_bytes(b"0123456789")
        injector.corrupt_write("torn", path)
        assert path.read_bytes() == b"0123456789"

    def test_module_hook_is_noop_without_injector(self):
        assert active() is None
        fire("anything")  # must not raise

    def test_injected_context_installs_and_restores(self):
        with injected("ctx:error") as injector:
            assert active() is injector
            with pytest.raises(InjectedFault):
                fire("ctx")
        assert active() is None
        fire("ctx")  # uninstalled again


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_retries_transient_until_success(self):
        slept = []
        attempts = []
        policy = RetryPolicy(max_attempts=3, sleep=slept.append)

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientFault("blip")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3
        assert len(slept) == 2
        # Exponential: the second delay grows from the first.
        assert slept[1] > slept[0]

    def test_permanent_fails_immediately(self):
        slept = []
        policy = RetryPolicy(max_attempts=5, sleep=slept.append)
        calls = []

        def broken():
            calls.append(1)
            raise PermanentFault("schema mismatch")

        with pytest.raises(PermanentFault):
            policy.call(broken)
        assert len(calls) == 1 and slept == []

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=2, sleep=lambda _s: None)
        with pytest.raises(TransientFault, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(TransientFault("always")))

    def test_backoff_is_deterministic_and_capped(self):
        a = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, seed=7)
        b = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, seed=7)
        schedule_a = [a.backoff_s(i) for i in range(5)]
        schedule_b = [b.backoff_s(i) for i in range(5)]
        assert schedule_a == schedule_b
        # Cap: 0.5 * (1 + 0.25 jitter) is the most any delay can be.
        assert all(delay <= 0.5 * 1.25 for delay in schedule_a)

    def test_on_retry_callback(self):
        seen = []
        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None)
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise TransientFault("blip")
            return state["n"]

        assert policy.call(flaky, on_retry=lambda i, e: seen.append(i)) == 3
        assert seen == [0, 1]


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        now = [0.0]
        defaults = dict(
            failure_threshold=3, reset_timeout_s=10.0, clock=lambda: now[0]
        )
        defaults.update(kwargs)
        return CircuitBreaker("test", **defaults), now

    def test_opens_after_threshold(self):
        breaker, _now = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(10.0)

    def test_success_resets_failure_count(self):
        breaker, _now = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_then_close(self):
        breaker, now = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.5
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the one probe
        assert not breaker.allow()   # probes exhausted
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker, now = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.5
        assert breaker.allow()
        breaker.record_failure()     # probe failed
        assert breaker.state == OPEN
        assert breaker.retry_after_s() == pytest.approx(10.0)

    def test_reject_is_a_transient_fault(self):
        breaker, _now = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        rejection = breaker.reject()
        assert isinstance(rejection, CircuitOpen)
        assert classify(rejection) == TRANSIENT
        assert rejection.retry_after_s == pytest.approx(10.0)

    def test_open_metric(self):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            "db", failure_threshold=1, clock=lambda: 0.0, metrics=metrics
        )
        breaker.record_failure()
        assert metrics.counter_value("breaker.db.opened") == 1
