"""Tests for deterministic RNG helpers."""

import random

from repro.utils.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_same_seed_same_sequence(self):
        a, b = make_rng(42), make_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a, b = make_rng(1), make_rng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_none_is_reproducible(self):
        a, b = make_rng(None), make_rng(None)
        assert a.random() == b.random()

    def test_passthrough_of_existing_rng(self):
        rng = random.Random(7)
        assert make_rng(rng) is rng


class TestSpawnRng:
    def test_streams_are_decorrelated(self):
        root = make_rng(0)
        child_a = spawn_rng(root, "alpha")
        root2 = make_rng(0)
        child_b = spawn_rng(root2, "beta")
        seq_a = [child_a.random() for _ in range(10)]
        seq_b = [child_b.random() for _ in range(10)]
        assert seq_a != seq_b

    def test_same_stream_same_sequence(self):
        a = spawn_rng(make_rng(0), "x")
        b = spawn_rng(make_rng(0), "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_spawn_does_not_share_state_with_parent(self):
        root = make_rng(0)
        child = spawn_rng(root, "x")
        before = root.random()
        child.random()
        root2 = make_rng(0)
        spawn_rng(root2, "x")
        assert root2.random() == before
