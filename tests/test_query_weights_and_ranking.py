"""Deeper query-engine behaviour: custom weights, ranking invariants,
and extraction interaction."""

import pytest

from repro.pedigree import extract_pedigree
from repro.query import Query, QueryEngine


@pytest.fixture(scope="module")
def named_entity(tiny_pedigree_graph):
    return next(
        e for e in tiny_pedigree_graph
        if e.first("first_name") and e.first("surname") and e.first("parish")
    )


class TestCustomWeights:
    def test_zero_name_weights_rejected_by_normalisation(self, tiny_pedigree_graph,
                                                         named_entity):
        # Heavily weighting the parish makes parish agreement dominate.
        engine = QueryEngine(
            tiny_pedigree_graph,
            weights={"first_name": 0.05, "surname": 0.05, "gender": 0.1,
                     "year": 0.1, "parish": 0.7},
        )
        query = Query(
            first_name=named_entity.first("first_name"),
            surname=named_entity.first("surname"),
            parish=named_entity.first("parish"),
        )
        hits = engine.search(query, top_m=10)
        assert hits
        top = hits[0]
        # The top hit must at least match the parish strongly.
        assert top.attribute_scores.get("parish", 0.0) > 0.5

    def test_scores_normalised_to_provided_attributes(self, tiny_pedigree_graph,
                                                      named_entity):
        engine = QueryEngine(tiny_pedigree_graph)
        bare = Query(
            first_name=named_entity.first("first_name"),
            surname=named_entity.first("surname"),
        )
        rich = Query(
            first_name=named_entity.first("first_name"),
            surname=named_entity.first("surname"),
            gender=named_entity.gender,
            parish=named_entity.first("parish"),
        )
        bare_top = engine.search(bare, top_m=1)[0]
        rich_top = engine.search(rich, top_m=1)[0]
        # Both normalise to 100% when everything provided matches.
        assert bare_top.score_percent <= 100.0
        assert rich_top.score_percent <= 100.0


class TestRankingInvariants:
    def test_more_constraints_never_increase_match_count_above_top_m(
        self, tiny_query_engine, named_entity
    ):
        query = Query(
            first_name=named_entity.first("first_name"),
            surname=named_entity.first("surname"),
        )
        for top_m in (1, 3, 5, 20):
            hits = tiny_query_engine.search(query, top_m=top_m)
            assert len(hits) <= top_m

    def test_top_1_is_prefix_of_top_5(self, tiny_query_engine, named_entity):
        query = Query(
            first_name=named_entity.first("first_name"),
            surname=named_entity.first("surname"),
        )
        one = tiny_query_engine.search(query, top_m=1)
        five = tiny_query_engine.search(query, top_m=5)
        assert one[0].entity.entity_id == five[0].entity.entity_id

    def test_deterministic_ranking(self, tiny_query_engine, named_entity):
        query = Query(
            first_name=named_entity.first("first_name"),
            surname=named_entity.first("surname"),
        )
        a = [h.entity.entity_id for h in tiny_query_engine.search(query, top_m=10)]
        b = [h.entity.entity_id for h in tiny_query_engine.search(query, top_m=10)]
        assert a == b


class TestSearchThenExtract:
    def test_every_hit_is_extractable(self, tiny_pedigree_graph, tiny_query_engine,
                                      named_entity):
        query = Query(
            first_name=named_entity.first("first_name"),
            surname=named_entity.first("surname"),
        )
        for hit in tiny_query_engine.search(query, top_m=10):
            pedigree = extract_pedigree(
                tiny_pedigree_graph, hit.entity.entity_id, generations=2
            )
            assert pedigree.root_id == hit.entity.entity_id
            assert len(pedigree) >= 1
