"""Tests for roles, linkable pairs, and birth-year ranges."""

import pytest

from repro.data.roles import (
    LINKABLE_ROLE_PAIRS,
    CertificateType,
    Role,
    birth_year_range,
    role_gender,
)
from repro.blocking.candidates import roles_linkable


class TestRoleBasics:
    def test_certificate_types(self):
        assert Role.BB.certificate_type is CertificateType.BIRTH
        assert Role.DS.certificate_type is CertificateType.DEATH
        assert Role.MG.certificate_type is CertificateType.MARRIAGE

    def test_parent_roles(self):
        assert Role.BM.is_parent and Role.DF.is_parent
        assert not Role.BB.is_parent and not Role.DS.is_parent

    def test_fixed_gender_roles(self):
        assert role_gender(Role.BM) == "f"
        assert role_gender(Role.BF) == "m"
        assert role_gender(Role.MB) == "f"

    def test_recorded_gender_fallback(self):
        assert role_gender(Role.BB, "m") == "m"
        assert role_gender(Role.DD, None) is None


class TestLinkablePairs:
    def test_singleton_roles_never_self_link(self):
        assert not roles_linkable(Role.BB, Role.BB)
        assert not roles_linkable(Role.DD, Role.DD)

    def test_life_course_links(self):
        assert roles_linkable(Role.BB, Role.DD)
        assert roles_linkable(Role.BB, Role.BM)
        assert roles_linkable(Role.BB, Role.MG)

    def test_parent_recurrence(self):
        assert roles_linkable(Role.BM, Role.BM)
        assert roles_linkable(Role.BF, Role.DF)

    def test_cross_gender_impossible(self):
        assert not roles_linkable(Role.BM, Role.BF)
        assert not roles_linkable(Role.MB, Role.MG)
        assert not roles_linkable(Role.BM, Role.DF)

    def test_order_independent(self):
        assert roles_linkable(Role.DD, Role.BB) == roles_linkable(Role.BB, Role.DD)

    def test_pairs_are_canonical(self):
        for a, b in LINKABLE_ROLE_PAIRS:
            assert a.value <= b.value


class TestBirthYearRange:
    def test_baby_is_exact(self):
        assert birth_year_range(Role.BB, 1870) == (1870, 1870)

    def test_mother_range(self):
        lo, hi = birth_year_range(Role.BM, 1870)
        assert lo == 1870 - 55 and hi == 1870 - 15

    def test_father_wider_than_mother(self):
        m_lo, _ = birth_year_range(Role.BM, 1870)
        f_lo, _ = birth_year_range(Role.BF, 1870)
        assert f_lo < m_lo

    def test_age_narrows_range(self):
        lo, hi = birth_year_range(Role.DD, 1890, age_at_event=40)
        assert (lo, hi) == (1849, 1851)

    def test_age_overrides_role(self):
        assert birth_year_range(Role.MB, 1880, age_at_event=25) == (1854, 1856)

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            birth_year_range(Role.DD, 1890, age_at_event=-1)

    def test_deceased_without_age_is_wide(self):
        lo, hi = birth_year_range(Role.DD, 1890)
        assert hi == 1890 and hi - lo >= 100

    def test_all_roles_covered(self):
        for role in Role:
            lo, hi = birth_year_range(role, 1880)
            assert lo <= hi
