"""Tests for the benchmark harness helpers (table formatting, emit)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from common import format_table  # noqa: E402


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(
            "Title",
            ["name", "value"],
            [["alpha", 1], ["b", 22222]],
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        header = lines[2]
        separator = lines[3]
        assert len(header) == len(separator)
        assert "name" in header and "value" in header

    def test_empty_rows(self):
        text = format_table("T", ["a"], [])
        assert "a" in text

    def test_cell_stringification(self):
        text = format_table("T", ["x"], [[3.14159]])
        assert "3.14159" in text

    def test_wide_cells_expand_columns(self):
        text = format_table("T", ["x"], [["a-very-long-cell-value"]])
        lines = text.splitlines()
        assert len(lines[3]) >= len("a-very-long-cell-value")
