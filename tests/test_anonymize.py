"""Tests for the graph anonymisation subsystem (Section 9)."""

import pytest

from repro.anonymize import (
    CauseOfDeathAnonymiser,
    DateShifter,
    NameAnonymiser,
    anonymise_dataset,
    cluster_names,
)
from repro.anonymize.causes import NOT_KNOWN, age_band


class TestClusterNames:
    def test_similar_names_cluster_together(self):
        clusters = cluster_names(["macdonald", "mcdonald", "stewart"])
        for cluster in clusters:
            if "macdonald" in cluster:
                # mcdonald has a different soundex? No — same code; and
                # JW similarity is high, so they share a cluster.
                assert "mcdonald" in cluster

    def test_dissimilar_names_split(self):
        clusters = cluster_names(["mary", "wilhelmina"])
        assert len(clusters) == 2

    def test_all_names_assigned_once(self):
        names = ["anna", "ann", "annie", "flora", "florrie", "grace"]
        clusters = cluster_names(names)
        flattened = [n for c in clusters for n in c]
        assert sorted(flattened) == sorted(set(names))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            cluster_names(["a"], threshold=0.0)


class TestNameAnonymiser:
    def test_every_name_mapped(self):
        sensitive = ["mary", "marion", "margaret", "flora", "ann"]
        public = ["linda", "lynda", "karen", "susan", "donna"]
        anonymiser = NameAnonymiser.fit(sensitive, public, seed=1)
        assert set(anonymiser.mapping) == set(sensitive)

    def test_mapping_is_injective(self):
        sensitive = ["mary", "marion", "margaret", "flora", "ann", "annie"]
        public = ["linda", "karen", "susan"]
        anonymiser = NameAnonymiser.fit(sensitive, public, seed=1)
        values = list(anonymiser.mapping.values())
        assert len(values) == len(set(values))

    def test_no_sensitive_name_survives(self):
        sensitive = ["mary", "flora"]
        public = ["karen", "susan", "linda"]
        anonymiser = NameAnonymiser.fit(sensitive, public, seed=1)
        for replacement in anonymiser.mapping.values():
            assert replacement not in sensitive

    def test_compound_names_token_wise(self):
        anonymiser = NameAnonymiser.fit(["mary", "ann"], ["karen", "susan"], seed=1)
        out = anonymiser.anonymise("mary ann")
        assert len(out.split()) == 2

    def test_unknown_token_deterministic(self):
        anonymiser = NameAnonymiser.fit(["mary"], ["karen", "linda"], seed=1)
        assert anonymiser.anonymise("zeta") == anonymiser.anonymise("zeta")

    def test_empty_public_rejected(self):
        with pytest.raises(ValueError):
            NameAnonymiser.fit(["mary"], [])


class TestDateShifter:
    def test_constant_offset(self):
        shifter = DateShifter(offset=12)
        assert shifter.shift_year(1870) == 1882
        assert shifter.shift_year(1900) - shifter.shift_year(1880) == 20

    def test_attributes_shifted(self):
        shifter = DateShifter(offset=-7)
        attrs = shifter.shift_attributes({"event_year": "1870", "first_name": "x"})
        assert attrs["event_year"] == "1863"
        assert attrs["first_name"] == "x"

    def test_random_offset_nonzero(self):
        shifter = DateShifter(seed=5)
        assert shifter.shift_year(1900) != 1900

    def test_zero_offset_rejected(self):
        with pytest.raises(ValueError):
            DateShifter(offset=0)


class TestAgeBand:
    @pytest.mark.parametrize("age,band", [(0, "young"), (19, "young"),
                                          (20, "middle"), (39, "middle"),
                                          (40, "old"), (90, "old"),
                                          (None, "old")])
    def test_bands(self, age, band):
        assert age_band(age) == band

    def test_negative_age(self):
        with pytest.raises(ValueError):
            age_band(-1)


class TestCauseAnonymiser:
    @pytest.fixture()
    def fitted(self):
        observations = (
            [("phthisis", "m", 30)] * 12
            + [("phthisis", "f", 30)] * 12
            + [("bronchitis", "m", 70)] * 15
            + [("drowned at sea", "m", 30)] * 2
            + [("old age", "f", 85)] * 11
        )
        return CauseOfDeathAnonymiser(k=10).fit(observations)

    def test_frequent_cause_kept(self, fitted):
        assert fitted.anonymise("phthisis", "m", 30) == "phthisis"

    def test_rare_cause_generalised(self, fitted):
        out = fitted.anonymise("drowned at sea", "m", 30)
        assert out != "drowned at sea"

    def test_stratification_respected(self, fitted):
        # "old age" is frequent only for old women; a young man's rare
        # cause must not become "old age".
        out = fitted.anonymise("strange young death", "m", 25)
        assert out != "old age"

    def test_no_match_becomes_not_known(self, fitted):
        assert fitted.anonymise("zzz unusual", "f", 5) == NOT_KNOWN

    def test_empty_cause(self, fitted):
        assert fitted.anonymise("", "m", 30) == NOT_KNOWN

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CauseOfDeathAnonymiser().anonymise("x", "m", 30)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            CauseOfDeathAnonymiser(k=1)


class TestAnonymiseDataset:
    @pytest.fixture(scope="class")
    def anonymised(self, tiny_dataset):
        return anonymise_dataset(tiny_dataset, k=5, seed=2)

    def test_structure_preserved(self, tiny_dataset, anonymised):
        anon, _ = anonymised
        assert len(anon) == len(tiny_dataset)
        assert anon.certificates.keys() == tiny_dataset.certificates.keys()
        assert anon.true_match_pairs("Bp-Bp") == tiny_dataset.true_match_pairs("Bp-Bp")

    def test_names_replaced(self, tiny_dataset, anonymised):
        anon, _ = anonymised
        originals = {
            r.get("first_name") for r in tiny_dataset if r.get("first_name")
        }
        replaced = {r.get("first_name") for r in anon if r.get("first_name")}
        assert not (originals & replaced)

    def test_years_shifted_consistently(self, tiny_dataset, anonymised):
        anon, _ = anonymised
        offsets = set()
        for record in tiny_dataset:
            other = anon.record(record.record_id)
            if record.get("event_year") and other.get("event_year"):
                offsets.add(int(other.get("event_year")) - record.event_year)
        assert len(offsets) == 1
        assert 0 not in offsets

    def test_consistent_replacement_per_person(self, tiny_dataset, anonymised):
        """The same original name maps to the same replacement everywhere —
        otherwise linkage structure would be destroyed."""
        anon, _ = anonymised
        mapping = {}
        for record in tiny_dataset:
            original = record.get("surname")
            replaced = anon.record(record.record_id).get("surname")
            if original is None:
                continue
            assert mapping.setdefault(original, replaced) == replaced

    def test_report_counts(self, anonymised):
        _, report = anonymised
        assert report.n_records > 0
        assert report.n_surnames_mapped > 0
