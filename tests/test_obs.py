"""Tests for the observability subsystem (repro.obs)."""

import json
import logging
import pickle
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    LATENCY_BUCKETS_S,
    SIMILARITY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    SamplingProfiler,
    Trace,
    TraceContext,
    TraceWriter,
    build_report,
    check_exposition,
    configure,
    context_span,
    default_trace,
    exponential_buckets,
    get_logger,
    histogram_quantile,
    linear_buckets,
    load_report,
    parse_prometheus,
    process_gauges,
    read_trace_jsonl,
    render_prometheus,
    render_report,
    save_report,
)


class TestTraceSpans:
    def test_nesting_builds_tree(self):
        trace = Trace()
        with trace.span("root"):
            with trace.span("child_a"):
                pass
            with trace.span("child_b"):
                with trace.span("grandchild"):
                    pass
        assert [s.name for s in trace.roots] == ["root"]
        root = trace.roots[0]
        assert [s.name for s in root.children] == ["child_a", "child_b"]
        assert [s.name for s in root.children[1].children] == ["grandchild"]

    def test_sibling_roots(self):
        trace = Trace()
        with trace.span("first"):
            pass
        with trace.span("second"):
            pass
        assert [s.name for s in trace.roots] == ["first", "second"]
        assert trace.total() == pytest.approx(
            sum(s.elapsed for s in trace.roots)
        )

    def test_exception_safety(self):
        trace = Trace()
        with pytest.raises(ValueError):
            with trace.span("outer"):
                with trace.span("inner"):
                    raise ValueError("boom")
        # Both spans closed, stack unwound, error recorded.
        assert trace._stack == []
        outer = trace.roots[0]
        assert outer.error == "ValueError"
        assert outer.children[0].error == "ValueError"
        assert outer.elapsed >= outer.children[0].elapsed >= 0.0
        # The trace is usable again and nests at the top level.
        with trace.span("after"):
            pass
        assert [s.name for s in trace.roots] == ["outer", "after"]

    def test_find_and_walk(self):
        trace = Trace()
        with trace.span("a"):
            with trace.span("b"):
                pass
        assert trace.find("b") is trace.roots[0].children[0]
        assert trace.find("nope") is None
        assert [(d, s.name) for d, s in trace.walk()] == [(0, "a"), (1, "b")]

    def test_disabled_trace_is_noop(self):
        trace = Trace.disabled()
        with trace.span("anything"):
            with trace.span("nested"):
                pass
        assert trace.roots == []
        assert trace.tree() == []
        # All spans share one null context object — no per-span allocation.
        assert trace.span("x") is trace.span("y")

    def test_env_var_disables_default_trace(self, monkeypatch):
        monkeypatch.setenv("SNAPS_OBS", "off")
        assert not default_trace().enabled
        monkeypatch.delenv("SNAPS_OBS")
        assert default_trace().enabled

    def test_memory_capture(self):
        trace = Trace(capture_memory=True)
        with trace.span("alloc"):
            blob = ["x" * 1000 for _ in range(1000)]
        assert trace.roots[0].mem_peak_bytes is not None
        assert trace.roots[0].mem_alloc_bytes > 0
        del blob

    def test_jsonl_round_trip(self):
        trace = Trace()
        with trace.span("root"):
            with trace.span("child"):
                pass
        text = trace.to_jsonl()
        assert len(text.splitlines()) == 1  # one line per root span
        rebuilt = Trace.from_jsonl(text)
        assert rebuilt.tree() == trace.tree()
        # Each line is valid standalone JSON.
        node = json.loads(text.splitlines()[0])
        assert node["name"] == "root"
        assert node["children"][0]["name"] == "child"


class TestHistogram:
    def test_bucket_edges_inclusive(self):
        h = Histogram("h", [1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 5.0):
            h.observe(value)
        # <=1: 0.5, 1.0 | <=2: 1.5, 2.0 | <=4: 4.0 | overflow: 5.0
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5 and h.max == 5.0
        assert h.mean() == pytest.approx(14.0 / 6)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", [])
        with pytest.raises(ValueError):
            Histogram("h", [2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", [1.0, 1.0])

    def test_bucket_helpers(self):
        assert linear_buckets(0.1, 0.1, 3) == [0.1, 0.2, 0.3]
        assert exponential_buckets(1, 2, 4) == [1.0, 2.0, 4.0, 8.0]
        assert SIMILARITY_BUCKETS[-1] == 1.0
        assert LATENCY_BUCKETS_S == sorted(LATENCY_BUCKETS_S)


class TestMetricsRegistry:
    def test_counter_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def hammer(_):
            for _ in range(1000):
                counter.inc()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert counter.value == 8000

    def test_histogram_thread_safety(self):
        registry = MetricsRegistry()

        def hammer(worker):
            for i in range(500):
                registry.observe("h", (worker + i) % 10, buckets=[2.0, 5.0, 10.0])

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, range(4)))
        assert registry.histograms["h"].count == 2000

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", [1.0]) is registry.histogram("h")

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("pairs", 5)
        registry.set_gauge("ratio", 0.25)
        registry.observe("sizes", 3, buckets=[2.0, 4.0])
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"pairs": 5}
        assert snapshot["gauges"] == {"ratio": 0.25}
        assert snapshot["histograms"]["sizes"]["counts"] == [0, 1, 0]

    def test_merge_aggregates_runs(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, n in ((a, 2), (b, 3)):
            registry.inc("pairs", n)
            registry.observe("sizes", n, buckets=[2.0, 4.0])
        b.set_gauge("ratio", 0.9)
        a.merge(b)
        assert a.counter_value("pairs") == 5
        assert a.histograms["sizes"].count == 2
        assert a.gauges["ratio"].value == 0.9

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1, buckets=[1.0, 2.0])
        b.observe("h", 1, buckets=[5.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_null_metrics_is_silent(self):
        null = NullMetrics()
        null.inc("x", 5)
        null.observe("h", 1.0)
        null.set_gauge("g", 2.0)
        assert null.counter_value("x") == 0
        assert null.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert not null  # falsy, unlike a real registry
        assert MetricsRegistry()


class TestRunReport:
    def _example_report(self):
        trace = Trace()
        with trace.span("resolve"):
            with trace.span("blocking"):
                pass
        registry = MetricsRegistry()
        registry.inc("blocking.candidate_pairs", 42)
        registry.set_gauge("blocking.reduction_ratio", 0.98)
        registry.observe("blocking.block_size", 3, buckets=[2.0, 4.0])
        return build_report(trace, registry, meta={"dataset": "tiny"})

    def test_save_load_round_trip(self, tmp_path):
        report = self._example_report()
        path = save_report(report, tmp_path / "run.json")
        assert load_report(path) == report

    def test_load_rejects_non_report(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_report(path)

    def test_render_contains_all_sections(self):
        text = render_report(self._example_report())
        assert "resolve" in text and "blocking" in text
        assert "blocking.candidate_pairs" in text and "42" in text
        assert "blocking.reduction_ratio" in text
        assert "blocking.block_size" in text
        assert "dataset: tiny" in text

    def test_render_empty_report(self):
        assert render_report(build_report()).strip() == "(empty report)"


class TestLogs:
    def test_configure_levels(self):
        logger = configure(0)
        assert logger.level == logging.WARNING
        assert configure(1).level == logging.INFO
        assert configure(2).level == logging.DEBUG
        assert configure(9).level == logging.DEBUG

    def test_reconfigure_does_not_stack_handlers(self):
        before = len(configure(1).handlers)
        after = len(configure(2).handlers)
        assert before == after == 1

    def test_get_logger_namespacing(self):
        assert get_logger("core.resolver").name == "repro.core.resolver"
        assert get_logger("repro.query").name == "repro.query"

    def test_messages_reach_stream(self, capsys):
        import io

        stream = io.StringIO()
        configure(1, stream=stream)
        get_logger("test").info("phase done")
        assert "phase done" in stream.getvalue()
        configure(0)  # restore default quietness


class TestStopwatchUpgrades:
    def test_phase_counts(self):
        from repro.obs import Stopwatch

        sw = Stopwatch()
        with sw.phase("a"):
            pass
        with sw.phase("a"):
            pass
        with sw.phase("b"):
            pass
        assert sw.counts == {"a": 2, "b": 1}

    def test_merge(self):
        from repro.obs import Stopwatch

        a, b = Stopwatch(), Stopwatch()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 0.5)
        assert a.merge(b) is a
        assert a.times == {"x": 3.0, "y": 0.5}
        assert a.counts == {"x": 2, "y": 1}

    def test_reexported_for_compat(self):
        import repro.obs
        import repro.utils.timer

        assert repro.obs.Stopwatch is repro.utils.timer.Stopwatch
        assert repro.obs.Timer is repro.utils.timer.Timer


class TestResolverTelemetry:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.core import SnapsConfig, SnapsResolver
        from repro.data.synthetic import make_tiny_dataset

        dataset = make_tiny_dataset(seed=3)
        trace = Trace()
        metrics = MetricsRegistry()
        result = SnapsResolver(SnapsConfig()).resolve(
            dataset, trace=trace, metrics=metrics
        )
        return result, trace, metrics

    def test_span_tree_shape(self, run):
        _, trace, _ = run
        assert [s.name for s in trace.roots] == ["resolve"]
        child_names = [s.name for s in trace.roots[0].children]
        assert child_names == [
            "blocking", "graph", "bootstrap", "refine", "merge", "refine",
        ]
        assert trace.roots[0].elapsed >= sum(
            s.elapsed for s in trace.roots[0].children
        ) * 0.5

    def test_pipeline_counters_nonzero(self, run):
        _, _, metrics = run
        assert metrics.counter_value("blocking.candidate_pairs") > 0
        assert metrics.counter_value("resolver.candidate_pairs") > 0
        merges = metrics.counter_value(
            "resolver.bootstrap_merges"
        ) + metrics.counter_value("resolver.iterative_merges")
        assert merges > 0
        assert metrics.histograms["blocking.block_size"].count > 0
        assert 0.0 < metrics.gauges["blocking.reduction_ratio"].value <= 1.0

    def test_lsh_signature_cache_counters(self, run):
        _, _, metrics = run
        misses = metrics.counter_value("lsh.signature_cache_misses")
        hits = metrics.counter_value("lsh.signature_cache_hits")
        # every blocked record either hit or missed the signature cache
        assert misses > 0
        assert hits + misses >= misses

    def test_result_carries_telemetry(self, run):
        result, trace, metrics = run
        assert result.metrics is metrics
        assert result.trace is trace
        summary = result.summary()
        assert summary["blocking.candidate_pairs"] == metrics.counter_value(
            "blocking.candidate_pairs"
        )
        assert "blocking.reduction_ratio" in summary

    def test_report_artefact(self, run, tmp_path):
        result, _, _ = run
        report = result.report()
        path = save_report(report, tmp_path / "run.json")
        loaded = load_report(path)
        assert loaded["meta"]["kind"] == "resolve"
        assert loaded["spans"][0]["name"] == "resolve"
        names = [c["name"] for c in loaded["spans"][0]["children"]]
        assert "blocking" in names and "merge" in names
        assert loaded["metrics"]["counters"]["resolver.runs"] == 1
        assert "spans" in render_report(loaded)

    def test_untraced_run_unchanged(self, run):
        from repro.core import SnapsConfig, SnapsResolver
        from repro.data.synthetic import make_tiny_dataset

        traced_result, _, _ = run
        plain = SnapsResolver(SnapsConfig()).resolve(make_tiny_dataset(seed=3))
        assert plain.metrics is None and plain.trace is None
        assert plain.bootstrap_merges == traced_result.bootstrap_merges
        assert plain.iterative_merges == traced_result.iterative_merges


class TestQueryTelemetry:
    def test_query_spans_and_latency(self):
        from repro.core import SnapsConfig, SnapsResolver
        from repro.data.synthetic import make_tiny_dataset
        from repro.pedigree import build_pedigree_graph
        from repro.query import Query, QueryEngine

        dataset = make_tiny_dataset(seed=3)
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        graph = build_pedigree_graph(dataset, result.entities)
        trace = Trace()
        metrics = MetricsRegistry()
        engine = QueryEngine(graph, trace=trace, metrics=metrics)
        engine.search(
            Query(first_name="mary", surname="macdonald", parish="portree")
        )
        root = trace.roots[0]
        assert root.name == "query"
        stages = [s.name for s in root.children]
        assert stages == ["accumulate", "refine", "rank"]
        refine = root.children[1]
        assert [s.name for s in refine.children] == ["parish_match"]
        assert metrics.counter_value("query.searches") == 1
        assert metrics.histograms["query.latency_seconds"].count == 1


class TestHistogramQuantiles:
    # Shared fixture shape: buckets [1, 2, 4], per-bucket counts with a
    # trailing overflow slot — observations 0.5, 1.0, 1.5, 2.0, 4.0, 5.0.
    BUCKETS = [1.0, 2.0, 4.0]
    COUNTS = [2, 2, 1, 1]

    def test_interpolates_inside_bucket(self):
        # rank 3 of 6 lands in the (1, 2] bucket, halfway through it.
        assert histogram_quantile(self.BUCKETS, self.COUNTS, 0.5) == pytest.approx(1.5)

    def test_overflow_rank_reports_maximum(self):
        assert histogram_quantile(
            self.BUCKETS, self.COUNTS, 1.0, maximum=5.0
        ) == pytest.approx(5.0)
        # Without a known max, the last finite bound stands in.
        assert histogram_quantile(self.BUCKETS, self.COUNTS, 1.0) == pytest.approx(4.0)

    def test_clamps_to_observed_minimum(self):
        assert histogram_quantile(
            self.BUCKETS, self.COUNTS, 0.0, minimum=0.5
        ) == pytest.approx(0.5)

    def test_uniform_single_bucket(self):
        assert histogram_quantile([10.0], [10, 0], 0.5) == pytest.approx(5.0)

    def test_empty_and_bad_inputs(self):
        assert histogram_quantile(self.BUCKETS, [0, 0, 0, 0], 0.5) == 0.0
        with pytest.raises(ValueError):
            histogram_quantile(self.BUCKETS, self.COUNTS, 1.5)

    def test_histogram_quantile_method_and_as_dict(self):
        h = Histogram("h", self.BUCKETS)
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 5.0):
            h.observe(value)
        assert h.quantile(0.5) == pytest.approx(1.5)
        snapshot = h.as_dict()
        assert snapshot["p50"] == pytest.approx(1.5)
        assert snapshot["p99"] == pytest.approx(5.0)  # clamped to observed max

    def test_empty_histogram_quantiles_are_none(self):
        snapshot = Histogram("h", [1.0]).as_dict()
        assert snapshot["p50"] is None and snapshot["p95"] is None
        assert Histogram("h", [1.0]).quantile(0.95) == 0.0


class TestPromExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("blocking.candidate_pairs", 42)
        registry.set_gauge("blocking.reduction_ratio", 0.98)
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 5.0):
            registry.observe("resolve.latency_seconds", value, buckets=[1.0, 2.0, 4.0])
        return registry

    def test_render_passes_own_checker(self):
        text = render_prometheus(
            self._registry().as_dict(), info={"snapshot_id": "snap-1"}
        )
        families = check_exposition(text)
        assert families["snaps_blocking_candidate_pairs_total"]["type"] == "counter"
        assert families["snaps_blocking_reduction_ratio"]["type"] == "gauge"
        assert families["snaps_resolve_latency_seconds"]["type"] == "histogram"
        info = families["snaps_info"]["samples"][0]
        assert info[1] == {"snapshot_id": "snap-1"} and info[2] == 1.0

    def test_round_trip_values(self):
        families = parse_prometheus(render_prometheus(self._registry().as_dict()))
        (_, _, counter) = families["snaps_blocking_candidate_pairs_total"]["samples"][0]
        assert counter == 42.0
        hist = families["snaps_resolve_latency_seconds"]["samples"]
        by_le = {
            labels["le"]: value
            for name, labels, value in hist
            if name.endswith("_bucket")
        }
        # Cumulative: <=1 → 2, <=2 → 4, <=4 → 5, +Inf → 6.
        assert by_le == {"1": 2.0, "2": 4.0, "4": 5.0, "+Inf": 6.0}

    def test_quantile_gauges_match_report_estimator(self):
        registry = self._registry()
        families = parse_prometheus(render_prometheus(registry.as_dict()))
        quantiles = {
            labels["quantile"]: value
            for _, labels, value in
            families["snaps_resolve_latency_seconds_quantile"]["samples"]
        }
        hist = registry.histograms["resolve.latency_seconds"]
        assert quantiles["0.5"] == pytest.approx(hist.quantile(0.5))
        assert quantiles["0.99"] == pytest.approx(hist.quantile(0.99))

    def test_checker_rejects_malformed(self):
        with pytest.raises(ValueError, match="before TYPE"):
            check_exposition("snaps_x_total 1\n# TYPE snaps_x_total counter\n")
        with pytest.raises(ValueError, match="duplicate"):
            check_exposition(
                "# TYPE snaps_g gauge\nsnaps_g 1\nsnaps_g 2\n"
            )
        with pytest.raises(ValueError, match="cumulative"):
            check_exposition(
                "# TYPE snaps_h histogram\n"
                'snaps_h_bucket{le="1"} 5\n'
                'snaps_h_bucket{le="+Inf"} 3\n'
                "snaps_h_sum 1\nsnaps_h_count 3\n"
            )
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("!!! not a sample\n")

    def test_process_gauges_on_linux(self):
        gauges = process_gauges()
        assert gauges["process.uptime_seconds"] >= 0.0
        assert gauges["process.cpu_seconds"] > 0.0
        assert gauges["process.rss_bytes"] > 1024 * 1024
        assert gauges["process.open_fds"] >= 3  # stdio at minimum


class TestTracePropagation:
    def test_context_captures_current_position(self):
        trace = Trace()
        with trace.span("resolve") as span:
            ctx = trace.context(label="score")
        assert ctx.trace_id == trace.trace_id
        assert ctx.parent_span_id == span.span_id
        assert ctx.baggage == {"label": "score"}
        rebuilt = TraceContext.from_dict(ctx.to_dict())
        assert rebuilt.trace_id == ctx.trace_id
        assert rebuilt.parent_span_id == ctx.parent_span_id
        assert rebuilt.baggage == ctx.baggage

    def test_disabled_trace_has_no_context(self):
        assert Trace.disabled().context() is None
        assert context_span(None, "worker") is None

    def test_context_span_identity(self):
        trace = Trace()
        with trace.span("resolve") as parent:
            ctx = trace.context()
        span = context_span(ctx, "worker.chunk0", chunk=0)
        assert span.parent_id == parent.span_id
        assert span.span_id.startswith(f"{trace.trace_id}.p")
        assert span.attrs["chunk"] == 0 and span.attrs["pid"] > 0

    def test_attach_grafts_under_open_span(self):
        trace = Trace()
        worker = context_span(TraceContext("dead"), "worker.chunk0")
        worker.elapsed = 0.25
        with trace.span("resolve") as resolve:
            with trace.span("wait") as wait:
                grafted = trace.attach(worker.as_dict())
        assert grafted.parent_id == wait.span_id
        assert [s.name for s in wait.children] == ["worker.chunk0"]
        assert resolve.children[0] is wait

    def test_attach_fixes_nested_parent_links(self, tmp_path):
        # A worker span carrying children of its own must stream with
        # re-derived parent ids, or the file would read back as forests.
        path = tmp_path / "trace.jsonl"
        trace = Trace(writer=TraceWriter(path))
        worker = context_span(TraceContext("dead"), "worker.chunk0")
        child = context_span(TraceContext("dead"), "worker.inner")
        child.parent_id = None
        worker.children.append(child)
        with trace.span("resolve"):
            trace.attach(worker)
        rebuilt = read_trace_jsonl(path)
        assert [s.name for s in rebuilt.roots] == ["resolve"]
        chunk = rebuilt.roots[0].children[0]
        assert chunk.name == "worker.chunk0"
        assert [s.name for s in chunk.children] == ["worker.inner"]


class TestTraceWriter:
    def _traced_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = Trace(writer=TraceWriter(path))
        with trace.span("resolve"):
            with trace.span("blocking"):
                pass
            with trace.span("graph"):
                pass
        return path, trace

    def test_streams_one_event_per_span(self, tmp_path):
        path, trace = self._traced_file(tmp_path)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["blocking", "graph", "resolve"]
        assert {e["trace_id"] for e in events} == {trace.trace_id}

    def test_read_trace_jsonl_rebuilds_tree(self, tmp_path):
        path, trace = self._traced_file(tmp_path)
        rebuilt = read_trace_jsonl(path)
        assert rebuilt.trace_id == trace.trace_id
        assert [s.name for s in rebuilt.roots] == ["resolve"]
        assert [s.name for s in rebuilt.roots[0].children] == ["blocking", "graph"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path, _ = self._traced_file(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"name": "torn", "elapsed_s": 0.')  # crash mid-write
        rebuilt = read_trace_jsonl(path)
        assert [s.name for s in rebuilt.roots] == ["resolve"]

    def test_torn_middle_line_is_an_error(self, tmp_path):
        path, _ = self._traced_file(tmp_path)
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:10]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_trace_jsonl(path)

    def test_durable_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SNAPS_OBS", "durable")
        assert TraceWriter(tmp_path / "a.jsonl").durable
        monkeypatch.delenv("SNAPS_OBS")
        assert not TraceWriter(tmp_path / "b.jsonl").durable
        assert TraceWriter(tmp_path / "c.jsonl", durable=True).durable

    def test_writer_truncates_stale_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "stale", "elapsed_s": 1.0, "trace_id": "x"}\n')
        trace = Trace(writer=TraceWriter(path))
        with trace.span("fresh"):
            pass
        assert [s.name for s in read_trace_jsonl(path).roots] == ["fresh"]


class TestRegistryPickle:
    def test_round_trip_preserves_instruments(self):
        registry = MetricsRegistry()
        registry.inc("pairs", 5)
        registry.set_gauge("ratio", 0.25)
        registry.observe("sizes", 3, buckets=[2.0, 4.0])
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.as_dict() == registry.as_dict()

    def test_clone_is_live_after_unpickle(self):
        # Locks are dropped in __getstate__ and must come back usable.
        registry = MetricsRegistry()
        registry.inc("pairs", 1)
        registry.observe("sizes", 1, buckets=[2.0])
        clone = pickle.loads(pickle.dumps(registry))
        clone.inc("pairs", 2)
        clone.observe("sizes", 3)
        assert clone.counter_value("pairs") == 3
        assert clone.histograms["sizes"].count == 2
        assert registry.counter_value("pairs") == 1  # deep copy, not shared

    def test_merge_after_round_trip(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.inc("pairs", 2)
        worker.inc("pairs", 3)
        worker.observe("chunk_seconds", 0.5, buckets=LATENCY_BUCKETS_S)
        parent.merge(pickle.loads(pickle.dumps(worker)))
        assert parent.counter_value("pairs") == 5
        assert parent.histograms["chunk_seconds"].count == 1


class TestSamplingProfiler:
    def test_captures_stacks_from_busy_loop(self):
        def busy_leaf(deadline):
            total = 0
            while time.perf_counter() < deadline:
                total += sum(range(50))
            return total

        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            busy_leaf(time.perf_counter() + 0.15)
        assert profiler.samples > 10
        collapsed = profiler.collapsed()
        assert "busy_leaf" in collapsed
        # Collapsed format: "frame;frame;... count" one stack per line.
        for line in collapsed.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) > 0

    def test_top_and_as_dict(self, tmp_path):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            deadline = time.perf_counter() + 0.1
            while time.perf_counter() < deadline:
                sum(range(100))
        top = profiler.top(5)
        assert top and all(
            {"frame", "self_samples", "self_s", "cum_samples", "cum_s"}
            <= set(entry)
            for entry in top
        )
        assert all(
            entry["cum_samples"] >= entry["self_samples"] >= 0 for entry in top
        )
        data = profiler.as_dict(top_n=3)
        assert data["samples"] == profiler.samples
        assert data["interval_s"] == 0.001
        assert len(data["top"]) <= 3
        out = profiler.write_collapsed(tmp_path / "profile.txt")
        assert out.read_text() == profiler.collapsed() + "\n"

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval_s=0.001).start()
        time.sleep(0.01)
        profiler.stop()
        elapsed = profiler.elapsed_s
        profiler.stop()
        assert profiler.elapsed_s == elapsed

    def test_env_gate(self, monkeypatch):
        from repro.obs import profile_from_env

        monkeypatch.delenv("SNAPS_PROFILE", raising=False)
        assert profile_from_env() is None
        monkeypatch.setenv("SNAPS_PROFILE", "1")
        assert profile_from_env().interval_s == pytest.approx(0.005)
        monkeypatch.setenv("SNAPS_PROFILE", "0.002")
        assert profile_from_env().interval_s == pytest.approx(0.002)
        monkeypatch.setenv("SNAPS_PROFILE", "")
        assert profile_from_env() is None


class TestProfilingMetrics:
    def test_value_counts_uses_counter_and_emits(self):
        from collections import Counter

        from repro.data.synthetic import make_tiny_dataset
        from repro.eval.profiling import _value_counts, attribute_profile

        dataset = make_tiny_dataset(seed=3)
        counts, missing = _value_counts(list(dataset), "first_name")
        assert isinstance(counts, Counter)
        registry = MetricsRegistry()
        profile = attribute_profile(dataset, "first_name", metrics=registry)
        assert registry.counter_value("profile.first_name.missing") == profile.missing
        values = registry.counter_value("profile.first_name.values")
        assert values + profile.missing == profile.n_records
        assert registry.counter_value("profile.first_name.distinct") > 0
