"""Tests for the observability subsystem (repro.obs)."""

import json
import logging
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    LATENCY_BUCKETS_S,
    SIMILARITY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    Trace,
    build_report,
    configure,
    default_trace,
    exponential_buckets,
    get_logger,
    linear_buckets,
    load_report,
    render_report,
    save_report,
)


class TestTraceSpans:
    def test_nesting_builds_tree(self):
        trace = Trace()
        with trace.span("root"):
            with trace.span("child_a"):
                pass
            with trace.span("child_b"):
                with trace.span("grandchild"):
                    pass
        assert [s.name for s in trace.roots] == ["root"]
        root = trace.roots[0]
        assert [s.name for s in root.children] == ["child_a", "child_b"]
        assert [s.name for s in root.children[1].children] == ["grandchild"]

    def test_sibling_roots(self):
        trace = Trace()
        with trace.span("first"):
            pass
        with trace.span("second"):
            pass
        assert [s.name for s in trace.roots] == ["first", "second"]
        assert trace.total() == pytest.approx(
            sum(s.elapsed for s in trace.roots)
        )

    def test_exception_safety(self):
        trace = Trace()
        with pytest.raises(ValueError):
            with trace.span("outer"):
                with trace.span("inner"):
                    raise ValueError("boom")
        # Both spans closed, stack unwound, error recorded.
        assert trace._stack == []
        outer = trace.roots[0]
        assert outer.error == "ValueError"
        assert outer.children[0].error == "ValueError"
        assert outer.elapsed >= outer.children[0].elapsed >= 0.0
        # The trace is usable again and nests at the top level.
        with trace.span("after"):
            pass
        assert [s.name for s in trace.roots] == ["outer", "after"]

    def test_find_and_walk(self):
        trace = Trace()
        with trace.span("a"):
            with trace.span("b"):
                pass
        assert trace.find("b") is trace.roots[0].children[0]
        assert trace.find("nope") is None
        assert [(d, s.name) for d, s in trace.walk()] == [(0, "a"), (1, "b")]

    def test_disabled_trace_is_noop(self):
        trace = Trace.disabled()
        with trace.span("anything"):
            with trace.span("nested"):
                pass
        assert trace.roots == []
        assert trace.tree() == []
        # All spans share one null context object — no per-span allocation.
        assert trace.span("x") is trace.span("y")

    def test_env_var_disables_default_trace(self, monkeypatch):
        monkeypatch.setenv("SNAPS_OBS", "off")
        assert not default_trace().enabled
        monkeypatch.delenv("SNAPS_OBS")
        assert default_trace().enabled

    def test_memory_capture(self):
        trace = Trace(capture_memory=True)
        with trace.span("alloc"):
            blob = ["x" * 1000 for _ in range(1000)]
        assert trace.roots[0].mem_peak_bytes is not None
        assert trace.roots[0].mem_alloc_bytes > 0
        del blob

    def test_jsonl_round_trip(self):
        trace = Trace()
        with trace.span("root"):
            with trace.span("child"):
                pass
        text = trace.to_jsonl()
        assert len(text.splitlines()) == 1  # one line per root span
        rebuilt = Trace.from_jsonl(text)
        assert rebuilt.tree() == trace.tree()
        # Each line is valid standalone JSON.
        node = json.loads(text.splitlines()[0])
        assert node["name"] == "root"
        assert node["children"][0]["name"] == "child"


class TestHistogram:
    def test_bucket_edges_inclusive(self):
        h = Histogram("h", [1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 5.0):
            h.observe(value)
        # <=1: 0.5, 1.0 | <=2: 1.5, 2.0 | <=4: 4.0 | overflow: 5.0
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5 and h.max == 5.0
        assert h.mean() == pytest.approx(14.0 / 6)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", [])
        with pytest.raises(ValueError):
            Histogram("h", [2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", [1.0, 1.0])

    def test_bucket_helpers(self):
        assert linear_buckets(0.1, 0.1, 3) == [0.1, 0.2, 0.3]
        assert exponential_buckets(1, 2, 4) == [1.0, 2.0, 4.0, 8.0]
        assert SIMILARITY_BUCKETS[-1] == 1.0
        assert LATENCY_BUCKETS_S == sorted(LATENCY_BUCKETS_S)


class TestMetricsRegistry:
    def test_counter_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def hammer(_):
            for _ in range(1000):
                counter.inc()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert counter.value == 8000

    def test_histogram_thread_safety(self):
        registry = MetricsRegistry()

        def hammer(worker):
            for i in range(500):
                registry.observe("h", (worker + i) % 10, buckets=[2.0, 5.0, 10.0])

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, range(4)))
        assert registry.histograms["h"].count == 2000

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", [1.0]) is registry.histogram("h")

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("pairs", 5)
        registry.set_gauge("ratio", 0.25)
        registry.observe("sizes", 3, buckets=[2.0, 4.0])
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"pairs": 5}
        assert snapshot["gauges"] == {"ratio": 0.25}
        assert snapshot["histograms"]["sizes"]["counts"] == [0, 1, 0]

    def test_merge_aggregates_runs(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, n in ((a, 2), (b, 3)):
            registry.inc("pairs", n)
            registry.observe("sizes", n, buckets=[2.0, 4.0])
        b.set_gauge("ratio", 0.9)
        a.merge(b)
        assert a.counter_value("pairs") == 5
        assert a.histograms["sizes"].count == 2
        assert a.gauges["ratio"].value == 0.9

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1, buckets=[1.0, 2.0])
        b.observe("h", 1, buckets=[5.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_null_metrics_is_silent(self):
        null = NullMetrics()
        null.inc("x", 5)
        null.observe("h", 1.0)
        null.set_gauge("g", 2.0)
        assert null.counter_value("x") == 0
        assert null.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert not null  # falsy, unlike a real registry
        assert MetricsRegistry()


class TestRunReport:
    def _example_report(self):
        trace = Trace()
        with trace.span("resolve"):
            with trace.span("blocking"):
                pass
        registry = MetricsRegistry()
        registry.inc("blocking.candidate_pairs", 42)
        registry.set_gauge("blocking.reduction_ratio", 0.98)
        registry.observe("blocking.block_size", 3, buckets=[2.0, 4.0])
        return build_report(trace, registry, meta={"dataset": "tiny"})

    def test_save_load_round_trip(self, tmp_path):
        report = self._example_report()
        path = save_report(report, tmp_path / "run.json")
        assert load_report(path) == report

    def test_load_rejects_non_report(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_report(path)

    def test_render_contains_all_sections(self):
        text = render_report(self._example_report())
        assert "resolve" in text and "blocking" in text
        assert "blocking.candidate_pairs" in text and "42" in text
        assert "blocking.reduction_ratio" in text
        assert "blocking.block_size" in text
        assert "dataset: tiny" in text

    def test_render_empty_report(self):
        assert render_report(build_report()).strip() == "(empty report)"


class TestLogs:
    def test_configure_levels(self):
        logger = configure(0)
        assert logger.level == logging.WARNING
        assert configure(1).level == logging.INFO
        assert configure(2).level == logging.DEBUG
        assert configure(9).level == logging.DEBUG

    def test_reconfigure_does_not_stack_handlers(self):
        before = len(configure(1).handlers)
        after = len(configure(2).handlers)
        assert before == after == 1

    def test_get_logger_namespacing(self):
        assert get_logger("core.resolver").name == "repro.core.resolver"
        assert get_logger("repro.query").name == "repro.query"

    def test_messages_reach_stream(self, capsys):
        import io

        stream = io.StringIO()
        configure(1, stream=stream)
        get_logger("test").info("phase done")
        assert "phase done" in stream.getvalue()
        configure(0)  # restore default quietness


class TestStopwatchUpgrades:
    def test_phase_counts(self):
        from repro.obs import Stopwatch

        sw = Stopwatch()
        with sw.phase("a"):
            pass
        with sw.phase("a"):
            pass
        with sw.phase("b"):
            pass
        assert sw.counts == {"a": 2, "b": 1}

    def test_merge(self):
        from repro.obs import Stopwatch

        a, b = Stopwatch(), Stopwatch()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 0.5)
        assert a.merge(b) is a
        assert a.times == {"x": 3.0, "y": 0.5}
        assert a.counts == {"x": 2, "y": 1}

    def test_reexported_for_compat(self):
        import repro.obs
        import repro.utils.timer

        assert repro.obs.Stopwatch is repro.utils.timer.Stopwatch
        assert repro.obs.Timer is repro.utils.timer.Timer


class TestResolverTelemetry:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.core import SnapsConfig, SnapsResolver
        from repro.data.synthetic import make_tiny_dataset

        dataset = make_tiny_dataset(seed=3)
        trace = Trace()
        metrics = MetricsRegistry()
        result = SnapsResolver(SnapsConfig()).resolve(
            dataset, trace=trace, metrics=metrics
        )
        return result, trace, metrics

    def test_span_tree_shape(self, run):
        _, trace, _ = run
        assert [s.name for s in trace.roots] == ["resolve"]
        child_names = [s.name for s in trace.roots[0].children]
        assert child_names == [
            "blocking", "graph", "bootstrap", "refine", "merge", "refine",
        ]
        assert trace.roots[0].elapsed >= sum(
            s.elapsed for s in trace.roots[0].children
        ) * 0.5

    def test_pipeline_counters_nonzero(self, run):
        _, _, metrics = run
        assert metrics.counter_value("blocking.candidate_pairs") > 0
        assert metrics.counter_value("resolver.candidate_pairs") > 0
        merges = metrics.counter_value(
            "resolver.bootstrap_merges"
        ) + metrics.counter_value("resolver.iterative_merges")
        assert merges > 0
        assert metrics.histograms["blocking.block_size"].count > 0
        assert 0.0 < metrics.gauges["blocking.reduction_ratio"].value <= 1.0

    def test_lsh_signature_cache_counters(self, run):
        _, _, metrics = run
        misses = metrics.counter_value("lsh.signature_cache_misses")
        hits = metrics.counter_value("lsh.signature_cache_hits")
        # every blocked record either hit or missed the signature cache
        assert misses > 0
        assert hits + misses >= misses

    def test_result_carries_telemetry(self, run):
        result, trace, metrics = run
        assert result.metrics is metrics
        assert result.trace is trace
        summary = result.summary()
        assert summary["blocking.candidate_pairs"] == metrics.counter_value(
            "blocking.candidate_pairs"
        )
        assert "blocking.reduction_ratio" in summary

    def test_report_artefact(self, run, tmp_path):
        result, _, _ = run
        report = result.report()
        path = save_report(report, tmp_path / "run.json")
        loaded = load_report(path)
        assert loaded["meta"]["kind"] == "resolve"
        assert loaded["spans"][0]["name"] == "resolve"
        names = [c["name"] for c in loaded["spans"][0]["children"]]
        assert "blocking" in names and "merge" in names
        assert loaded["metrics"]["counters"]["resolver.runs"] == 1
        assert "spans" in render_report(loaded)

    def test_untraced_run_unchanged(self, run):
        from repro.core import SnapsConfig, SnapsResolver
        from repro.data.synthetic import make_tiny_dataset

        traced_result, _, _ = run
        plain = SnapsResolver(SnapsConfig()).resolve(make_tiny_dataset(seed=3))
        assert plain.metrics is None and plain.trace is None
        assert plain.bootstrap_merges == traced_result.bootstrap_merges
        assert plain.iterative_merges == traced_result.iterative_merges


class TestQueryTelemetry:
    def test_query_spans_and_latency(self):
        from repro.core import SnapsConfig, SnapsResolver
        from repro.data.synthetic import make_tiny_dataset
        from repro.pedigree import build_pedigree_graph
        from repro.query import Query, QueryEngine

        dataset = make_tiny_dataset(seed=3)
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        graph = build_pedigree_graph(dataset, result.entities)
        trace = Trace()
        metrics = MetricsRegistry()
        engine = QueryEngine(graph, trace=trace, metrics=metrics)
        engine.search(
            Query(first_name="mary", surname="macdonald", parish="portree")
        )
        root = trace.roots[0]
        assert root.name == "query"
        stages = [s.name for s in root.children]
        assert stages == ["accumulate", "refine", "rank"]
        refine = root.children[1]
        assert [s.name for s in refine.children] == ["parish_match"]
        assert metrics.counter_value("query.searches") == 1
        assert metrics.histograms["query.latency_seconds"].count == 1


class TestProfilingMetrics:
    def test_value_counts_uses_counter_and_emits(self):
        from collections import Counter

        from repro.data.synthetic import make_tiny_dataset
        from repro.eval.profiling import _value_counts, attribute_profile

        dataset = make_tiny_dataset(seed=3)
        counts, missing = _value_counts(list(dataset), "first_name")
        assert isinstance(counts, Counter)
        registry = MetricsRegistry()
        profile = attribute_profile(dataset, "first_name", metrics=registry)
        assert registry.counter_value("profile.first_name.missing") == profile.missing
        values = registry.counter_value("profile.first_name.values")
        assert values + profile.missing == profile.n_records
        assert registry.counter_value("profile.first_name.distinct") > 0
