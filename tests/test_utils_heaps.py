"""Tests for TopK and UpdatablePriorityQueue."""

import pytest

from repro.utils.heaps import TopK, UpdatablePriorityQueue


class TestTopK:
    def test_keeps_best_k(self):
        top = TopK(3)
        for score in (0.1, 0.9, 0.5, 0.7, 0.3):
            top.push(score, score)
        assert [s for s, _ in top.items()] == [0.9, 0.7, 0.5]

    def test_fewer_than_k(self):
        top = TopK(10)
        top.push(1.0, "a")
        assert top.items() == [(1.0, "a")]

    def test_ties_prefer_earlier_insertion(self):
        top = TopK(1)
        top.push(0.5, "first")
        top.push(0.5, "second")
        assert top.items() == [(0.5, "first")]

    def test_len(self):
        top = TopK(2)
        assert len(top) == 0
        top.push(1, "a")
        top.push(2, "b")
        top.push(3, "c")
        assert len(top) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopK(0)

    def test_ordering_is_descending(self):
        top = TopK(5)
        for i in range(20):
            top.push(i % 7, i)
        scores = [s for s, _ in top.items()]
        assert scores == sorted(scores, reverse=True)


class TestUpdatablePriorityQueue:
    def test_pop_order(self):
        q = UpdatablePriorityQueue()
        q.push("low", 1)
        q.push("high", 3)
        q.push("mid", 2)
        assert [q.pop()[0] for _ in range(3)] == ["high", "mid", "low"]

    def test_update_priority(self):
        q = UpdatablePriorityQueue()
        q.push("a", 1)
        q.push("b", 2)
        q.push("a", 5)
        assert q.pop() == ("a", 5)
        assert q.pop() == ("b", 2)

    def test_remove(self):
        q = UpdatablePriorityQueue()
        q.push("a", 1)
        q.push("b", 2)
        q.remove("b")
        assert "b" not in q
        assert q.pop() == ("a", 1)

    def test_remove_missing_is_noop(self):
        q = UpdatablePriorityQueue()
        q.push("a", 1)
        q.remove("zzz")
        assert len(q) == 1

    def test_pop_empty_raises(self):
        q = UpdatablePriorityQueue()
        with pytest.raises(KeyError):
            q.pop()

    def test_tuple_priorities(self):
        q = UpdatablePriorityQueue()
        q.push("small_group", (1, 0.99))
        q.push("big_group", (3, 0.5))
        q.push("mid_group", (1, 1.0))
        assert q.pop()[0] == "big_group"
        assert q.pop()[0] == "mid_group"

    def test_len_and_bool(self):
        q = UpdatablePriorityQueue()
        assert not q
        q.push("a", 1)
        assert q and len(q) == 1
        q.push("a", 2)
        assert len(q) == 1  # update, not insert
