"""The paper's own worked examples, encoded as tests.

Each test cites the section it reproduces; together they pin the
implementation to the paper's semantics.
"""

import math

import pytest

from repro.blocking.candidates import CandidatePair
from repro.core import SnapsConfig
from repro.core.bootstrap import bootstrap_merge
from repro.core.constraints import ConstraintChecker
from repro.core.dependency_graph import AtomicNode, RelationalNode, build_dependency_graph
from repro.core.entities import EntityStore
from repro.core.merging import iterative_merge
from repro.core.scoring import PairScorer
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


class TestSection423WorkedExample:
    """Section 4.2.3: s_a = (0.5·1.0 + 0.3·0.9 + 0.2·0.9) / 1.0 = 0.95 and
    s_d = log2(100/(45+12)) / log2(100) ≈ 0.12."""

    def test_atomic_similarity(self):
        records = [
            Record(1, 1, Role.BB, {"first_name": "mary", "surname": "tayler",
                                   "parish": "klmor", "event_year": "1870",
                                   "gender": "f"}, 1),
            Record(2, 2, Role.DD, {"first_name": "mary", "surname": "taylor",
                                   "parish": "kilmore", "event_year": "1930",
                                   "gender": "f"}, 1),
        ]
        certs = [
            Certificate(1, CertificateType.BIRTH, 1870, "klmor", {Role.BB: 1}),
            Certificate(2, CertificateType.DEATH, 1930, "kilmore", {Role.DD: 2}),
        ]
        dataset = Dataset("ex", records, certs)
        scorer = PairScorer(dataset, SnapsConfig())
        node = RelationalNode(1, 2, (1, 2))
        node.atomic["first_name"] = AtomicNode("first_name", "mary", "mary", 1.0)
        node.atomic["surname"] = AtomicNode("surname", "tayler", "taylor", 0.9)
        node.atomic["parish"] = AtomicNode("parish", "klmor", "kilmore", 0.9)
        assert scorer.atomic_similarity(node) == pytest.approx(0.95)

    def test_disambiguation_similarity_formula(self):
        """Eq. (2) with |O| = 100 and frequencies 45 + 12 gives ≈ 0.12."""
        expected = math.log2(100 / (45 + 12)) / math.log2(100)
        assert expected == pytest.approx(0.1218, abs=1e-3)
        # And the implementation computes exactly this formula.
        from repro.core.scoring import NameFrequencyIndex

        class _Frequencies(NameFrequencyIndex):
            def __init__(self):
                self.total_records = 100

            def frequency(self, record):
                return 45 if record.record_id == 1 else 12

        records = [
            Record(1, 1, Role.BB, {"event_year": "1870"}, 1),
            Record(2, 2, Role.DD, {"event_year": "1930"}, 1),
        ]
        certs = [
            Certificate(1, CertificateType.BIRTH, 1870, "x", {Role.BB: 1}),
            Certificate(2, CertificateType.DEATH, 1930, "x", {Role.DD: 2}),
        ]
        dataset = Dataset("eq2", records, certs)
        scorer = PairScorer(
            dataset, SnapsConfig(), frequency_index=_Frequencies()
        )
        node = RelationalNode(1, 2, (1, 2))
        assert scorer.disambiguation_similarity(node) == pytest.approx(
            expected, abs=1e-9
        )


class TestFigure4Scenario:
    """Figures 3/4: a baby record r1 (maiden surname Smith) merges with a
    mother record r9 (married surname Tayler); PROP-A then re-points the
    (Smith, Taylor) surname node of (r1, r4) to (Tayler, Taylor) so the
    woman's death record r4 can link despite the name change."""

    @pytest.fixture()
    def scenario(self):
        records = [
            # r1: her own birth (maiden name smith).
            Record(1, 1, Role.BB, {"first_name": "mary", "surname": "smith",
                                   "gender": "f", "event_year": "1850",
                                   "parish": "kilmore"}, 1),
            # r9: her as mother years later (married surname tayler,
            # transcribed with a variant spelling).
            Record(9, 3, Role.BM, {"first_name": "mary", "surname": "tayler",
                                   "event_year": "1875",
                                   "parish": "kilmore"}, 1),
            # r4: her death record (married surname taylor).
            Record(4, 2, Role.DD, {"first_name": "mary", "surname": "taylor",
                                   "gender": "f", "event_year": "1899",
                                   "age": "49", "parish": "kilmore"}, 1),
        ]
        certs = [
            Certificate(1, CertificateType.BIRTH, 1850, "kilmore", {Role.BB: 1}),
            Certificate(2, CertificateType.DEATH, 1899, "kilmore", {Role.DD: 4}),
            Certificate(3, CertificateType.BIRTH, 1875, "kilmore", {Role.BM: 9}),
        ]
        return Dataset("fig4", records, certs)

    def test_prop_a_enables_the_cross_name_link(self, scenario):
        """From the paper's premise — "(r1, r9) is already merged" — the
        propagated surname lets the maiden-name record link to the
        married-name death record."""
        config = SnapsConfig()
        pairs = [CandidatePair(1, 4)]
        graph = build_dependency_graph(scenario, pairs, config)
        store = EntityStore(scenario)
        store.merge(1, 9)  # the paper's starting assumption
        scorer = PairScorer(scenario, config)
        node = graph.node((1, 4))
        # Before propagation: smith vs taylor disagree on the surname.
        assert "surname" not in node.atomic
        before = scorer.atomic_similarity(node)
        scorer.propagate_values(graph, node, store)
        # After propagation the node carries the (tayler, taylor) pair.
        assert node.atomic["surname"].key()[1:] == ("tayler", "taylor")
        after = scorer.atomic_similarity(node)
        assert after > before
        assert after >= config.merge_threshold

    def test_without_propagation_the_death_link_fails(self, scenario):
        """The same premise without PROP-A: smith vs taylor keeps the
        node below the merge threshold forever."""
        config = SnapsConfig(use_propagation=False)
        pairs = [CandidatePair(1, 4)]
        graph = build_dependency_graph(scenario, pairs, config)
        store = EntityStore(scenario)
        store.merge(1, 9)
        scorer = PairScorer(scenario, config)
        node = graph.node((1, 4))
        assert scorer.atomic_similarity(node) < config.merge_threshold


class TestSection422Constraints:
    """Section 4.2.2: a Bb can become a Bm only 15–55 years later, and a
    person has exactly one birth and one death record."""

    def test_temporal_window(self):
        checker = ConstraintChecker(temporal_slack_years=0)
        baby = Record(1, 1, Role.BB, {"event_year": "1870", "gender": "f"}, 1)
        young_mother = Record(2, 2, Role.BM, {"event_year": "1880"}, 2)
        plausible_mother = Record(3, 3, Role.BM, {"event_year": "1900"}, 3)
        assert not checker.records_compatible(baby, young_mother)  # age 10
        assert checker.records_compatible(baby, plausible_mother)  # age 30

    def test_one_death_per_person(self):
        """Figure 4: r1 linked to r4(Dd) forbids linking r1 to r12(Dd)."""
        records = [
            Record(1, 1, Role.BB, {"first_name": "john", "surname": "ross",
                                   "gender": "m", "event_year": "1870"}, 1),
            Record(4, 2, Role.DD, {"first_name": "john", "surname": "ross",
                                   "gender": "m", "event_year": "1890",
                                   "age": "20"}, 1),
            Record(12, 3, Role.DD, {"first_name": "john", "surname": "ross",
                                    "gender": "m", "event_year": "1895",
                                    "age": "25"}, 2),
        ]
        certs = [
            Certificate(1, CertificateType.BIRTH, 1870, "uig", {Role.BB: 1}),
            Certificate(2, CertificateType.DEATH, 1890, "uig", {Role.DD: 4}),
            Certificate(3, CertificateType.DEATH, 1895, "uig", {Role.DD: 12}),
        ]
        dataset = Dataset("link", records, certs)
        store = EntityStore(dataset)
        checker = ConstraintChecker()
        store.merge(1, 4)
        assert not checker.can_merge(
            store, dataset.record(1), dataset.record(12)
        )


class TestSection6IndexThreshold:
    """Section 6: S holds pairs sharing ≥1 bigram with similarity ≥ 0.5;
    self-similarity is 1, disjoint strings score 0."""

    def test_index_semantics(self):
        from repro.index import SimilarityAwareIndex

        index = SimilarityAwareIndex(["macdonald", "macdonell", "xu"], threshold=0.5)
        matches = dict(index.matches("macdonald"))
        assert matches["macdonald"] == 1.0
        assert 0.5 <= matches["macdonell"] < 1.0
        assert "xu" not in matches  # no shared bigram
