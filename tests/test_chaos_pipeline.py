"""Chaos suite: crash-resume at every phase boundary is byte-identical.

Each test kills the resolver CLI with an injected fault at a checkpoint
boundary, then resumes from the checkpoint directory and asserts the
final pedigree graph is byte-for-byte identical to an uninterrupted run.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.checkpoint import ALL_PHASES, ResolveCheckpointer
from repro.data.loader import save_dataset_csv
from repro.data.synthetic import make_tiny_dataset
from repro.faults import InjectedFault, injected
from repro.faults.inject import uninstall


@pytest.fixture(scope="module")
def stem(tmp_path_factory):
    root = tmp_path_factory.mktemp("chaos-data")
    stem = root / "tiny"
    save_dataset_csv(make_tiny_dataset(seed=3), stem)
    return stem


@pytest.fixture(scope="module")
def clean_graph(stem, tmp_path_factory):
    """Pedigree graph bytes from one uninterrupted run."""
    out = tmp_path_factory.mktemp("chaos-clean") / "graph.json"
    assert main(["resolve", "--data", str(stem), "--out", str(out)]) == 0
    return out.read_bytes()


def _crash_resolve(stem, ckdir, out, fault):
    """Run `resolve --checkpoint` expecting the injected fault to kill it."""
    with injected(fault):
        with pytest.raises(InjectedFault):
            main([
                "resolve", "--data", str(stem),
                "--checkpoint", str(ckdir), "--out", str(out),
            ])
    assert not out.exists()  # died before writing the final graph


class TestCrashResume:
    @pytest.mark.parametrize("phase", ALL_PHASES)
    def test_crash_after_each_phase(
        self, phase, stem, clean_graph, tmp_path, capsys
    ):
        """Crash immediately after `phase` commits; resume is identical."""
        ckdir, out = tmp_path / "ck", tmp_path / "graph.json"
        _crash_resolve(stem, ckdir, out, f"checkpoint.saved.{phase}:error:times=1")
        ckpt, _dataset, _config = ResolveCheckpointer.resume(ckdir)
        assert phase in ckpt.completed_prefix()

        capsys.readouterr()
        assert main(["resolve", "--resume", str(ckdir), "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert f"resuming from {ckdir}" in captured.err
        assert phase in captured.err
        assert out.read_bytes() == clean_graph

    @pytest.mark.parametrize("phase", ALL_PHASES)
    def test_torn_payload_reruns_phase(
        self, phase, stem, clean_graph, tmp_path
    ):
        """A torn payload fails its checksum; the phase re-runs on resume."""
        ckdir, out = tmp_path / "ck", tmp_path / "graph.json"
        _crash_resolve(stem, ckdir, out, f"checkpoint.torn.{phase}:torn_write:times=1")
        ckpt, _dataset, _config = ResolveCheckpointer.resume(ckdir)
        assert phase not in ckpt.completed_prefix()

        assert main(["resolve", "--resume", str(ckdir), "--out", str(out)]) == 0
        assert out.read_bytes() == clean_graph

    def test_crash_mid_commit_loses_only_that_phase(
        self, stem, clean_graph, tmp_path
    ):
        """A crash between payload write and rename leaves no payload."""
        ckdir, out = tmp_path / "ck", tmp_path / "graph.json"
        _crash_resolve(stem, ckdir, out, "checkpoint.commit.merging:error:times=1")
        ckpt, _dataset, _config = ResolveCheckpointer.resume(ckdir)
        assert ckpt.completed_prefix() == (
            "blocking", "bootstrap", "refine_bootstrap"
        )
        # No stray temp files pollute the phase directory.
        leftovers = [
            p for p in (ckdir / "phases").iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

        assert main(["resolve", "--resume", str(ckdir), "--out", str(out)]) == 0
        assert out.read_bytes() == clean_graph

    def test_repeated_crashes_still_converge(self, stem, clean_graph, tmp_path):
        """Crash twice at different phases; the second resume finishes."""
        ckdir, out = tmp_path / "ck", tmp_path / "graph.json"
        _crash_resolve(stem, ckdir, out, "checkpoint.saved.blocking:error:times=1")
        with injected("checkpoint.saved.merging:error:times=1"):
            with pytest.raises(InjectedFault):
                main(["resolve", "--resume", str(ckdir), "--out", str(out)])
        assert main(["resolve", "--resume", str(ckdir), "--out", str(out)]) == 0
        assert out.read_bytes() == clean_graph


class TestSnapshotCommitFault:
    def test_no_partial_snapshot_visible(self, stem, tmp_path):
        """A crash at snapshot commit leaves the store empty and reusable."""
        store = tmp_path / "store"
        with injected("store.save.commit:error:times=1"):
            with pytest.raises(InjectedFault):
                main([
                    "resolve", "--data", str(stem),
                    "--snapshot-out", str(store),
                ])
        assert not (store / "HEAD").exists()
        snapshots = store / "snapshots"
        assert not snapshots.exists() or not any(snapshots.iterdir())
        # No stray temp directories in the store root either.
        if store.exists():
            assert [p for p in store.iterdir() if p.name.startswith(".tmp-")] == []

        # The same store works on retry.
        assert main([
            "resolve", "--data", str(stem), "--snapshot-out", str(store),
        ]) == 0
        assert (store / "HEAD").exists()


class TestEnvActivation:
    def test_snaps_faults_env_reaches_cli(self, stem, tmp_path, monkeypatch):
        """`SNAPS_FAULTS` injects through the real CLI entry point."""
        monkeypatch.setenv("SNAPS_FAULTS", "checkpoint.saved.blocking:error:times=1")
        ckdir, out = tmp_path / "ck", tmp_path / "graph.json"
        try:
            with pytest.raises(InjectedFault):
                main([
                    "resolve", "--data", str(stem),
                    "--checkpoint", str(ckdir), "--out", str(out),
                ])
        finally:
            uninstall()
        assert (ckdir / "phases" / "blocking.npz").exists()
