"""Tests for sorted-neighbourhood blocking."""

import pytest

from repro.blocking.base import block_key_pairs
from repro.blocking.sorted_neighbourhood import SortedNeighbourhoodBlocker
from repro.data.records import Record
from repro.data.roles import Role


def _record(rid, first, surname):
    return Record(rid, rid, Role.BM,
                  {"first_name": first, "surname": surname,
                   "event_year": "1880"}, rid)


@pytest.fixture()
def records():
    return [
        _record(1, "ann", "beaton"),
        _record(2, "ann", "beaton"),
        _record(3, "mary", "beaton"),
        _record(4, "flora", "macrae"),
        _record(5, "flora", "macrea"),   # sorts adjacent to macrae
        _record(6, "john", "young"),
    ]


class TestSortedNeighbourhood:
    def test_adjacent_keys_share_bucket(self, records):
        blocker = SortedNeighbourhoodBlocker(window=4).fit(records)
        pairs = set(block_key_pairs(records, blocker))
        assert (1, 2) in pairs       # identical keys
        assert (4, 5) in pairs       # adjacent after sorting

    def test_distant_keys_do_not_pair(self, records):
        blocker = SortedNeighbourhoodBlocker(window=2).fit(records)
        pairs = set(block_key_pairs(records, blocker))
        assert (1, 6) not in pairs   # beaton vs young, far apart

    def test_unfitted_records_produce_no_keys(self, records):
        blocker = SortedNeighbourhoodBlocker().fit(records[:2])
        assert blocker.block_keys(records[5]) == []

    def test_missing_attributes_skipped(self):
        blocker = SortedNeighbourhoodBlocker()
        nameless = Record(9, 9, Role.BM, {"event_year": "1880"}, 9)
        blocker.fit([nameless, _record(1, "ann", "beaton")])
        assert blocker.block_keys(nameless) == []

    def test_window_bounds_bucket_size(self, records):
        many = [_record(i, "ann", "beaton") for i in range(1, 40)]
        blocker = SortedNeighbourhoodBlocker(window=6).fit(many)
        buckets = {}
        for record in many:
            for key in blocker.block_keys(record):
                buckets.setdefault(key, 0)
                buckets[key] += 1
        assert max(buckets.values()) <= 6 + 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SortedNeighbourhoodBlocker(window=1)

    def test_variant_names_sort_together(self):
        records = [
            _record(1, "effie", "grant"),
            _record(2, "euphemia", "grant"),
        ]
        blocker = SortedNeighbourhoodBlocker(window=2).fit(records)
        pairs = set(block_key_pairs(records, blocker))
        assert (1, 2) in pairs  # canonicalised keys sort identically
