"""Tests for the Fellegi-Sunter probabilistic baseline."""

import numpy as np
import pytest

from repro.baselines.fellegi_sunter import EmEstimate, FellegiSunterLinker
from repro.eval import evaluate_linkage


class TestEmEstimation:
    def test_em_separates_clear_mixture(self):
        """Synthetic patterns from a known two-class mixture: EM must
        recover m >> u."""
        rng = np.random.default_rng(3)
        n_match, n_non = 300, 2700
        true_m, true_u = 0.92, 0.08
        matches = (rng.random((n_match, 4)) < true_m).astype(np.int8)
        nons = (rng.random((n_non, 4)) < true_u).astype(np.int8)
        patterns = np.vstack([matches, nons])
        linker = FellegiSunterLinker(attributes=("a", "b", "c", "d"))
        estimate = linker.fit_em(patterns)
        assert np.all(estimate.m > 0.8)
        assert np.all(estimate.u < 0.2)
        assert estimate.prevalence == pytest.approx(0.1, abs=0.05)

    def test_missing_comparisons_tolerated(self):
        patterns = np.array(
            [[1, -1, 1], [0, 0, -1], [1, 1, 1], [0, -1, 0]] * 20, dtype=np.int8
        )
        estimate = FellegiSunterLinker(attributes=("a", "b", "c")).fit_em(patterns)
        assert np.all((estimate.m > 0) & (estimate.m < 1))
        assert np.all((estimate.u > 0) & (estimate.u < 1))

    def test_empty_patterns_rejected(self):
        linker = FellegiSunterLinker(attributes=("a",))
        with pytest.raises(ValueError):
            linker.fit_em(np.empty((0, 1), dtype=np.int8))

    def test_weight_computation(self):
        estimate = EmEstimate(
            attributes=("a", "b"),
            m=np.array([0.9, 0.8]),
            u=np.array([0.1, 0.2]),
            prevalence=0.1,
            n_iterations=1,
        )
        import math

        agree_both = estimate.weight(np.array([1, 1]))
        assert agree_both == pytest.approx(math.log(9) + math.log(4))
        missing_second = estimate.weight(np.array([1, -1]))
        assert missing_second == pytest.approx(math.log(9))
        disagree = estimate.weight(np.array([0, 0]))
        assert disagree < 0


class TestLinkage:
    def test_links_tiny_dataset(self, tiny_dataset):
        result = FellegiSunterLinker(seed=1).link(tiny_dataset)
        ev = evaluate_linkage(
            result.matched_pairs("Bp-Bp"), tiny_dataset.true_match_pairs("Bp-Bp")
        )
        assert ev.recall > 40.0
        assert ev.precision > 40.0

    def test_weaker_than_snaps(self, tiny_dataset, resolved_tiny):
        """The paper's thesis: pairwise models lose to collective ER."""
        fs = FellegiSunterLinker(seed=1).link(tiny_dataset)
        truth = tiny_dataset.true_match_pairs("Bp-Bp")
        fs_f = evaluate_linkage(fs.matched_pairs("Bp-Bp"), truth).f_star
        snaps_f = evaluate_linkage(resolved_tiny.matched_pairs("Bp-Bp"), truth).f_star
        assert snaps_f >= fs_f - 2.0

    def test_explicit_threshold_respected(self, tiny_dataset):
        strict = FellegiSunterLinker(match_weight_threshold=50.0).link(tiny_dataset)
        lax = FellegiSunterLinker(match_weight_threshold=-50.0).link(tiny_dataset)
        assert len(strict.matched_pairs("Bp-Bp")) <= len(lax.matched_pairs("Bp-Bp"))

    def test_validation(self):
        with pytest.raises(ValueError):
            FellegiSunterLinker(attributes=())

    def test_timings_recorded(self, tiny_dataset):
        result = FellegiSunterLinker().link(tiny_dataset)
        assert {"comparison", "em", "classification"} <= set(result.timings.times)
