"""Tests for the from-scratch classifiers."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTree,
    LinearSVM,
    LogisticRegression,
    RandomForest,
    StandardScaler,
    train_test_split,
)


@pytest.fixture(scope="module")
def separable():
    """Linearly separable 2-D blobs."""
    rng = np.random.default_rng(0)
    X0 = rng.normal(loc=-1.5, scale=0.5, size=(150, 2))
    X1 = rng.normal(loc=+1.5, scale=0.5, size=(150, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * 150 + [1] * 150)
    return X, y


@pytest.fixture(scope="module")
def xor_data():
    """XOR pattern — linearly inseparable, trees should handle it."""
    rng = np.random.default_rng(1)
    X = rng.uniform(-1, 1, size=(400, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


ALL_CLASSIFIERS = [
    lambda: LogisticRegression(),
    lambda: DecisionTree(seed=0),
    lambda: RandomForest(n_trees=7, seed=0),
    lambda: LinearSVM(seed=0),
]


class TestAllClassifiers:
    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_separable_accuracy(self, factory, separable):
        X, y = separable
        model = factory().fit(X, y)
        accuracy = (model.predict(X) == y).mean()
        assert accuracy > 0.95

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_predictions_are_binary(self, factory, separable):
        X, y = separable
        predictions = factory().fit(X, y).predict(X)
        assert set(np.unique(predictions)) <= {0, 1}

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_unfitted_predict_raises(self, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.zeros((2, 2)))

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_rejects_non_binary_labels(self, factory):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((4, 2)), np.array([0, 1, 2, 1]))

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_rejects_empty(self, factory):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((0, 2)), np.array([]))


class TestTreesOnXor:
    def test_tree_beats_linear_on_xor(self, xor_data):
        X, y = xor_data
        tree_acc = (DecisionTree(seed=0).fit(X, y).predict(X) == y).mean()
        linear_acc = (LogisticRegression().fit(X, y).predict(X) == y).mean()
        assert tree_acc > 0.9
        assert tree_acc > linear_acc + 0.2

    def test_forest_at_least_as_good_as_tree(self, xor_data):
        X, y = xor_data
        tree_acc = (DecisionTree(max_depth=4, seed=0).fit(X, y).predict(X) == y).mean()
        forest_acc = (
            RandomForest(n_trees=15, max_depth=4, seed=0).fit(X, y).predict(X) == y
        ).mean()
        assert forest_acc >= tree_acc - 0.05


class TestLogisticRegression:
    def test_probabilities_in_range(self, separable):
        X, y = separable
        probs = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_deterministic(self, separable):
        X, y = separable
        a = LogisticRegression().fit(X, y).predict_proba(X)
        b = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.allclose(a, b)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)


class TestSvm:
    def test_margin_signs_match_predictions(self, separable):
        X, y = separable
        model = LinearSVM(seed=0).fit(X, y)
        margins = model.decision_function(X)
        assert np.array_equal((margins >= 0).astype(int), model.predict(X))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            LinearSVM(lambda_reg=0)


class TestScalerAndSplit:
    def test_scaler_standardises(self, separable):
        X, _ = separable
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_scaler_constant_column_safe(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_scaler_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_split_sizes(self, separable):
        X, y = separable
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.3, seed=1)
        assert len(X_tr) + len(X_te) == len(X)
        assert len(X_te) == pytest.approx(0.3 * len(X), abs=2)

    def test_split_disjoint_and_deterministic(self, separable):
        X, y = separable
        a = train_test_split(X, y, seed=5)
        b = train_test_split(X, y, seed=5)
        assert np.array_equal(a[0], b[0])

    def test_split_bad_fraction(self, separable):
        X, y = separable
        with pytest.raises(ValueError):
            train_test_split(X, y, test_fraction=1.5)
