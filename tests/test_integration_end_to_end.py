"""End-to-end integration tests: the full SNAPS workflow of Figure 1.

Offline: simulate → corrupt → resolve → pedigree graph → indices.
Online: query → rank → select → extract pedigree → render.
"""

import pytest

from repro.anonymize import anonymise_dataset
from repro.core import SnapsConfig, SnapsResolver
from repro.eval import evaluate_linkage
from repro.pedigree import (
    build_pedigree_graph,
    extract_pedigree,
    render_ascii_tree,
    render_dot,
)
from repro.query import Query, QueryEngine


class TestOfflineOnlineWorkflow:
    def test_full_pipeline(self, tiny_dataset, resolved_tiny, tiny_pedigree_graph):
        engine = QueryEngine(tiny_pedigree_graph)
        # Pick a person who died (so they have a Dd record) and query for
        # them the way the Genetics Genealogy Team would.
        from repro.data.roles import Role

        target = next(
            e
            for e in tiny_pedigree_graph
            if Role.DD in e.roles and e.first("first_name") and e.first("surname")
        )
        query = Query(
            first_name=target.first("first_name"),
            surname=target.first("surname"),
            record_type="death",
            gender=target.gender,
        )
        results = engine.search(query, top_m=10)
        assert results, "query should return candidates"
        hit = next(
            (r for r in results if r.entity.entity_id == target.entity_id), None
        )
        assert hit is not None, "the true person must be retrievable"
        pedigree = extract_pedigree(tiny_pedigree_graph, hit.entity.entity_id, 2)
        assert pedigree.root_id == target.entity_id
        text = render_ascii_tree(pedigree)
        dot = render_dot(pedigree)
        assert target.display_name() in text
        assert "digraph" in dot

    def test_resolution_recovers_family_structure(
        self, tiny_dataset, tiny_pedigree_graph
    ):
        """Parents resolved across sibling certificates collapse into one
        pedigree node with several children."""
        multi_child = [
            e
            for e in tiny_pedigree_graph
            if len(tiny_pedigree_graph.children(e.entity_id)) >= 2
        ]
        assert multi_child, "resolution should produce multi-child parents"

    def test_pedigree_children_are_distinct_people(
        self, tiny_dataset, tiny_pedigree_graph
    ):
        """The partial-match-group problem: siblings must remain separate
        entities even though they share surname/address/parents."""
        # Collect ground-truth sibling sets (children of one mother).
        from repro.data.roles import Role

        by_mother: dict[int, set[int]] = {}
        for cert in tiny_dataset.certificates.values():
            baby = cert.roles.get(Role.BB)
            mother = cert.roles.get(Role.BM)
            if baby is None or mother is None:
                continue
            mother_person = tiny_dataset.record(mother).person_id
            by_mother.setdefault(mother_person, set()).add(
                tiny_dataset.record(baby).person_id
            )
        # No resolved entity may contain records of two different siblings.
        for entity in tiny_pedigree_graph:
            persons = {
                tiny_dataset.record(rid).person_id for rid in entity.record_ids
            }
            if len(persons) < 2:
                continue
            for siblings in by_mother.values():
                assert len(persons & siblings) <= 1, "two siblings merged"

    def test_anonymised_dataset_still_resolvable(self, tiny_dataset):
        """Anonymisation preserves linkage structure: resolving the
        anonymised data gives comparable quality."""
        anon, _ = anonymise_dataset(tiny_dataset, k=5, seed=4)
        original = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        anonymised = SnapsResolver(SnapsConfig()).resolve(anon)
        ev_orig = evaluate_linkage(
            original.matched_pairs("Bp-Bp"), tiny_dataset.true_match_pairs("Bp-Bp")
        )
        ev_anon = evaluate_linkage(
            anonymised.matched_pairs("Bp-Bp"), anon.true_match_pairs("Bp-Bp")
        )
        assert abs(ev_orig.f_star - ev_anon.f_star) < 25.0

    def test_query_on_anonymised_data(self, tiny_dataset):
        anon, _ = anonymise_dataset(tiny_dataset, k=5, seed=4)
        result = SnapsResolver(SnapsConfig()).resolve(anon)
        graph = build_pedigree_graph(anon, result.entities)
        engine = QueryEngine(graph)
        target = next(
            e for e in graph if e.first("first_name") and e.first("surname")
        )
        results = engine.search(
            Query(first_name=target.first("first_name"),
                  surname=target.first("surname"))
        )
        assert results
        assert results[0].score_percent > 50.0


class TestBaselineOrdering:
    """The paper's headline claim: SNAPS beats every baseline on F*."""

    def test_snaps_beats_attr_sim(self, tiny_dataset, resolved_tiny):
        from repro.baselines import AttrSimLinker

        attr = AttrSimLinker().link(tiny_dataset)
        truth = tiny_dataset.true_match_pairs("Bp-Bp")
        snaps_f = evaluate_linkage(resolved_tiny.matched_pairs("Bp-Bp"), truth).f_star
        attr_f = evaluate_linkage(attr.matched_pairs("Bp-Bp"), truth).f_star
        assert snaps_f >= attr_f - 2.0  # tiny data is easy; allow noise
