"""Tests for the name pools, Zipf weighting, gazetteer data, and deeper
demographic invariants of the simulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.names import (
    ADDRESSES_BY_PARISH,
    FEMALE_FIRST_NAMES,
    MALE_FIRST_NAMES,
    PARISH_COORDINATES,
    PARISHES,
    PUBLIC_FEMALE_FIRST_NAMES,
    PUBLIC_MALE_FIRST_NAMES,
    PUBLIC_SURNAMES,
    SURNAMES,
    zipf_weights,
)
from repro.data.population import PopulationConfig, PopulationSimulator


class TestZipfWeights:
    @given(n=st.integers(1, 500))
    def test_normalised(self, n):
        weights = zipf_weights(n)
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)

    @given(n=st.integers(2, 500))
    def test_monotone_decreasing(self, n):
        weights = zipf_weights(n)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_top_share_realistic(self):
        """The most common name's share approximates Figure 2's ~8%."""
        weights = zipf_weights(len(FEMALE_FIRST_NAMES))
        assert 0.04 < weights[0] < 0.15

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestNamePools:
    def test_pools_are_nonempty_and_lowercase(self):
        for pool in (FEMALE_FIRST_NAMES, MALE_FIRST_NAMES, SURNAMES):
            assert len(pool) >= 75
            assert all(name == name.lower() for name in pool)

    def test_no_duplicates(self):
        for pool in (FEMALE_FIRST_NAMES, MALE_FIRST_NAMES, SURNAMES):
            assert len(pool) == len(set(pool))

    def test_public_pools_disjoint_from_sensitive(self):
        sensitive = (
            {t for n in FEMALE_FIRST_NAMES for t in n.split()}
            | {t for n in MALE_FIRST_NAMES for t in n.split()}
            | set(SURNAMES)
        )
        for pool in (PUBLIC_FEMALE_FIRST_NAMES, PUBLIC_MALE_FIRST_NAMES,
                     PUBLIC_SURNAMES):
            assert not (set(pool) & sensitive)
            assert pool  # filtering must not empty the pool

    def test_parishes_have_coordinates_and_addresses(self):
        for parish in PARISHES:
            assert parish in PARISH_COORDINATES
            assert len(ADDRESSES_BY_PARISH[parish]) >= 5

    def test_parish_coordinates_on_skye(self):
        for point in PARISH_COORDINATES.values():
            assert 56.9 < point.lat < 57.8
            assert -7.0 < point.lon < -5.5


class TestDemographicInvariants:
    @pytest.fixture(scope="class")
    def run(self):
        config = PopulationConfig(
            start_year=1861, end_year=1901, n_founder_couples=25, seed=37
        )
        sim = PopulationSimulator(config)
        return sim, sim.run()

    def test_no_sibling_marriages(self, run):
        sim, _ = run
        for person in sim.people.values():
            if person.spouse_id is None:
                continue
            spouse = sim.people[person.spouse_id]
            if person.mother_id is not None and spouse.mother_id is not None:
                assert person.mother_id != spouse.mother_id

    def test_brides_take_groom_surname(self, run):
        sim, _ = run
        for person in sim.people.values():
            if (
                person.gender == "f"
                and person.spouse_id is not None
                and sim.people[person.spouse_id].alive
            ):
                assert person.surname == sim.people[person.spouse_id].surname

    def test_children_know_both_parents(self, run):
        sim, _ = run
        for person in sim.people.values():
            if person.mother_id is not None:
                assert person.father_id is not None
                mother = sim.people[person.mother_id]
                father = sim.people[person.father_id]
                assert person.person_id in mother.children
                assert person.person_id in father.children

    def test_marriage_age_bounds(self, run):
        sim, _ = run
        config = sim.config
        for person in sim.people.values():
            if person.marriage_year is not None and person.mother_id is not None:
                # Natives only (founders marry before the simulation).
                age = person.marriage_year - person.birth_year
                assert age >= config.min_marriage_age

    def test_population_grows(self, run):
        sim, dataset = run
        assert dataset.describe()["people"] > 25 * 2
