"""Tests for pedigree graph generation, extraction, and rendering."""

import pytest

from repro.pedigree import (
    build_pedigree_graph,
    extract_pedigree,
    render_ascii_tree,
    render_dot,
)
from repro.pedigree.graph import CHILD_OF, FATHER_OF, MOTHER_OF, SPOUSE_OF


class TestPedigreeGraph:
    def test_every_record_has_an_entity(self, tiny_dataset, tiny_pedigree_graph):
        for record in tiny_dataset:
            assert tiny_pedigree_graph.entity_of_record(record.record_id) is not None

    def test_entities_carry_merged_values(self, tiny_pedigree_graph):
        multi = [e for e in tiny_pedigree_graph if len(e.record_ids) > 1]
        assert multi, "resolved graph should contain multi-record entities"
        for entity in multi[:10]:
            assert entity.first("first_name") is not None

    def test_edges_follow_certificates(self, tiny_dataset, tiny_pedigree_graph):
        from repro.data.roles import CertificateType, Role

        checked = 0
        for cert in tiny_dataset.certificates.values():
            if cert.cert_type is not CertificateType.BIRTH:
                continue
            baby = tiny_pedigree_graph.entity_of_record(cert.roles[Role.BB])
            mother = tiny_pedigree_graph.entity_of_record(cert.roles[Role.BM])
            assert baby.entity_id in tiny_pedigree_graph.children(mother.entity_id)
            assert mother.entity_id in tiny_pedigree_graph.parents(baby.entity_id)
            checked += 1
            if checked > 20:
                break
        assert checked > 0

    def test_spouse_edges_symmetric(self, tiny_pedigree_graph):
        for entity in list(tiny_pedigree_graph)[:50]:
            for spouse in tiny_pedigree_graph.spouses(entity.entity_id):
                assert entity.entity_id in tiny_pedigree_graph.spouses(spouse)

    def test_no_self_edges(self, tiny_pedigree_graph):
        for entity in tiny_pedigree_graph:
            assert entity.entity_id not in tiny_pedigree_graph.all_neighbours(
                entity.entity_id
            )

    def test_unknown_edge_entity_rejected(self, tiny_pedigree_graph):
        with pytest.raises(KeyError):
            tiny_pedigree_graph.add_edge(-1, MOTHER_OF, -2)

    def test_display_name_and_year_range(self, tiny_pedigree_graph):
        entity = next(iter(tiny_pedigree_graph))
        assert " " in entity.display_name()
        span = entity.year_range()
        assert span is None or span[0] <= span[1]


class TestSerialization:
    def test_round_trip_preserves_entities_and_edges(
        self, tiny_pedigree_graph, tmp_path
    ):
        from repro.pedigree import load_pedigree_graph, save_pedigree_graph

        path = save_pedigree_graph(tiny_pedigree_graph, tmp_path / "graph.json")
        loaded = load_pedigree_graph(path)
        assert len(loaded) == len(tiny_pedigree_graph)
        assert loaded.n_edges() == tiny_pedigree_graph.n_edges()

    def test_save_creates_missing_parent_directories(
        self, tiny_pedigree_graph, tmp_path
    ):
        from repro.pedigree import save_pedigree_graph

        path = save_pedigree_graph(
            tiny_pedigree_graph, tmp_path / "deep" / "nested" / "graph.json"
        )
        assert path.exists()

    def test_payload_carries_format_and_version(
        self, tiny_pedigree_graph, tmp_path
    ):
        import json

        from repro.pedigree import save_pedigree_graph

        path = save_pedigree_graph(tiny_pedigree_graph, tmp_path / "graph.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == "snaps-pedigree-graph"
        assert payload["version"] == 1

    def test_unknown_version_rejected_on_load(
        self, tiny_pedigree_graph, tmp_path
    ):
        import json

        from repro.pedigree import load_pedigree_graph, save_pedigree_graph

        path = save_pedigree_graph(tiny_pedigree_graph, tmp_path / "graph.json")
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_pedigree_graph(path)

    def test_wrong_format_rejected_on_load(self, tmp_path):
        import json

        from repro.pedigree import load_pedigree_graph

        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ValueError, match="not a pedigree-graph"):
            load_pedigree_graph(path)


class TestExtraction:
    def _root_with_family(self, graph):
        for entity in graph:
            if graph.children(entity.entity_id) and graph.spouses(entity.entity_id):
                return entity
        pytest.skip("no entity with spouse and children")

    def test_zero_generations_is_root_only(self, tiny_pedigree_graph):
        root = self._root_with_family(tiny_pedigree_graph)
        pedigree = extract_pedigree(tiny_pedigree_graph, root.entity_id, 0)
        assert len(pedigree) == 1
        assert pedigree.root_id == root.entity_id

    def test_one_hop_contains_direct_family(self, tiny_pedigree_graph):
        root = self._root_with_family(tiny_pedigree_graph)
        pedigree = extract_pedigree(tiny_pedigree_graph, root.entity_id, 1)
        family = (
            tiny_pedigree_graph.children(root.entity_id)
            | tiny_pedigree_graph.spouses(root.entity_id)
            | tiny_pedigree_graph.parents(root.entity_id)
        )
        assert family <= set(pedigree.entities)

    def test_hops_recorded(self, tiny_pedigree_graph):
        root = self._root_with_family(tiny_pedigree_graph)
        pedigree = extract_pedigree(tiny_pedigree_graph, root.entity_id, 2)
        assert pedigree.hops[root.entity_id] == 0
        assert all(0 <= h <= 2 for h in pedigree.hops.values())

    def test_two_hops_superset_of_one(self, tiny_pedigree_graph):
        root = self._root_with_family(tiny_pedigree_graph)
        one = extract_pedigree(tiny_pedigree_graph, root.entity_id, 1)
        two = extract_pedigree(tiny_pedigree_graph, root.entity_id, 2)
        assert set(one.entities) <= set(two.entities)

    def test_edges_restricted_to_extracted(self, tiny_pedigree_graph):
        root = self._root_with_family(tiny_pedigree_graph)
        pedigree = extract_pedigree(tiny_pedigree_graph, root.entity_id, 2)
        for source, _, target in pedigree.edges:
            assert source in pedigree.entities
            assert target in pedigree.entities

    def test_generations_signed(self, tiny_pedigree_graph):
        root = self._root_with_family(tiny_pedigree_graph)
        pedigree = extract_pedigree(tiny_pedigree_graph, root.entity_id, 2)
        assert pedigree.generation_of(root.entity_id) == 0
        for child in tiny_pedigree_graph.children(root.entity_id):
            if child in pedigree.entities:
                assert pedigree.generation_of(child) == -1

    def test_unknown_entity_raises(self, tiny_pedigree_graph):
        with pytest.raises(KeyError):
            extract_pedigree(tiny_pedigree_graph, -99)

    def test_negative_generations_rejected(self, tiny_pedigree_graph):
        root = next(iter(tiny_pedigree_graph))
        with pytest.raises(ValueError):
            extract_pedigree(tiny_pedigree_graph, root.entity_id, -1)


class TestRendering:
    def _pedigree(self, graph):
        for entity in graph:
            if graph.children(entity.entity_id):
                return extract_pedigree(graph, entity.entity_id, 2)
        pytest.skip("no suitable entity")

    def test_ascii_contains_root_marker(self, tiny_pedigree_graph):
        pedigree = self._pedigree(tiny_pedigree_graph)
        text = render_ascii_tree(pedigree)
        assert "*" in text
        assert pedigree.root.display_name() in text

    def test_ascii_has_generation_headers(self, tiny_pedigree_graph):
        pedigree = self._pedigree(tiny_pedigree_graph)
        assert "===" in render_ascii_tree(pedigree)

    def test_dot_is_valid_shape(self, tiny_pedigree_graph):
        pedigree = self._pedigree(tiny_pedigree_graph)
        dot = render_dot(pedigree)
        assert dot.startswith("digraph pedigree {")
        assert dot.rstrip().endswith("}")
        for entity_id in pedigree.entities:
            assert f"e{entity_id} " in dot

    def test_dot_edges_rendered(self, tiny_pedigree_graph):
        pedigree = self._pedigree(tiny_pedigree_graph)
        dot = render_dot(pedigree)
        assert "->" in dot
