"""Tests for the streaming ingest subsystem (repro.stream).

Covers the spool source, the exactly-once journal, the end-to-end
pipeline under live concurrent search traffic (zero non-2xx across
back-to-back promotions, terminal state byte-identical to a one-shot
ingest), and chaos: a crash at every state-machine boundary must resume
to the identical snapshot lineage with no duplicate ingests.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.data.loader import save_dataset_csv
from repro.data.records import concat_datasets
from repro.data.synthetic import make_tiny_dataset, split_stream
from repro.faults import InjectedFault, RetryPolicy, injected
from repro.serve import ServeClient, ServeConfig, ServingApp, make_server
from repro.store import IncrementalResolver, SnapshotStore
from repro.stream import (
    BatchJournal,
    PromoteError,
    SnapshotPromoter,
    SpoolSource,
    StreamConfig,
    StreamPipeline,
    batch_sha256,
    write_batch,
)
from repro.stream.journal import INGESTED, PROMOTED

N_BATCHES = 3


# ----------------------------------------------------------------------
# Shared material: one base + micro-batches, resolved once
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def stream_parts(tiny_dataset):
    base, batches = split_stream(tiny_dataset, N_BATCHES)
    return base, batches


@pytest.fixture(scope="module")
def base_resolved(stream_parts):
    base, _ = stream_parts
    return SnapsResolver(SnapsConfig()).resolve(base)


def _new_store(tmp_path, base_resolved):
    store = SnapshotStore(tmp_path / "store")
    store.save(base_resolved)
    return store


def _fill_spool(tmp_path, batches):
    spool = tmp_path / "spool"
    for batch in batches:
        write_batch(spool, batch.name, batch)
    return spool


def _graph_bytes(store, snapshot_id):
    manifest = store.manifest(snapshot_id)
    blob = manifest.artifacts["graph"]
    return (store.path_of(snapshot_id) / blob["path"]).read_bytes()


class _DirectClient:
    """In-process stand-in for ServeClient (no sockets; chaos speed)."""

    def __init__(self, app):
        self.app = app

    def reload(self, snapshot_id=None, retry=None):
        body = json.dumps(
            {"snapshot": snapshot_id} if snapshot_id else {}
        ).encode()
        response = self.app.handle("POST", "/v1/reload", body=body)
        if response.status != 200:
            raise AssertionError(f"reload -> {response.status}: {response.body}")
        return json.loads(response.body)

    def healthz(self):
        return json.loads(self.app.handle("GET", "/healthz").body)


def _app_from_store(store):
    loaded = store.load(artifacts=("graph", "indexes"))
    return ServingApp(
        loaded.graph,
        ServeConfig(),
        keyword_index=loaded.keyword_index,
        sim_index=loaded.sim_index,
        store=store,
        manifest=loaded.manifest,
    )


# ----------------------------------------------------------------------
# Spool source
# ----------------------------------------------------------------------


class TestSpoolSource:
    def test_ready_marker_batch_is_picked_up_immediately(
        self, tmp_path, stream_parts
    ):
        _, batches = stream_parts
        write_batch(tmp_path, "b001", batches[0], ready=True)
        source = SpoolSource(tmp_path)
        polled = source.poll()
        assert [b.name for b in polled] == ["b001"]
        assert polled[0].sha256 == batch_sha256(tmp_path / "b001")
        assert source.poll() == []  # at most once per instance

    def test_unmarked_batch_needs_two_stable_polls(self, tmp_path, stream_parts):
        _, batches = stream_parts
        write_batch(tmp_path, "b001", batches[0], ready=False)
        source = SpoolSource(tmp_path)
        assert source.poll() == []  # first sighting only records
        assert [b.name for b in source.poll()] == ["b001"]  # unchanged -> ready

    def test_growing_file_is_not_picked_up(self, tmp_path, stream_parts):
        _, batches = stream_parts
        stem = write_batch(tmp_path, "b001", batches[0], ready=False)
        source = SpoolSource(tmp_path)
        assert source.poll() == []
        # The file changes between polls: still mid-upload.
        time.sleep(0.01)
        with stem.with_suffix(".records.csv").open("a") as handle:
            handle.write("# trailing\n")
        assert source.poll() == []

    def test_require_ready_ignores_stable_unmarked_batches(
        self, tmp_path, stream_parts
    ):
        _, batches = stream_parts
        write_batch(tmp_path, "b001", batches[0], ready=False)
        source = SpoolSource(tmp_path, require_ready=True)
        assert source.poll() == []
        assert source.poll() == []

    def test_manifest_fixes_order_and_blocks_on_gaps(
        self, tmp_path, stream_parts
    ):
        _, batches = stream_parts
        write_batch(tmp_path, "early", batches[0])
        write_batch(tmp_path, "late", batches[1])
        (tmp_path / "batches.list").write_text("# backlog\nlate\nmissing\nearly\n")
        source = SpoolSource(tmp_path)
        # 'late' leads (manifest order); 'missing' gates 'early'.
        assert [b.name for b in source.poll()] == ["late"]
        write_batch(tmp_path, "missing", batches[2])
        assert [b.name for b in source.poll()] == ["missing", "early"]

    def test_sha_identity_ignores_rename(self, tmp_path, stream_parts):
        _, batches = stream_parts
        a = write_batch(tmp_path, "a", batches[0])
        b = write_batch(tmp_path, "b", batches[0])
        assert batch_sha256(a) != batch_sha256(b)  # name is hashed...
        # ...but identical content under the same name matches.
        other = tmp_path / "other"
        c = write_batch(other, "a", batches[0])
        assert batch_sha256(a) == batch_sha256(c)


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------


class TestBatchJournal:
    def test_round_trip_and_queries(self, tmp_path):
        journal = BatchJournal(tmp_path)
        entry = journal.record(INGESTED, "b001", ["sha1"], ["b001"],
                               snapshot="s1", parent="s0")
        journal.record(PROMOTED, "b001", ["sha1"], ["b001"],
                       snapshot="s1", seq=entry.seq)
        journal.record(INGESTED, "b002+b003", ["sha2", "sha3"],
                       ["b002", "b003"], snapshot="s2", parent="s1")
        reloaded = BatchJournal(tmp_path)
        assert reloaded.completed_shas() == {"sha1", "sha2", "sha3"}
        assert [e.window for e in reloaded.unpromoted()] == ["b002+b003"]
        assert reloaded.snapshot_lineage() == ["s1", "s2"]
        assert reloaded.ingest_counts() == {"sha1": 1, "sha2": 1, "sha3": 1}
        assert reloaded.next_seq() == 3

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = BatchJournal(tmp_path)
        journal.record(INGESTED, "b001", ["sha1"], ["b001"], snapshot="s1")
        with journal.path.open("a") as handle:
            handle.write('{"seq": 2, "state": "inges')  # crash mid-append
        reloaded = BatchJournal(tmp_path)
        assert len(reloaded.entries) == 1
        assert reloaded.snapshot_lineage() == ["s1"]

    def test_corrupt_middle_line_raises(self, tmp_path):
        journal = BatchJournal(tmp_path)
        journal.record(INGESTED, "b001", ["sha1"], ["b001"], snapshot="s1")
        lines = journal.path.read_text().splitlines()
        journal.path.write_text("GARBAGE\n" + "\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt at line 1"):
            BatchJournal(tmp_path)

    def test_unknown_state_rejected(self, tmp_path):
        journal = BatchJournal(tmp_path)
        with pytest.raises(ValueError, match="unknown journal state"):
            journal.record("exploded", "w", [], [])

    def test_enospc_mid_append_rolls_back(self, tmp_path, monkeypatch):
        import errno

        from repro.faults import ResourceFault

        journal = BatchJournal(tmp_path)
        journal.record(INGESTED, "b001", ["sha1"], ["b001"], snapshot="s1")
        size_before = journal.path.stat().st_size

        import repro.stream.journal as journal_module

        def boom(fd):
            raise OSError(errno.ENOSPC, "disk full")

        monkeypatch.setattr(journal_module.os, "fsync", boom)
        with pytest.raises(ResourceFault, match="free disk space"):
            journal.record(INGESTED, "b002", ["sha2"], ["b002"], snapshot="s2")
        monkeypatch.undo()
        # The failed append left no torn head: same length, still loads.
        assert journal.path.stat().st_size == size_before
        reloaded = BatchJournal(tmp_path)
        assert reloaded.snapshot_lineage() == ["s1"]
        # And the journal keeps working once space frees up.
        journal.record(INGESTED, "b002", ["sha2"], ["b002"], snapshot="s2")
        assert BatchJournal(tmp_path).snapshot_lineage() == ["s1", "s2"]


class TestJournalCompaction:
    def _seed(self, tmp_path):
        """Journal with a settled window, a quarantined one, and an
        ingested-but-unpromoted one."""
        journal = BatchJournal(tmp_path)
        journal.record(INGESTED, "b0", ["sha0"], ["b0"],
                       snapshot="s0", parent=None, seq=1)
        journal.record(PROMOTED, "b0", [], [], snapshot="s0", seq=1)
        journal.record("quarantined", "b1", ["sha1"], ["b1"], seq=2)
        journal.record(INGESTED, "b2", ["sha2"], ["b2"],
                       snapshot="s2", parent="s0", seq=3)
        return journal

    @staticmethod
    def _views(journal):
        return (
            journal.completed_shas(),
            journal.snapshot_lineage(),
            journal.next_seq(),
            journal.ingest_counts(),
            [entry.seq for entry in journal.unpromoted()],
        )

    def test_compact_folds_settled_keeps_live_tail(self, tmp_path):
        journal = self._seed(tmp_path)
        before = self._views(journal)
        stats = journal.compact()
        assert stats == {"folded": 3, "kept": 1}
        reloaded = BatchJournal(tmp_path)
        # Every query answer survives compaction bit-for-bit...
        assert self._views(reloaded) == before
        # ...while the file holds just the header plus the live tail.
        assert reloaded.header is not None
        assert len(reloaded.entries) == 1
        assert reloaded.entries[0].seq == 3

    def test_crash_before_rename_leaves_original(self, tmp_path):
        journal = self._seed(tmp_path)
        before = self._views(journal)
        with injected("journal.compact.commit:error"):
            with pytest.raises(InjectedFault):
                journal.compact()
        reloaded = BatchJournal(tmp_path)
        assert self._views(reloaded) == before
        assert reloaded.header is None
        assert len(reloaded.entries) == 4
        assert not list(tmp_path.glob("*.tmp-journal-*"))

    def test_crash_after_rename_loads_compacted(self, tmp_path):
        journal = self._seed(tmp_path)
        before = self._views(journal)
        with injected("journal.compact.done:error"):
            with pytest.raises(InjectedFault):
                journal.compact()
        reloaded = BatchJournal(tmp_path)
        assert self._views(reloaded) == before
        assert reloaded.header is not None
        assert len(reloaded.entries) == 1

    def test_double_compact_merges_headers(self, tmp_path):
        journal = self._seed(tmp_path)
        journal.compact()
        journal.record(PROMOTED, "b2", [], [], snapshot="s2", seq=3)
        journal.compact()
        reloaded = BatchJournal(tmp_path)
        assert reloaded.completed_shas() == {"sha0", "sha1", "sha2"}
        assert reloaded.snapshot_lineage() == ["s0", "s2"]
        assert reloaded.next_seq() == 4
        assert max(reloaded.ingest_counts().values()) == 1
        assert reloaded.entries == []

    def test_promoterless_fold_includes_ingested(self, tmp_path):
        journal = BatchJournal(tmp_path)
        journal.record(INGESTED, "b0", ["x0"], ["b0"], snapshot="t0", seq=1)
        journal.compact(require_promoted=False)
        reloaded = BatchJournal(tmp_path)
        assert reloaded.completed_shas() == {"x0"}
        assert reloaded.snapshot_lineage() == ["t0"]
        assert reloaded.next_seq() == 2
        assert reloaded.entries == []

    def test_header_past_first_line_is_corrupt(self, tmp_path):
        journal = self._seed(tmp_path)
        journal.compact()
        header_line = journal.path.read_text().splitlines()[0]
        with journal.path.open("a") as handle:
            handle.write(header_line + "\n")
        with pytest.raises(ValueError, match="past line 1"):
            BatchJournal(tmp_path)


def test_pipeline_compaction_preserves_exactly_once(
    tmp_path, base_resolved, stream_parts, reference_lineage
):
    """A pipeline with a tight journal bound compacts as it drains, and
    the compacted journal tells the exact same story as an unbounded
    one: same lineage, no double ingests."""
    _, batches = stream_parts
    lineage_want, terminal_bytes = reference_lineage
    store = _new_store(tmp_path, base_resolved)
    spool = _fill_spool(tmp_path, batches)
    pipeline = StreamPipeline(
        store,
        StreamConfig(
            spool=spool,
            coalesce=False,
            drain=True,
            poll_interval_s=0.01,
            journal_max_entries=1,
        ),
    )
    assert pipeline.run() == N_BATCHES
    assert pipeline.metrics.counter_value("stream.journal_compactions") >= 1
    journal = BatchJournal(pipeline.config.checkpoint)
    assert journal.header is not None
    assert journal.snapshot_lineage() == lineage_want
    assert max(journal.ingest_counts().values()) == 1
    assert _graph_bytes(store, lineage_want[-1]) == terminal_bytes


# ----------------------------------------------------------------------
# End to end: live traffic across back-to-back promotions
# ----------------------------------------------------------------------


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def streamed(self, tmp_path_factory, base_resolved, stream_parts):
        """Drain all batches through a live server under search load."""
        _, batches = stream_parts
        tmp_path = tmp_path_factory.mktemp("stream-e2e")
        store = _new_store(tmp_path, base_resolved)
        spool = _fill_spool(tmp_path, batches)
        app = _app_from_store(store)
        server = make_server(app, "127.0.0.1", 0)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base_url = f"http://{host}:{port}"

        graph = app.graph
        probe = next(
            e for e in graph if e.first("first_name") and e.first("surname")
        )
        stop = threading.Event()
        failures: list[str] = []
        counts = [0, 0]

        def hammer(index):
            client = ServeClient(base_url)
            while not stop.is_set():
                try:
                    client.search(
                        probe.first("first_name"), probe.first("surname"), top=3
                    )
                except Exception as exc:
                    failures.append(f"{type(exc).__name__}: {exc}")
                counts[index] += 1

        threads = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        pipeline = StreamPipeline(
            store,
            StreamConfig(
                spool=spool,
                serve_url=base_url,
                poll_interval_s=0.05,
                coalesce=False,
                drain=True,
            ),
            metrics=app.metrics,
        )
        try:
            ingested = pipeline.run()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            server.shutdown()
            server.server_close()
        return store, app, pipeline, ingested, failures, sum(counts)

    def test_all_batches_promoted(self, streamed):
        store, app, pipeline, ingested, _failures, _n = streamed
        assert ingested == N_BATCHES
        lineage = pipeline.journal.snapshot_lineage()
        assert len(lineage) == N_BATCHES
        assert pipeline.metrics.counter_value("stream.promotions") >= 3
        assert not pipeline.journal.unpromoted()
        # The replica serves the terminal snapshot...
        assert app.manifest.snapshot_id == lineage[-1]
        # ...which is also the store's HEAD, parent-chained to the base.
        assert store.latest() == lineage[-1]
        assert store.lineage_ids() == list(reversed(lineage)) + [
            store.lineage_ids()[-1]
        ]

    def test_zero_non_2xx_under_promotions(self, streamed):
        _store, _app, _pipeline, _ingested, failures, n_requests = streamed
        assert n_requests > 20, "load threads starved"
        assert failures == [], f"non-2xx during promotion: {failures[:5]}"

    def test_terminal_graph_byte_parity_with_one_shot_ingest(
        self, streamed, tmp_path, base_resolved, stream_parts
    ):
        """Batch-at-a-time streaming must converge to the same graph as
        ingesting every certificate in one shot."""
        _, batches = stream_parts
        store, _app, pipeline, _ingested, _failures, _n = streamed
        one_shot_store = _new_store(tmp_path, base_resolved)
        delta = batches[0]
        for batch in batches[1:]:
            delta = concat_datasets(delta, batch)
        result = IncrementalResolver(one_shot_store).ingest(delta)
        streamed_bytes = _graph_bytes(
            store, pipeline.journal.snapshot_lineage()[-1]
        )
        one_shot_bytes = _graph_bytes(
            one_shot_store, result.manifest.snapshot_id
        )
        assert streamed_bytes == one_shot_bytes

    def test_staleness_gauges_reported(self, streamed):
        _store, _app, pipeline, _ingested, _failures, _n = streamed
        gauges = pipeline.metrics.as_dict()["gauges"]
        assert gauges["stream.lag_batches"] == 0
        assert gauges["stream.staleness_seconds"] == 0.0


# ----------------------------------------------------------------------
# Coalescing backpressure
# ----------------------------------------------------------------------


class TestCoalescing:
    def test_backlog_coalesces_into_one_window(
        self, tmp_path, base_resolved, stream_parts
    ):
        _, batches = stream_parts
        store = _new_store(tmp_path, base_resolved)
        spool = _fill_spool(tmp_path, batches)
        pipeline = StreamPipeline(
            store,
            StreamConfig(
                spool=spool, coalesce=True, max_lag_batches=1, drain=True,
                poll_interval_s=0.01,
            ),
        )
        ingested = pipeline.run()
        assert ingested == N_BATCHES
        # One coalesced window (3 > max_lag 1), so a single snapshot.
        lineage = pipeline.journal.snapshot_lineage()
        assert len(lineage) == 1
        counters = pipeline.metrics.as_dict()["counters"]
        assert counters["stream.batches_coalesced"] == N_BATCHES - 1
        assert counters["stream.batches_ingested"] == N_BATCHES
        entry = pipeline.journal.entries[0]
        assert entry.window == "+".join(b.name for b in batches)

    def test_no_coalesce_keeps_batch_granularity(
        self, tmp_path, base_resolved, stream_parts
    ):
        _, batches = stream_parts
        store = _new_store(tmp_path, base_resolved)
        spool = _fill_spool(tmp_path, batches)
        pipeline = StreamPipeline(
            store,
            StreamConfig(
                spool=spool, coalesce=False, max_lag_batches=1, drain=True,
                poll_interval_s=0.01,
            ),
        )
        assert pipeline.run() == N_BATCHES
        assert len(pipeline.journal.snapshot_lineage()) == N_BATCHES


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------


class TestQuarantine:
    def test_poison_batch_is_journalled_not_retried(
        self, tmp_path, base_resolved, stream_parts
    ):
        _, batches = stream_parts
        store = _new_store(tmp_path, base_resolved)
        spool = _fill_spool(tmp_path, [batches[0]])
        # A batch whose records CSV is garbage after the header.
        bad_stem = spool / "b999"
        save_dataset_csv(batches[1], bad_stem)
        records = bad_stem.with_suffix(".records.csv")
        records.write_text(
            records.read_text() + "not,a,valid,row,at,all\n"
        )
        bad_stem.with_suffix(".ready").touch()
        (spool / "b001.ready").touch()
        pipeline = StreamPipeline(
            store,
            StreamConfig(
                spool=spool, coalesce=False, drain=True, poll_interval_s=0.01,
                validation="strict",
            ),
        )
        ingested = pipeline.run()
        assert ingested == 1  # only the good batch
        counters = pipeline.metrics.as_dict()["counters"]
        assert counters["stream.batches_quarantined"] == 1
        # The poison batch is journalled: a second pipeline over the
        # same spool does not retry it forever.
        again = StreamPipeline(
            store,
            StreamConfig(
                spool=spool, coalesce=False, drain=True, poll_interval_s=0.01,
            ),
        )
        assert again.run() == 0


# ----------------------------------------------------------------------
# Promoter policy
# ----------------------------------------------------------------------


class _FlakyClient:
    def __init__(self, fail_times=1, healthy=True):
        self.fail_times = fail_times
        self.healthy = healthy
        self.reloads: list[str | None] = []

    def reload(self, snapshot_id=None, retry=None):
        def send():
            self.reloads.append(snapshot_id)
            if len(self.reloads) <= self.fail_times:
                raise OSError("connection refused")  # transient
            return {"status": "reloaded", "snapshot": snapshot_id,
                    "previous": "prev"}

        return retry.call(send) if retry is not None else send()

    def healthz(self):
        return {"status": "ok" if self.healthy else "failing",
                "breakers": {}}


class TestSnapshotPromoter:
    def test_transient_reload_failures_are_retried(self):
        client = _FlakyClient(fail_times=2)
        promoter = SnapshotPromoter(
            client, retry=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        )
        result = promoter.promote("abc")
        assert result["status"] == "reloaded"
        assert len(client.reloads) == 3

    def test_unhealthy_swap_rolls_back(self):
        client = _FlakyClient(fail_times=0, healthy=False)
        promoter = SnapshotPromoter(
            client, retry=RetryPolicy(max_attempts=1, base_delay_s=0.0)
        )
        with pytest.raises(PromoteError, match="health check failed"):
            promoter.promote("abc")
        # Second reload call is the rollback to the previous snapshot.
        assert client.reloads == ["abc", "prev"]

    def test_open_breaker_rejects_without_touching_replica(self):
        client = _FlakyClient(fail_times=10**6)
        promoter = SnapshotPromoter(
            client, retry=RetryPolicy(max_attempts=1, base_delay_s=0.0)
        )
        for _ in range(promoter.breaker.failure_threshold):
            with pytest.raises(PromoteError):
                promoter.promote("abc")
        calls_before = len(client.reloads)
        with pytest.raises(PromoteError, match="circuit open"):
            promoter.promote("abc")
        assert len(client.reloads) == calls_before


# ----------------------------------------------------------------------
# Chaos: crash at every state boundary, resume exactly once
# ----------------------------------------------------------------------

SITES = (
    "stream.validate",
    "stream.ingest",
    "stream.commit",
    "stream.promote",
    "stream.done",
)


@pytest.fixture(scope="module")
def reference_lineage(tmp_path_factory, base_resolved, stream_parts):
    """Snapshot lineage of an uninterrupted batch-per-window run.

    Snapshot ids are content-addressed, so every correct run over the
    same base + batches — in any store directory, crashed or not — must
    produce exactly these ids.
    """
    _, batches = stream_parts
    tmp_path = tmp_path_factory.mktemp("stream-ref")
    store = _new_store(tmp_path, base_resolved)
    spool = _fill_spool(tmp_path, batches)
    pipeline = StreamPipeline(
        store,
        StreamConfig(
            spool=spool, coalesce=False, drain=True, poll_interval_s=0.01
        ),
    )
    assert pipeline.run() == N_BATCHES
    lineage = pipeline.journal.snapshot_lineage()
    assert len(lineage) == N_BATCHES
    terminal_bytes = _graph_bytes(store, lineage[-1])
    return lineage, terminal_bytes


@pytest.mark.parametrize("site", SITES)
def test_crash_at_boundary_resumes_to_identical_lineage(
    site, tmp_path, base_resolved, stream_parts, reference_lineage
):
    _, batches = stream_parts
    lineage_want, terminal_bytes = reference_lineage
    store = _new_store(tmp_path, base_resolved)
    spool = _fill_spool(tmp_path, batches)
    config = StreamConfig(
        spool=spool, coalesce=False, drain=True, poll_interval_s=0.01
    )

    def pipeline_with_replica():
        app = _app_from_store(store)
        promoter = SnapshotPromoter(
            _DirectClient(app),
            retry=RetryPolicy(max_attempts=1, base_delay_s=0.0),
        )
        return StreamPipeline(store, config, promoter=promoter), app

    # Run 1: the injected fault kills the pipeline mid-window.
    pipeline, _app = pipeline_with_replica()
    with injected(f"{site}:error:times=1"):
        with pytest.raises(InjectedFault):
            pipeline.run()

    # Run 2: a fresh pipeline (fresh process, same checkpoint dir)
    # resumes and drains.
    resumed, app = pipeline_with_replica()
    resumed.run()

    journal = BatchJournal(config.checkpoint)
    assert journal.snapshot_lineage() == lineage_want
    assert _graph_bytes(store, journal.snapshot_lineage()[-1]) == terminal_bytes
    # Exactly once: no batch has two ingested entries, nothing pending.
    assert max(journal.ingest_counts().values()) == 1
    assert not journal.unpromoted()
    # The resumed replica ends up serving the terminal snapshot.
    assert app.manifest.snapshot_id == lineage_want[-1]
    # The store's lineage matches the journal's (plus the base root).
    assert store.latest() == lineage_want[-1]


def test_clean_runs_are_deterministic(
    tmp_path, base_resolved, stream_parts, reference_lineage
):
    """Two uninterrupted runs in different directories agree end to end."""
    _, batches = stream_parts
    lineage_want, terminal_bytes = reference_lineage
    store = _new_store(tmp_path, base_resolved)
    spool = _fill_spool(tmp_path, batches)
    pipeline = StreamPipeline(
        store,
        StreamConfig(
            spool=spool, coalesce=False, drain=True, poll_interval_s=0.01
        ),
    )
    assert pipeline.run() == N_BATCHES
    assert pipeline.journal.snapshot_lineage() == lineage_want
    assert _graph_bytes(store, lineage_want[-1]) == terminal_bytes
