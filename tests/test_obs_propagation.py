"""Cross-process telemetry propagation (the --workers N coherence gate).

The parallel substrate ships a :class:`TraceContext` inside every chunk
task and gets back a worker span plus a pickled metrics-delta registry;
the parent stitches both into its own trace and registry.  These tests
pin the acceptance criteria: a multi-worker resolve produces ONE
coherent span tree (chunk spans descend from the resolve root), worker
counters land in the parent registry, resolution output stays
byte-identical to serial with telemetry enabled, and a crash mid-resolve
leaves a parseable streamed trace file.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cli import main
from repro.core import SnapsConfig, SnapsResolver
from repro.data.loader import save_dataset_csv
from repro.data.synthetic import make_tiny_dataset
from repro.faults import InjectedFault, injected
from repro.obs import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    Trace,
    TraceWriter,
    read_trace_jsonl,
)
from repro.parallel import ParallelConfig


def clusters_of(result):
    return sorted(
        tuple(sorted(e.record_ids)) for e in result.entities.entities()
    )


def spans_named(trace, prefix):
    return [span for _, span in trace.walk() if span.name.startswith(prefix)]


def ancestor_names(trace, target):
    """Names along the root→target path (excluding the target itself)."""
    path = []

    def descend(span, trail):
        if span is target:
            path.extend(trail)
            return True
        return any(descend(c, trail + [span.name]) for c in span.children)

    for root in trace.roots:
        if descend(root, []):
            break
    return path


# ----------------------------------------------------------------------
# Resolver-level propagation through a genuine ProcessPoolExecutor
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def pool_run(tmp_path_factory):
    """One traced + metered resolve over a real 2-worker process pool."""
    tiny = make_tiny_dataset(seed=3)
    path = tmp_path_factory.mktemp("obs-prop") / "trace.jsonl"
    trace = Trace(writer=TraceWriter(path))
    metrics = MetricsRegistry()
    result = SnapsResolver(SnapsConfig()).resolve(
        tiny,
        trace=trace,
        metrics=metrics,
        # oversubscribe forces an actual pool even on a one-core box.
        parallel=ParallelConfig(workers=2, oversubscribe=True),
    )
    serial = SnapsResolver(SnapsConfig()).resolve(
        tiny, parallel=ParallelConfig(workers=0)
    )
    return result, serial, trace, metrics, path


class TestPoolPropagation:
    def test_output_identical_with_telemetry_on(self, pool_run):
        result, serial, _, _, _ = pool_run
        assert clusters_of(result) == clusters_of(serial)

    def test_worker_spans_descend_from_resolve_root(self, pool_run):
        _, _, trace, _, _ = pool_run
        assert [s.name for s in trace.roots] == ["resolve"]
        workers = spans_named(trace, "worker.")
        assert workers  # chunks actually produced spans
        for span in workers:
            ancestry = ancestor_names(trace, span)
            assert ancestry[0] == "resolve"
            # The direct parent is the pool's per-chunk wait span.
            assert ancestry[-1].startswith("parallel.")

    def test_worker_spans_ran_in_other_processes(self, pool_run):
        _, _, trace, _, _ = pool_run
        pids = {span.attrs["pid"] for span in spans_named(trace, "worker.")}
        assert pids and os.getpid() not in pids

    def test_worker_metrics_merged_into_parent(self, pool_run):
        _, _, trace, metrics, _ = pool_run
        assert metrics.counter_value("parallel.worker.pairs_in") > 0
        assert metrics.counter_value("parallel.worker.pairs_kept") > 0
        assert metrics.counter_value("parallel.worker.pairs_scored") > 0
        chunk_hist = metrics.histograms["parallel.worker.chunk_seconds"]
        assert chunk_hist.count == len(spans_named(trace, "worker."))

    def test_trace_file_is_one_coherent_tree(self, pool_run):
        _, _, trace, _, path = pool_run
        rebuilt = read_trace_jsonl(path)
        assert rebuilt.trace_id == trace.trace_id
        assert [s.name for s in rebuilt.roots] == ["resolve"]
        # Live tree and file agree on the whole span population.
        live = sorted(span.span_id for _, span in trace.walk())
        from_file = sorted(span.span_id for _, span in rebuilt.walk())
        assert from_file == live
        for span in spans_named(rebuilt, "worker."):
            assert ancestor_names(rebuilt, span)[0] == "resolve"


# ----------------------------------------------------------------------
# Registry pickling through a real pool, merge collision semantics
# ----------------------------------------------------------------------


def _worker_registry(n: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("parallel.worker.pairs_in", n)
    registry.inc("shared.counter", 1)
    registry.observe(
        "parallel.worker.chunk_seconds", 0.01 * n, buckets=LATENCY_BUCKETS_S
    )
    return registry


class TestRegistryAcrossProcesses:
    def test_merge_after_real_pool_round_trip(self):
        parent = MetricsRegistry()
        parent.inc("shared.counter", 10)
        with ProcessPoolExecutor(max_workers=2) as pool:
            for registry in pool.map(_worker_registry, [1, 2, 3]):
                parent.merge(registry)
        assert parent.counter_value("parallel.worker.pairs_in") == 6
        # Name collisions accumulate — worker deltas never clobber.
        assert parent.counter_value("shared.counter") == 13
        hist = parent.histograms["parallel.worker.chunk_seconds"]
        assert hist.count == 3
        assert hist.buckets == LATENCY_BUCKETS_S

    def test_bucket_mismatch_still_rejected_after_round_trip(self):
        import pickle

        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.observe("h", 1.0, buckets=[1.0, 2.0])
        worker.observe("h", 1.0, buckets=[5.0])
        with pytest.raises(ValueError):
            parent.merge(pickle.loads(pickle.dumps(worker)))


# ----------------------------------------------------------------------
# CLI end-to-end: trace file + byte identity, and crash durability
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def stem(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-prop-data")
    stem = root / "tiny"
    save_dataset_csv(make_tiny_dataset(seed=3), stem)
    return stem


class TestCliTraceOut:
    def test_workers_resolve_writes_walkable_trace(self, stem, tmp_path):
        plain = tmp_path / "serial.json"
        assert main([
            "resolve", "--data", str(stem), "--workers", "0",
            "--out", str(plain),
        ]) == 0
        out, trace_path = tmp_path / "graph.json", tmp_path / "trace.jsonl"
        assert main([
            "resolve", "--data", str(stem), "--workers", "2",
            "--out", str(out), "--trace-out", str(trace_path),
        ]) == 0
        assert out.read_bytes() == plain.read_bytes()
        rebuilt = read_trace_jsonl(trace_path)
        assert [s.name for s in rebuilt.roots] == ["resolve"]
        phases = [s.name for s in rebuilt.roots[0].children]
        for phase in ("blocking", "graph", "bootstrap", "merge", "refine"):
            assert phase in phases
        workers = spans_named(rebuilt, "worker.")
        assert workers
        for span in workers:
            assert ancestor_names(rebuilt, span)[0] == "resolve"

    def test_crash_mid_resolve_leaves_parseable_trace(self, stem, tmp_path):
        """FaultInjector kills scoring mid-run; every span closed before
        the crash must still be on disk and linkable (satellite b)."""
        out, trace_path = tmp_path / "graph.json", tmp_path / "trace.jsonl"
        with injected("similarity.compare:error:after=100:times=1"):
            with pytest.raises(InjectedFault):
                main([
                    "resolve", "--data", str(stem), "--workers", "0",
                    "--out", str(out), "--trace-out", str(trace_path),
                ])
        assert not out.exists()
        rebuilt = read_trace_jsonl(trace_path)  # parses despite the crash
        names = {span.name for _, span in rebuilt.walk()}
        assert "blocking" in names  # completed before scoring crashed
        # The escaping fault is recorded on the aborted spans.
        errored = {s.name for _, s in rebuilt.walk() if s.error == "InjectedFault"}
        assert "resolve" in errored
