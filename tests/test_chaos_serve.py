"""Chaos suite: degraded-mode serving under injected backend faults.

All tests drive :class:`ServingApp` with a fake clock and fake sleep so
breaker recovery and retry backoff run instantly, and inject faults at
the production sites (``query.search``, ``pedigree.extract``,
``store.load.*``) via :mod:`repro.faults`.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

import pytest

from repro.cli import main
from repro.data.loader import save_dataset_csv
from repro.data.synthetic import make_tiny_dataset
from repro.faults import OPEN, injected
from repro.serve import Rejected, ServeConfig, ServingApp
from repro.store import SnapshotStore

TTL_S = 60.0
RESET_S = 30.0


@pytest.fixture()
def harness(tiny_pedigree_graph):
    return _make_harness(tiny_pedigree_graph)


def _make_harness(graph, store=None, **overrides):
    config_kwargs = dict(
        cache_ttl_s=TTL_S,
        breaker_threshold=2,
        breaker_reset_s=RESET_S,
        retry_attempts=3,
        retry_base_delay_s=0.01,
    )
    config_kwargs.update(overrides)
    now = [0.0]
    slept: list[float] = []
    app = ServingApp(
        graph,
        ServeConfig(**config_kwargs),
        store=store,
        clock=lambda: now[0],
        sleep=slept.append,
    )
    return app, now, slept


def _search_body(graph, suffix=""):
    entity = next(
        e for e in graph if e.first("first_name") and e.first("surname")
    )
    return json.dumps({
        "first_name": entity.first("first_name") + suffix,
        "surname": entity.first("surname"),
    }).encode()


def _health(app):
    return app.handle("GET", "/healthz").json()["status"]


@contextmanager
def search_fault():
    with injected("query.search:error:times=none") as injector:
        yield injector


class TestSearchDegradedMode:
    def test_stale_served_instead_of_5xx_storm(self, harness, tiny_pedigree_graph):
        app, now, _slept = harness
        body = _search_body(tiny_pedigree_graph)
        fresh = app.handle("POST", "/v1/search", body=body)
        assert fresh.status == 200 and fresh.json()["cached"] is False
        now[0] += TTL_S + 5.0  # entry expires but stays recoverable

        with search_fault() as injector:
            for _ in range(6):
                response = app.handle("POST", "/v1/search", body=body)
                assert response.status == 200  # never a 5xx
                payload = response.json()
                assert payload["stale"] is True and payload["cached"] is True
                assert payload["matches"] == fresh.json()["matches"]
                assert response.headers["Warning"].startswith("110 ")
                assert float(response.headers["X-Snaps-Stale-Age"]) >= 5.0
            # The circuit opened after breaker_threshold failures; the
            # remaining requests never touched the broken backend.
            assert injector.fired("query.search") == 2
        assert app.breakers["search"].state == OPEN
        assert _health(app) == "degraded"
        assert app.metrics.counter_value("serve.degraded.stale_served") == 6

    def test_uncached_query_gets_503_with_retry_after(
        self, harness, tiny_pedigree_graph
    ):
        app, _now, _slept = harness
        with search_fault():
            for _ in range(2):  # open the circuit
                app.handle(
                    "POST", "/v1/search",
                    body=_search_body(tiny_pedigree_graph),
                )
            response = app.handle(
                "POST", "/v1/search",
                body=_search_body(tiny_pedigree_graph, suffix="-unseen"),
            )
        assert response.status == 503
        assert int(response.headers["Retry-After"]) >= 1
        assert "circuit open" in response.json()["error"]["message"]

    def test_breaker_recovers_through_half_open_probe(
        self, harness, tiny_pedigree_graph
    ):
        app, now, _slept = harness
        body = _search_body(tiny_pedigree_graph)
        app.handle("POST", "/v1/search", body=body)
        now[0] += TTL_S + 1.0
        with search_fault():
            for _ in range(3):
                app.handle("POST", "/v1/search", body=body)
        assert _health(app) == "degraded"

        # Fault cleared but the reset timeout not yet elapsed: still stale.
        early = app.handle("POST", "/v1/search", body=body)
        assert early.json().get("stale") is True

        now[0] += RESET_S + 1.0  # half-open: one live probe allowed
        probed = app.handle("POST", "/v1/search", body=body)
        assert probed.status == 200
        assert probed.json()["cached"] is False  # a real backend answer
        assert "Warning" not in probed.headers
        assert _health(app) == "ok"

    def test_load_shedding_does_not_trip_breaker(
        self, harness, tiny_pedigree_graph
    ):
        app, _now, _slept = harness

        class SheddingGate:
            def admit(self, deadline=None):
                raise Rejected(429, 2.0, "pending queue full")

        app.gate = SheddingGate()
        for _ in range(5):
            response = app.handle(
                "POST", "/v1/search", body=_search_body(tiny_pedigree_graph)
            )
            assert response.status == 429
        # A traffic spike is not a backend fault.
        assert app.breakers["search"].state != OPEN
        assert _health(app) == "ok"


class TestPedigreeDegradedMode:
    def _warm(self, app, graph, fmt="json"):
        entity = next(iter(graph))
        path = f"/v1/pedigree/{entity.entity_id}"
        response = app.handle("GET", path, {"format": fmt})
        assert response.status == 200
        return path

    def test_stale_json_pedigree(self, harness, tiny_pedigree_graph):
        app, now, _slept = harness
        path = self._warm(app, tiny_pedigree_graph)
        now[0] += TTL_S + 2.0
        with injected("pedigree.extract:error:times=none"):
            response = app.handle("GET", path)
        assert response.status == 200
        assert response.json()["stale"] is True
        assert response.headers["Warning"].startswith("110 ")

    def test_stale_text_pedigree_keeps_content_type(
        self, harness, tiny_pedigree_graph
    ):
        app, now, _slept = harness
        path = self._warm(app, tiny_pedigree_graph, fmt="ascii")
        fresh_text = app.handle("GET", path, {"format": "ascii"}).body
        now[0] += TTL_S + 2.0
        with injected("pedigree.extract:error:times=none"):
            response = app.handle("GET", path, {"format": "ascii"})
        assert response.status == 200
        assert response.body == fresh_text
        assert response.content_type.startswith("text/plain")
        assert response.headers["Warning"].startswith("110 ")

    def test_unknown_entity_404_does_not_trip_breaker(self, harness):
        app, _now, _slept = harness
        for _ in range(5):
            assert app.handle("GET", "/v1/pedigree/999999").status == 404
        assert app.breakers["pedigree"].state != OPEN
        assert _health(app) == "ok"

    def test_uncached_pedigree_503_when_circuit_open(
        self, harness, tiny_pedigree_graph
    ):
        app, _now, _slept = harness
        with injected("pedigree.extract:error:times=none"):
            for _ in range(2):
                app.handle("GET", "/v1/pedigree/1")
            response = app.handle("GET", "/v1/pedigree/2")
        assert response.status == 503
        assert int(response.headers["Retry-After"]) >= 1


class TestHealthz:
    def test_failing_when_both_read_paths_open(self, harness):
        app, _now, _slept = harness
        for name in ("search", "pedigree"):
            for _ in range(2):
                app.breakers[name].record_failure()
        response = app.handle("GET", "/healthz")
        assert response.status == 503
        payload = response.json()
        assert payload["status"] == "failing"
        assert payload["breakers"]["search"]["state"] == OPEN
        assert payload["breakers"]["search"]["retry_after_s"] > 0

    def test_degraded_with_one_breaker_open(self, harness):
        app, _now, _slept = harness
        for _ in range(2):
            app.breakers["reload"].record_failure()
        response = app.handle("GET", "/healthz")
        assert response.status == 200
        assert response.json()["status"] == "degraded"


class TestReload:
    @pytest.fixture(scope="class")
    def snapshot_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("chaos-serve-store")
        stem = root / "tiny"
        save_dataset_csv(make_tiny_dataset(seed=3), stem)
        store = root / "store"
        assert main([
            "resolve", "--data", str(stem), "--snapshot-out", str(store),
        ]) == 0
        return store

    def test_reload_without_store_is_409(self, harness):
        app, _now, _slept = harness
        response = app.handle("POST", "/v1/reload")
        assert response.status == 409
        assert "--snapshot" in response.json()["error"]["message"]

    def test_reload_swaps_engine(self, tiny_pedigree_graph, snapshot_dir):
        app, _now, _slept = _make_harness(
            tiny_pedigree_graph, store=SnapshotStore(snapshot_dir)
        )
        old_engine = app.engine
        response = app.handle("POST", "/v1/reload")
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "reloaded" and payload["entities"] > 0
        assert app.engine is not old_engine
        assert app.metrics.counter_value("serve.reloads") == 1
        # The reloaded engine serves searches.
        search = app.handle(
            "POST", "/v1/search", body=_search_body(app.graph)
        )
        assert search.status == 200

    def test_reload_body_targets_exact_snapshot(
        self, tiny_pedigree_graph, snapshot_dir
    ):
        store = SnapshotStore(snapshot_dir)
        head = store.latest()
        app, _now, _slept = _make_harness(tiny_pedigree_graph, store=store)
        body = json.dumps({"snapshot": head}).encode()
        response = app.handle("POST", "/v1/reload", body=body)
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "reloaded"
        assert payload["snapshot"] == head
        assert payload["previous"] is None  # cold boot had no manifest
        assert app.manifest.snapshot_id == head

    def test_reload_same_snapshot_is_idempotent_noop(
        self, tiny_pedigree_graph, snapshot_dir
    ):
        store = SnapshotStore(snapshot_dir)
        head = store.latest()
        app, _now, _slept = _make_harness(tiny_pedigree_graph, store=store)
        body = json.dumps({"snapshot": head}).encode()
        assert app.handle("POST", "/v1/reload", body=body).status == 200
        engine = app.engine
        again = app.handle("POST", "/v1/reload", body=body)
        assert again.status == 200
        payload = again.json()
        assert payload["status"] == "unchanged"
        assert payload["previous"] == head
        assert app.engine is engine  # no swap, no rebuild
        assert app.metrics.counter_value("serve.reloads_noop") == 1
        assert app.metrics.counter_value("serve.reloads") == 1

    def test_reload_bad_body_is_400(self, tiny_pedigree_graph, snapshot_dir):
        app, _now, _slept = _make_harness(
            tiny_pedigree_graph, store=SnapshotStore(snapshot_dir)
        )
        for body in (b"{not json", b'["list"]', b'{"snapshot": 7}'):
            response = app.handle("POST", "/v1/reload", body=body)
            assert response.status == 400, body

    def test_reload_invalidates_result_cache(
        self, tiny_pedigree_graph, snapshot_dir
    ):
        """Promoted snapshots must not serve the predecessor's cached
        results as fresh hits."""
        app, _now, _slept = _make_harness(
            tiny_pedigree_graph, store=SnapshotStore(snapshot_dir)
        )
        body = _search_body(app.graph)
        assert app.handle("POST", "/v1/search", body=body).status == 200
        assert app.handle("POST", "/v1/search", body=body).status == 200
        assert app.cache.stats()["hits"] == 1
        assert app.handle("POST", "/v1/reload").status == 200
        assert app.cache.stats()["invalidations"] == 1
        # Same query again: recomputed on the new snapshot, not a hit.
        assert app.handle("POST", "/v1/search", body=body).status == 200
        assert app.cache.stats()["hits"] == 1
        assert app.cache.stats()["misses"] >= 2

    def test_transient_store_faults_are_retried(
        self, tiny_pedigree_graph, snapshot_dir
    ):
        app, _now, slept = _make_harness(
            tiny_pedigree_graph, store=SnapshotStore(snapshot_dir)
        )
        with injected("store.load.manifest:error:times=2"):
            response = app.handle("POST", "/v1/reload")
        assert response.status == 200
        assert len(slept) == 2  # two backoffs before the third try won
        assert app.breakers["reload"].state != OPEN

    def test_persistent_store_faults_keep_old_graph_serving(
        self, tiny_pedigree_graph, snapshot_dir
    ):
        app, _now, _slept = _make_harness(
            tiny_pedigree_graph, store=SnapshotStore(snapshot_dir)
        )
        old_engine = app.engine
        with injected("store.load.manifest:error:times=none"):
            for _ in range(2):
                response = app.handle("POST", "/v1/reload")
                assert response.status == 503
        assert app.breakers["reload"].state == OPEN
        assert app.engine is old_engine
        assert _health(app) == "degraded"
        # Read paths are unaffected by a broken reload backend.
        search = app.handle(
            "POST", "/v1/search", body=_search_body(app.graph)
        )
        assert search.status == 200
