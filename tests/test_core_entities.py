"""Tests for the entity store (record clusters + link structure)."""

import pytest

from repro.core.entities import EntityStore
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


@pytest.fixture()
def small_store():
    """Five mother records on five birth certificates (all linkable)."""
    records, certs = [], []
    for i in range(1, 6):
        records.append(
            Record(i, i, Role.BM,
                   {"first_name": "mary", "surname": "ross",
                    "event_year": str(1870 + i)}, person_id=1)
        )
        certs.append(
            Certificate(i, CertificateType.BIRTH, 1870 + i, "uig", {Role.BM: i})
        )
    dataset = Dataset("s", records, certs)
    return dataset, EntityStore(dataset)


class TestEntityStoreBasics:
    def test_initial_singletons(self, small_store):
        dataset, store = small_store
        assert len(store) == len(dataset)
        for record in dataset:
            assert len(store.entity_of(record.record_id)) == 1

    def test_merge_combines(self, small_store):
        _, store = small_store
        entity = store.merge(1, 2)
        assert entity.record_ids == {1, 2}
        assert store.same_entity(1, 2)
        assert len(store) == 4

    def test_merge_intersects_birth_ranges(self, small_store):
        _, store = small_store
        entity = store.merge(1, 2)
        lo1, hi1 = (1871 - 55, 1871 - 15)
        lo2, hi2 = (1872 - 55, 1872 - 15)
        assert entity.birth_lo == max(lo1, lo2)
        assert entity.birth_hi == min(hi1, hi2)

    def test_merge_tracks_roles_and_certs(self, small_store):
        _, store = small_store
        entity = store.merge(1, 2)
        assert entity.role_counts[Role.BM] == 2
        assert entity.cert_ids == {1, 2}

    def test_merge_within_entity_adds_link(self, small_store):
        _, store = small_store
        store.merge(1, 2)
        store.merge(2, 3)
        entity = store.merge(1, 3)  # closes the triangle
        assert (1, 3) in entity.links
        assert len(entity.links) == 3

    def test_values_of(self, small_store):
        dataset, store = small_store
        dataset.record(2).attributes["surname"] = "taylor"
        entity = store.merge(1, 2)
        # Sorted list: canonical order is part of the contract (PROP-A
        # tie-breaks and checkpoint-resume determinism rely on it).
        assert store.values_of(entity, "surname") == ["ross", "taylor"]


class TestDensityAndDegree:
    def test_pair_density_is_one(self, small_store):
        _, store = small_store
        assert store.merge(1, 2).density() == 1.0

    def test_chain_density(self, small_store):
        _, store = small_store
        store.merge(1, 2)
        entity = store.merge(2, 3)
        assert entity.density() == pytest.approx(2 / 3)

    def test_degree(self, small_store):
        _, store = small_store
        store.merge(1, 2)
        entity = store.merge(2, 3)
        assert entity.degree(2) == 2
        assert entity.degree(1) == 1


class TestRemoval:
    def test_remove_record_makes_singleton(self, small_store):
        _, store = small_store
        store.merge(1, 2)
        store.merge(2, 3)
        created = store.remove_record(2)
        assert any(e.record_ids == {2} for e in created)
        # 1 and 3 were only connected through 2 → both singletons now.
        assert not store.same_entity(1, 3)

    def test_remove_record_keeps_connected_rest(self, small_store):
        _, store = small_store
        store.merge(1, 2)
        store.merge(2, 3)
        store.merge(1, 3)
        store.remove_record(3)
        assert store.same_entity(1, 2)

    def test_remove_links_splits_components(self, small_store):
        _, store = small_store
        store.merge(1, 2)
        store.merge(3, 4)
        entity = store.merge(2, 3)
        created = store.remove_links(entity, [(2, 3)])
        assert len(created) == 2
        assert store.same_entity(1, 2)
        assert store.same_entity(3, 4)
        assert not store.same_entity(2, 3)

    def test_remove_singleton_is_noop(self, small_store):
        _, store = small_store
        before = len(store)
        store.remove_record(5)
        assert len(store) == before


class TestMatchedPairs:
    def test_matched_pairs_roles(self, small_store):
        _, store = small_store
        store.merge(1, 2)
        pairs = store.matched_pairs(frozenset({Role.BM}), frozenset({Role.BM}))
        assert pairs == {(1, 2)}

    def test_all_matched_pairs_transitive(self, small_store):
        _, store = small_store
        store.merge(1, 2)
        store.merge(2, 3)
        assert store.all_matched_pairs() == {(1, 2), (1, 3), (2, 3)}

    def test_cluster_sizes(self, small_store):
        _, store = small_store
        store.merge(1, 2)
        store.merge(2, 3)
        assert store.cluster_sizes() == [3]
