"""Tests for the bootstrapping and iterative merging steps."""

import pytest

from repro.blocking.candidates import CandidatePair
from repro.core.bootstrap import bootstrap_merge
from repro.core.config import SnapsConfig
from repro.core.constraints import ConstraintChecker
from repro.core.dependency_graph import build_dependency_graph
from repro.core.entities import EntityStore
from repro.core.merging import iterative_merge
from repro.core.scoring import PairScorer
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


def _family_pair_dataset(baby2_name="flora", mother2_name="mary",
                         father2_name="angus", surname2="ross"):
    """Birth cert (john/mary/angus ross) + death cert of a child."""
    records = [
        Record(1, 1, Role.BB, {"first_name": "john", "surname": "ross",
                               "gender": "m", "event_year": "1870"}, 11),
        Record(2, 1, Role.BM, {"first_name": "mary", "surname": "ross",
                               "event_year": "1870"}, 12),
        Record(3, 1, Role.BF, {"first_name": "angus", "surname": "ross",
                               "event_year": "1870"}, 13),
        Record(4, 2, Role.DD, {"first_name": baby2_name, "surname": surname2,
                               "gender": "m", "event_year": "1872",
                               "age": "2"}, 14),
        Record(5, 2, Role.DM, {"first_name": mother2_name, "surname": surname2,
                               "event_year": "1872"}, 12),
        Record(6, 2, Role.DF, {"first_name": father2_name, "surname": surname2,
                               "event_year": "1872"}, 13),
    ]
    certs = [
        Certificate(1, CertificateType.BIRTH, 1870, "uig",
                    {Role.BB: 1, Role.BM: 2, Role.BF: 3}),
        Certificate(2, CertificateType.DEATH, 1872, "uig",
                    {Role.DD: 4, Role.DM: 5, Role.DF: 6}),
    ]
    return Dataset("bm", records, certs)


def _pipeline(dataset, pairs, config):
    graph = build_dependency_graph(dataset, pairs, config)
    store = EntityStore(dataset)
    scorer = PairScorer(dataset, config)
    checker = ConstraintChecker(config.temporal_slack_years,
                                propagate=config.use_propagation)
    return graph, store, scorer, checker


class TestBootstrap:
    def test_identical_group_bootstraps(self):
        dataset = _family_pair_dataset(baby2_name="john")
        pairs = [CandidatePair(1, 4), CandidatePair(2, 5), CandidatePair(3, 6)]
        config = SnapsConfig()
        graph, store, scorer, checker = _pipeline(dataset, pairs, config)
        merged = bootstrap_merge(graph, store, scorer, checker, config)
        assert merged == 3
        assert store.same_entity(2, 5) and store.same_entity(3, 6)

    def test_singleton_groups_skipped(self):
        dataset = _family_pair_dataset(baby2_name="john")
        pairs = [CandidatePair(2, 5)]
        config = SnapsConfig()
        graph, store, scorer, checker = _pipeline(dataset, pairs, config)
        assert bootstrap_merge(graph, store, scorer, checker, config) == 0

    def test_partial_match_group_blocks_bootstrap(self):
        # Sibling death: baby names differ → group average below t_b.
        dataset = _family_pair_dataset(baby2_name="donald")
        pairs = [CandidatePair(1, 4), CandidatePair(2, 5), CandidatePair(3, 6)]
        config = SnapsConfig()
        graph, store, scorer, checker = _pipeline(dataset, pairs, config)
        assert bootstrap_merge(graph, store, scorer, checker, config) == 0


class TestIterativeMerge:
    def test_rel_drops_sibling_node_and_merges_parents(self):
        dataset = _family_pair_dataset(baby2_name="donald")
        pairs = [CandidatePair(1, 4), CandidatePair(2, 5), CandidatePair(3, 6)]
        config = SnapsConfig()
        graph, store, scorer, checker = _pipeline(dataset, pairs, config)
        merged = iterative_merge(graph, store, scorer, checker, config)
        assert merged == 2
        assert store.same_entity(2, 5) and store.same_entity(3, 6)
        assert not store.same_entity(1, 4)

    def test_without_rel_group_blocked(self):
        dataset = _family_pair_dataset(baby2_name="donald")
        pairs = [CandidatePair(1, 4), CandidatePair(2, 5), CandidatePair(3, 6)]
        config = SnapsConfig(use_relational=False)
        graph, store, scorer, checker = _pipeline(dataset, pairs, config)
        merged = iterative_merge(graph, store, scorer, checker, config)
        assert merged == 0

    def test_majority_disagreement_blocks_group(self):
        # One agreeing father node + one disagreeing mother node: the
        # father-and-son namesake pattern must NOT merge.
        dataset = _family_pair_dataset(baby2_name="john", mother2_name="flora")
        pairs = [CandidatePair(2, 5), CandidatePair(3, 6)]
        config = SnapsConfig()
        graph, store, scorer, checker = _pipeline(dataset, pairs, config)
        merged = iterative_merge(graph, store, scorer, checker, config)
        assert merged == 0
        assert not store.same_entity(3, 6)

    def test_lone_common_name_pair_blocked_by_ambiguity(self):
        """A singleton node of very common names cannot merge (Eq. 3)."""
        records = []
        certs = []
        # Many records named john ross so the combo is frequent.
        for i in range(1, 21):
            year = 1870 + (i % 5)
            records.append(
                Record(i, i, Role.BF, {"first_name": "john", "surname": "ross",
                                       "event_year": str(year)}, 100 + i)
            )
            certs.append(
                Certificate(i, CertificateType.BIRTH, year, "uig", {Role.BF: i})
            )
        dataset = Dataset("amb", records, certs)
        pairs = [CandidatePair(1, 2)]
        config = SnapsConfig()
        graph, store, scorer, checker = _pipeline(dataset, pairs, config)
        merged = iterative_merge(graph, store, scorer, checker, config)
        assert merged == 0

    def test_lone_rare_name_pair_merges(self):
        records = [
            Record(1, 1, Role.BF, {"first_name": "torquil", "surname": "macquarrie",
                                   "event_year": "1870"}, 1),
            Record(2, 2, Role.BF, {"first_name": "torquil", "surname": "macquarrie",
                                   "event_year": "1873"}, 1),
        ]
        certs = [
            Certificate(1, CertificateType.BIRTH, 1870, "uig", {Role.BF: 1}),
            Certificate(2, CertificateType.BIRTH, 1873, "uig", {Role.BF: 2}),
        ]
        # Filler population: disambiguation similarity is relative to the
        # dataset size, so "rare" needs a universe to be rare in.
        for i in range(3, 103):
            year = 1870 + (i % 5)
            records.append(
                Record(i, i, Role.BM,
                       {"first_name": f"name{i}", "surname": f"sur{i}",
                        "event_year": str(year)}, i)
            )
            certs.append(
                Certificate(i, CertificateType.BIRTH, year, "uig", {Role.BM: i})
            )
        dataset = Dataset("rare", records, certs)
        config = SnapsConfig()
        graph, store, scorer, checker = _pipeline(
            dataset, [CandidatePair(1, 2)], config
        )
        merged = iterative_merge(graph, store, scorer, checker, config)
        assert merged == 1
        assert store.same_entity(1, 2)

    def test_constraint_violating_node_removed(self):
        # Same-gender but singleton-role conflict: two Dd records cannot
        # both join one entity; candidate filtering would normally drop
        # it, so check merging also guards.
        dataset = _family_pair_dataset(baby2_name="john")
        config = SnapsConfig()
        pairs = [CandidatePair(1, 4), CandidatePair(2, 5), CandidatePair(3, 6)]
        graph, store, scorer, checker = _pipeline(dataset, pairs, config)
        iterative_merge(graph, store, scorer, checker, config)
        # All three merged (true family): baby-deceased, both parents.
        assert store.same_entity(1, 4)
