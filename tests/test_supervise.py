"""Supervised worker execution: crash/hang recovery, quarantine, ENOSPC.

The executor contract under test: a worker crash or hang at ANY task,
with ANY pool width, yields output byte-identical to the serial path,
within a bounded number of pool restarts; a task that keeps failing is
quarantined with an actionable JSONL artifact instead of looping; and
resource exhaustion (ENOSPC) during a snapshot commit fails atomically
with a remediation hint and no partial snapshot directory.
"""

from __future__ import annotations

import errno
import json
import multiprocessing as mp
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.cli import main
from repro.core import SnapsConfig, SnapsResolver
from repro.core.checkpoint import GracefulExit, ResolveCheckpointer
from repro.data.loader import save_dataset_csv
from repro.data.synthetic import make_tiny_dataset
from repro.faults import (
    RESOURCE,
    TRANSIENT,
    ResourceFault,
    check_free_space,
    classify,
    injected,
    is_exhaustion,
)
from repro.obs.metrics import MetricsRegistry
from repro.parallel import ParallelConfig
from repro.shard import resolve_sharded
from repro.supervise import (
    SupervisedExecutor,
    SuperviseConfig,
    TaskQuarantinedError,
)

N_TOY_TASKS = 5


def square(task):
    return {"chunk": task["chunk"], "value": task["x"] * task["x"]}


def _factory(workers):
    def make():
        return ProcessPoolExecutor(
            max_workers=workers, mp_context=mp.get_context("fork")
        )

    return make


@pytest.fixture
def toy_tasks():
    return [{"chunk": i, "x": i} for i in range(N_TOY_TASKS)]


@pytest.fixture
def toy_expected():
    return [{"chunk": i, "value": i * i} for i in range(N_TOY_TASKS)]


def _run_toy(tasks, config, workers=2, metrics=None):
    with SupervisedExecutor(
        _factory(workers), config, metrics=metrics, label="toy"
    ) as executor:
        return executor.map(square, tasks, "toy")


# ----------------------------------------------------------------------
# Executor unit behaviour
# ----------------------------------------------------------------------


class TestSupervisedExecutor:
    def test_plain_map_in_submission_order(self, toy_tasks, toy_expected):
        metrics = MetricsRegistry()
        out = _run_toy(toy_tasks, SuperviseConfig(), metrics=metrics)
        assert out == toy_expected
        assert metrics.counter_value("supervise.tasks") == N_TOY_TASKS
        assert metrics.counter_value("supervise.restarts") == 0

    def test_empty_map(self):
        assert _run_toy([], SuperviseConfig()) == []

    def test_transient_error_retries_in_live_pool(
        self, toy_tasks, toy_expected
    ):
        metrics = MetricsRegistry()
        with injected("supervise.task.toy.t3.a0:error"):
            out = _run_toy(toy_tasks, SuperviseConfig(), metrics=metrics)
        assert out == toy_expected
        # An in-worker exception must NOT cost a pool rebuild.
        assert metrics.counter_value("supervise.restarts") == 0
        assert metrics.counter_value("supervise.retries") == 1

    def test_permanent_error_quarantines_immediately(self, toy_tasks, tmp_path):
        config = SuperviseConfig(
            max_task_retries=3, quarantine_dir=str(tmp_path)
        )
        with injected("supervise.task.toy.t2.a*:error:category=permanent"):
            with pytest.raises(TaskQuarantinedError) as excinfo:
                _run_toy(toy_tasks, config)
        # Permanent failures skip the retry budget: one attempt, done.
        assert excinfo.value.attempts == 1
        assert "task 2" in str(excinfo.value)

    def test_poison_task_artifact_contents(self, toy_tasks, tmp_path):
        metrics = MetricsRegistry()
        config = SuperviseConfig(
            max_task_retries=1, quarantine_dir=str(tmp_path)
        )
        # One worker: tasks run strictly in order, so the crash can only
        # ever implicate t1 (with 2+ workers a concurrently-running
        # neighbour is conservatively co-charged, which is by design).
        with injected("supervise.task.toy.t1.a*:worker_crash:times=none"):
            with pytest.raises(TaskQuarantinedError) as excinfo:
                _run_toy(toy_tasks, config, workers=1, metrics=metrics)
        error = excinfo.value
        assert error.attempts == config.attempt_budget == 2
        assert metrics.counter_value("supervise.quarantined_tasks") == 1
        records = [
            json.loads(line)
            for line in (tmp_path / "tasks.jsonl").read_text().splitlines()
        ]
        assert len(records) == 1
        record = records[0]
        assert record["label"] == "toy"
        assert record["task"] == "task 1"
        assert record["index"] == 1
        assert record["attempts"] == 2
        assert len(record["errors"]) == 2
        assert record["inputs_sha256"]
        # The abort error tells the operator where the evidence lives.
        assert str(tmp_path / "tasks.jsonl") in str(error)
        assert "--task-retries" in str(error)

    def test_skip_policy_degrades_to_none_slot(self, toy_tasks, tmp_path):
        config = SuperviseConfig(
            max_task_retries=0,
            quarantine_dir=str(tmp_path),
            on_quarantine="skip",
        )
        with injected("supervise.task.toy.t1.a*:worker_crash:times=none"):
            out = _run_toy(toy_tasks, config, workers=1)
        assert out[1] is None
        assert [r for i, r in enumerate(out) if i != 1] == [
            {"chunk": i, "value": i * i} for i in range(N_TOY_TASKS) if i != 1
        ]

    def test_restart_preserves_completed_results(self, toy_tasks, toy_expected):
        """Two sequential crashes: completed work is never re-run."""
        metrics = MetricsRegistry()
        spec = (
            "supervise.task.toy.t0.a0:worker_crash;"
            "supervise.task.toy.t4.a0:worker_crash"
        )
        with injected(spec):
            out = _run_toy(toy_tasks, SuperviseConfig(), metrics=metrics)
        assert out == toy_expected
        assert 1 <= metrics.counter_value("supervise.restarts") <= 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SuperviseConfig(on_quarantine="ignore")
        with pytest.raises(ValueError):
            SuperviseConfig(max_task_retries=-1)

    def test_config_from_env(self, monkeypatch):
        monkeypatch.setenv("SNAPS_TASK_TIMEOUT", "3.5")
        monkeypatch.setenv("SNAPS_TASK_RETRIES", "7")
        monkeypatch.setenv("SNAPS_QUARANTINE_DIR", "/tmp/qd")
        config = SuperviseConfig.from_env()
        assert config.task_timeout_s == 3.5
        assert config.max_task_retries == 7
        assert config.attempt_budget == 8
        assert config.quarantine_dir == "/tmp/qd"


# ----------------------------------------------------------------------
# Chaos sweep: kill/hang at every task index, workers in {2, 4}
# ----------------------------------------------------------------------


class TestChaosSweep:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("index", range(N_TOY_TASKS))
    def test_crash_at_every_index(
        self, index, workers, toy_tasks, toy_expected
    ):
        metrics = MetricsRegistry()
        with injected(f"supervise.task.toy.t{index}.a0:worker_crash"):
            out = _run_toy(
                toy_tasks, SuperviseConfig(), workers=workers, metrics=metrics
            )
        assert out == toy_expected
        restarts = metrics.counter_value("supervise.restarts")
        assert 1 <= restarts <= SuperviseConfig().attempt_budget

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("index", range(N_TOY_TASKS))
    def test_hang_at_every_index(
        self, index, workers, toy_tasks, toy_expected
    ):
        metrics = MetricsRegistry()
        config = SuperviseConfig(task_timeout_s=0.5)
        with injected(f"supervise.task.toy.t{index}.a0:hang:latency_s=30"):
            started = time.monotonic()
            out = _run_toy(toy_tasks, config, workers=workers, metrics=metrics)
            elapsed = time.monotonic() - started
        assert out == toy_expected
        assert metrics.counter_value("supervise.hung_tasks") >= 1
        assert metrics.counter_value("supervise.restarts") >= 1
        # The deadline, not the 30s oversleep, bounds the wall clock.
        assert elapsed < 15


# ----------------------------------------------------------------------
# Resolution paths: crash anywhere, output byte-identical to serial
# ----------------------------------------------------------------------


def clusters_of(result):
    """Canonical cluster representation for equality checks."""
    return sorted(
        tuple(sorted(e.record_ids)) for e in result.entities.entities()
    )


@pytest.fixture(scope="module")
def chaos_dataset():
    return make_tiny_dataset(seed=3)


@pytest.fixture(scope="module")
def serial_clusters(chaos_dataset):
    result = SnapsResolver(SnapsConfig()).resolve(
        chaos_dataset, parallel=ParallelConfig(workers=0)
    )
    return clusters_of(result)


class TestResolutionCrashParity:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_shard_crash_at_every_shard(
        self, n_shards, chaos_dataset, serial_clusters
    ):
        for shard in range(n_shards):
            metrics = MetricsRegistry()
            with injected(
                f"supervise.task.shard.t{shard}.a0:worker_crash"
            ):
                sharded = resolve_sharded(
                    chaos_dataset,
                    SnapsConfig(),
                    n_shards=n_shards,
                    workers=n_shards,
                    metrics=metrics,
                    oversubscribe=True,
                )
            assert clusters_of(sharded.result) == serial_clusters
            restarts = metrics.counter_value("supervise.restarts")
            assert 1 <= restarts <= SuperviseConfig().attempt_budget

    def test_chunk_crash_parity(self, chaos_dataset, serial_clusters):
        metrics = MetricsRegistry()
        with injected("supervise.task.score.t0.a0:worker_crash"):
            result = SnapsResolver(SnapsConfig()).resolve(
                chaos_dataset,
                metrics=metrics,
                parallel=ParallelConfig(workers=2, oversubscribe=True),
            )
        assert clusters_of(result) == serial_clusters
        assert metrics.counter_value("supervise.restarts") == 1

    def test_chunk_hang_parity(self, chaos_dataset, serial_clusters):
        metrics = MetricsRegistry()
        supervise = SuperviseConfig(task_timeout_s=0.5)
        with injected("supervise.task.score.t0.a0:hang:latency_s=30"):
            result = SnapsResolver(SnapsConfig()).resolve(
                chaos_dataset,
                metrics=metrics,
                parallel=ParallelConfig(
                    workers=2, oversubscribe=True, supervise=supervise
                ),
            )
        assert clusters_of(result) == serial_clusters
        assert metrics.counter_value("supervise.hung_tasks") >= 1

    def test_shard_poison_names_the_shard(self, chaos_dataset, tmp_path):
        # A permanent in-worker failure charges exactly the raising
        # shard (a crash would co-charge concurrently-running ones).
        supervise = SuperviseConfig(
            max_task_retries=0, quarantine_dir=str(tmp_path)
        )
        with injected("supervise.task.shard.t1.a*:error:category=permanent"):
            with pytest.raises(TaskQuarantinedError) as excinfo:
                resolve_sharded(
                    chaos_dataset,
                    SnapsConfig(),
                    n_shards=2,
                    workers=2,
                    oversubscribe=True,
                    parallel=ParallelConfig(supervise=supervise),
                )
        assert "shard 1" in str(excinfo.value)
        assert (tmp_path / "tasks.jsonl").exists()


# ----------------------------------------------------------------------
# Fault taxonomy + resource exhaustion
# ----------------------------------------------------------------------


class TestResourceTaxonomy:
    def test_pool_death_is_transient(self):
        assert classify(BrokenProcessPool("pool died")) == TRANSIENT
        assert classify(EOFError()) == TRANSIENT

    def test_exhaustion_errnos_are_resource(self):
        assert classify(OSError(errno.ENOSPC, "disk full")) == RESOURCE
        assert classify(OSError(errno.EMFILE, "fd limit")) == RESOURCE
        assert is_exhaustion(OSError(errno.ENOSPC, "disk full"))

    def test_plain_oserror_stays_transient(self):
        assert classify(OSError("disk momentarily gone")) == TRANSIENT
        assert not is_exhaustion(OSError("disk momentarily gone"))

    def test_check_free_space_passes_with_headroom(self, tmp_path):
        check_free_space(tmp_path, 1, "test target")

    def test_check_free_space_raises_actionably(self, tmp_path):
        with pytest.raises(ResourceFault) as excinfo:
            check_free_space(tmp_path, 1 << 60, "test target")
        message = str(excinfo.value)
        assert "test target" in message
        assert "free disk space" in message


class TestSnapshotEnospc:
    @pytest.mark.parametrize("site", ["store.save.payloads", "store.save.commit"])
    def test_enospc_mid_commit_leaves_no_partial_snapshot(
        self, site, chaos_dataset, tmp_path
    ):
        from repro.store import SnapshotStore

        result = SnapsResolver(SnapsConfig()).resolve(chaos_dataset)
        store = SnapshotStore(tmp_path / "store")
        with injected(f"{site}:enospc"):
            with pytest.raises(ResourceFault) as excinfo:
                store.save(result)
        message = str(excinfo.value)
        assert "free disk space" in message
        assert "no partial snapshot" in message
        snapshots = tmp_path / "store" / "snapshots"
        assert not snapshots.exists() or not any(snapshots.iterdir())
        # A retry on a healthy disk succeeds and verifies clean.
        manifest = store.save(result)
        assert store.verify(manifest.snapshot_id) == []


# ----------------------------------------------------------------------
# Graceful stop: SIGTERM/SIGINT on a checkpointed resolve
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def stem(tmp_path_factory):
    root = tmp_path_factory.mktemp("supervise-data")
    stem = root / "tiny"
    save_dataset_csv(make_tiny_dataset(seed=3), stem)
    return stem


@pytest.fixture(scope="module")
def clean_graph(stem, tmp_path_factory):
    out = tmp_path_factory.mktemp("supervise-clean") / "graph.json"
    assert main(["resolve", "--data", str(stem), "--out", str(out)]) == 0
    return out.read_bytes()


class TestGracefulStop:
    def test_request_stop_raises_only_at_commit(self, chaos_dataset, tmp_path):
        checkpoint = ResolveCheckpointer.begin(
            tmp_path / "ck", chaos_dataset, SnapsConfig()
        )
        checkpoint.check_stop("blocking")  # no request yet: no-op
        checkpoint.request_stop(signal.SIGTERM)
        assert checkpoint.stop_requested
        with pytest.raises(GracefulExit) as excinfo:
            checkpoint.check_stop("blocking")
        assert excinfo.value.signum == signal.SIGTERM
        assert excinfo.value.phase == "blocking"

    def test_stop_requested_resolve_commits_first_phase(
        self, chaos_dataset, tmp_path
    ):
        checkpoint = ResolveCheckpointer.begin(
            tmp_path / "ck", chaos_dataset, SnapsConfig()
        )
        checkpoint.request_stop(signal.SIGINT)
        with pytest.raises(GracefulExit) as excinfo:
            SnapsResolver(SnapsConfig()).resolve(
                chaos_dataset, checkpoint=checkpoint
            )
        # The stop landed AFTER a phase committed durably.
        phase = excinfo.value.phase
        resumed, _dataset, _config = ResolveCheckpointer.resume(tmp_path / "ck")
        assert phase in resumed.completed_prefix()

    def test_sigterm_mid_run_resumes_byte_identical(
        self, stem, clean_graph, tmp_path
    ):
        """Kill a checkpointed resolve CLI with SIGTERM; it must exit 143
        having committed the in-flight phase, and --resume must finish
        byte-identical to an uninterrupted run."""
        ckdir = tmp_path / "ck"
        out = tmp_path / "graph.json"
        env = dict(
            os.environ,
            PYTHONPATH="src",
            # Stretch the first commit so the signal reliably lands
            # while a phase is in flight.
            SNAPS_FAULTS="checkpoint.saved.blocking:latency:latency_s=5",
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "resolve",
                "--data", str(stem),
                "--checkpoint", str(ckdir),
                "--out", str(out),
            ],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # Wait for the checkpoint directory to exist (the run is live),
        # then signal while the blocking phase is still committing.
        deadline = time.monotonic() + 30
        while not ckdir.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert ckdir.exists(), "resolve never started its checkpoint"
        time.sleep(0.5)
        process.send_signal(signal.SIGTERM)
        _stdout, stderr = process.communicate(timeout=60)
        assert process.returncode == 128 + signal.SIGTERM, stderr
        assert "committing" in stderr
        assert "--resume" in stderr
        assert not out.exists()
        # The interrupted run left a committed prefix, not a torn state.
        resumed, _dataset, _config = ResolveCheckpointer.resume(ckdir)
        assert resumed.completed_prefix()
        assert main(["resolve", "--resume", str(ckdir), "--out", str(out)]) == 0
        assert out.read_bytes() == clean_graph


# ----------------------------------------------------------------------
# CLI plumbing for the supervision flags
# ----------------------------------------------------------------------


class TestCliSupervision:
    def test_crash_injection_via_cli_is_byte_identical(
        self, stem, clean_graph, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("SNAPS_OVERSUBSCRIBE", "1")
        out = tmp_path / "graph.json"
        with injected("supervise.task.score.t0.a0:worker_crash"):
            code = main([
                "resolve", "--data", str(stem), "--out", str(out),
                "--workers", "2",
            ])
        assert code == 0
        assert out.read_bytes() == clean_graph

    def test_quarantine_flags_reach_the_executor(
        self, stem, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("SNAPS_OVERSUBSCRIBE", "1")
        qdir = tmp_path / "quarantine"
        with injected("supervise.task.score.t0.a*:error:times=none"):
            code = main([
                "resolve", "--data", str(stem),
                "--out", str(tmp_path / "graph.json"),
                "--workers", "2",
                "--task-retries", "0",
                "--quarantine-dir", str(qdir),
            ])
        assert code == 2
        captured = capsys.readouterr()
        assert "quarantined" in captured.err
        assert (qdir / "tasks.jsonl").exists()

    def test_enospc_snapshot_exits_actionably(
        self, stem, tmp_path, capsys
    ):
        store_dir = tmp_path / "store"
        with injected("store.save.payloads:enospc"):
            code = main([
                "resolve", "--data", str(stem),
                "--snapshot-out", str(store_dir),
            ])
        assert code == 2
        captured = capsys.readouterr()
        assert "resource error" in captured.err
        assert "free disk space" in captured.err
        snapshots = store_dir / "snapshots"
        assert not snapshots.exists() or not any(snapshots.iterdir())
