"""Tests for Equations (1)-(3): atomic, disambiguation, combined similarity."""

import math

import pytest

from repro.core.config import SnapsConfig
from repro.core.dependency_graph import AtomicNode, RelationalNode
from repro.core.entities import EntityStore
from repro.core.scoring import NameFrequencyIndex, PairScorer
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


def _make_dataset():
    records = [
        Record(1, 1, Role.BM, {"first_name": "mary", "surname": "tayler",
                               "parish": "kilmore", "event_year": "1870"}, 1),
        Record(2, 2, Role.DM, {"first_name": "mary", "surname": "taylor",
                               "parish": "kilmore", "event_year": "1880"}, 1),
        Record(3, 3, Role.BM, {"first_name": "mary", "surname": "smith",
                               "event_year": "1874"}, 1),
        Record(4, 4, Role.BM, {"first_name": "flora", "surname": "rare",
                               "event_year": "1874"}, 2),
        Record(5, 5, Role.DM, {"first_name": "flora", "surname": "rare",
                               "event_year": "1880"}, 2),
        Record(6, 6, Role.BM, {"first_name": "mary", "surname": "taylor",
                               "event_year": "1876"}, 3),
        Record(7, 7, Role.BM, {"first_name": "mary", "surname": "taylor",
                               "event_year": "1878"}, 4),
    ]
    certs = [
        Certificate(i, CertificateType.BIRTH if i not in (2, 5) else CertificateType.DEATH,
                    1870 + i, "kilmore", {records[i - 1].role: i})
        for i in range(1, 8)
    ]
    return Dataset("score", records, certs)


@pytest.fixture()
def scorer_ctx():
    dataset = _make_dataset()
    config = SnapsConfig()
    return dataset, config, PairScorer(dataset, config)


class TestNameFrequencyIndex:
    def test_combo_frequency(self, scorer_ctx):
        dataset, _, _ = scorer_ctx
        index = NameFrequencyIndex(dataset)
        assert index.frequency(dataset.record(2)) == 3  # mary taylor ×3
        assert index.frequency(dataset.record(4)) == 2  # flora rare ×2

    def test_missing_name_falls_back(self):
        records = [
            Record(1, 1, Role.BM, {"first_name": "mary", "event_year": "1870"}, 1),
            Record(2, 2, Role.BM, {"first_name": "mary", "surname": "ross",
                                   "event_year": "1870"}, 2),
        ]
        certs = [
            Certificate(1, CertificateType.BIRTH, 1870, "uig", {Role.BM: 1}),
            Certificate(2, CertificateType.BIRTH, 1870, "uig", {Role.BM: 2}),
        ]
        dataset = Dataset("f", records, certs)
        index = NameFrequencyIndex(dataset)
        assert index.frequency(dataset.record(1)) == 2  # first-name freq

    def test_total_records(self, scorer_ctx):
        dataset, _, _ = scorer_ctx
        assert NameFrequencyIndex(dataset).total_records == len(dataset)


class TestAtomicSimilarity:
    def test_paper_worked_example(self):
        """Section 4.2.3's example: sims 1.0 / 0.9 / 0.9 with weights
        0.5/0.3/0.2 give s_a = 0.95."""
        dataset = _make_dataset()
        config = SnapsConfig()
        scorer = PairScorer(dataset, config)
        node = RelationalNode(1, 2, (1, 2))
        node.atomic["first_name"] = AtomicNode("first_name", "mary", "mary", 1.0)
        node.atomic["surname"] = AtomicNode("surname", "tayler", "taylor", 0.9)
        node.atomic["parish"] = AtomicNode("parish", "klmor", "kilmore", 0.9)
        assert scorer.atomic_similarity(node) == pytest.approx(0.95)

    def test_missing_category_renormalises(self, scorer_ctx):
        dataset, _, scorer = scorer_ctx
        # Records 4,5 have no parish → Extra category excluded entirely.
        node = RelationalNode(4, 5, (4, 5))
        node.atomic["first_name"] = AtomicNode("first_name", "flora", "flora", 1.0)
        node.atomic["surname"] = AtomicNode("surname", "rare", "rare", 1.0)
        assert scorer.atomic_similarity(node) == pytest.approx(1.0)

    def test_present_but_dissimilar_counts_zero(self, scorer_ctx):
        dataset, _, scorer = scorer_ctx
        # Records 1,2 both have parishes; without a parish atomic node the
        # Extra category contributes 0.
        node = RelationalNode(1, 2, (1, 2))
        node.atomic["first_name"] = AtomicNode("first_name", "mary", "mary", 1.0)
        node.atomic["surname"] = AtomicNode("surname", "tayler", "taylor", 0.95)
        expected = (0.5 * 1.0 + 0.3 * 0.95 + 0.2 * 0.0) / 1.0
        assert scorer.atomic_similarity(node) == pytest.approx(expected)

    def test_no_atomic_nodes_scores_zero(self, scorer_ctx):
        _, _, scorer = scorer_ctx
        node = RelationalNode(1, 2, (1, 2))
        assert scorer.atomic_similarity(node) == 0.0

    def test_has_must_evidence(self, scorer_ctx):
        _, _, scorer = scorer_ctx
        node = RelationalNode(1, 2, (1, 2))
        assert not scorer.has_must_evidence(node)
        node.atomic["surname"] = AtomicNode("surname", "a", "a", 1.0)
        assert not scorer.has_must_evidence(node)
        node.atomic["first_name"] = AtomicNode("first_name", "m", "m", 1.0)
        assert scorer.has_must_evidence(node)


class TestDisambiguationSimilarity:
    def test_equation_two(self, scorer_ctx):
        dataset, _, scorer = scorer_ctx
        node = RelationalNode(4, 5, (4, 5))  # flora rare: f=2 each
        n = len(dataset)
        expected = math.log2(n / 4) / math.log2(n)
        assert scorer.disambiguation_similarity(node) == pytest.approx(expected)

    def test_rare_names_score_higher_than_common(self, scorer_ctx):
        dataset, _, scorer = scorer_ctx
        rare = RelationalNode(4, 5, (4, 5))
        common = RelationalNode(2, 6, (2, 6))  # mary taylor ×2 both sides
        assert scorer.disambiguation_similarity(
            rare
        ) > scorer.disambiguation_similarity(common)

    def test_bounded(self, scorer_ctx):
        _, _, scorer = scorer_ctx
        for pair in ((1, 2), (2, 6), (4, 5)):
            node = RelationalNode(pair[0], pair[1], pair)
            assert 0.0 <= scorer.disambiguation_similarity(node) <= 1.0


class TestCombinedSimilarity:
    def test_gamma_mixing(self, scorer_ctx):
        dataset, config, scorer = scorer_ctx
        node = RelationalNode(4, 5, (4, 5))
        node.atomic["first_name"] = AtomicNode("first_name", "flora", "flora", 1.0)
        node.atomic["surname"] = AtomicNode("surname", "rare", "rare", 1.0)
        s_a = scorer.atomic_similarity(node)
        s_d = scorer.disambiguation_similarity(node)
        expected = config.gamma * s_a + (1 - config.gamma) * s_d
        assert scorer.combined_similarity(node) == pytest.approx(expected)

    def test_amb_disabled_is_pure_atomic(self):
        dataset = _make_dataset()
        config = SnapsConfig(use_ambiguity=False)
        scorer = PairScorer(dataset, config)
        node = RelationalNode(4, 5, (4, 5))
        node.atomic["first_name"] = AtomicNode("first_name", "flora", "flora", 1.0)
        node.atomic["surname"] = AtomicNode("surname", "rare", "rare", 1.0)
        assert scorer.combined_similarity(node) == scorer.atomic_similarity(node)


class TestPropagation:
    def test_prop_a_repoints_surname(self):
        """The paper's Figure 4 example: a woman's maiden-name record
        re-points the (smith, taylor) atomic node to (tayler, taylor)."""
        dataset = _make_dataset()
        config = SnapsConfig()
        scorer = PairScorer(dataset, config)
        store = EntityStore(dataset)
        from repro.core.dependency_graph import DependencyGraph

        graph = DependencyGraph(dataset)
        # Entity {1, 3}: surnames {tayler, smith}.
        store.merge(1, 3)
        node = RelationalNode(3, 2, (2, 3))
        node.atomic["surname"] = AtomicNode("surname", "smith", "taylor", 0.0)
        scorer.propagate_values(graph, node, store)
        assert node.atomic["surname"].key()[1:] == ("tayler", "taylor")

    def test_prop_a_removes_below_threshold(self):
        dataset = _make_dataset()
        config = SnapsConfig()
        scorer = PairScorer(dataset, config)
        store = EntityStore(dataset)
        from repro.core.dependency_graph import DependencyGraph

        graph = DependencyGraph(dataset)
        node = RelationalNode(3, 4, (3, 4))  # mary smith vs flora rare
        node.atomic["surname"] = AtomicNode("surname", "smith", "rare", 0.95)
        scorer.propagate_values(graph, node, store)
        assert "surname" not in node.atomic

    def test_value_similarity_cached(self, scorer_ctx):
        _, _, scorer = scorer_ctx
        first = scorer.value_similarity("surname", "tayler", "taylor")
        second = scorer.value_similarity("surname", "taylor", "tayler")
        assert first == second
