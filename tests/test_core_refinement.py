"""Tests for REF: bridge finding and density-based cluster refinement."""

import pytest

from repro.core.config import SnapsConfig
from repro.core.entities import EntityStore
from repro.core.refinement import find_bridges, refine_clusters
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


def _chain_dataset(n):
    """n linkable mother records on n distinct certificates."""
    records = [
        Record(i, i, Role.BM, {"first_name": "mary", "surname": "ross",
                               "event_year": str(1870 + (i % 5))}, 1)
        for i in range(1, n + 1)
    ]
    certs = [
        Certificate(i, CertificateType.BIRTH, 1870 + (i % 5), "uig", {Role.BM: i})
        for i in range(1, n + 1)
    ]
    return Dataset("chain", records, certs)


class TestFindBridges:
    def test_chain_every_edge_is_bridge(self):
        dataset = _chain_dataset(4)
        store = EntityStore(dataset)
        store.merge(1, 2)
        store.merge(2, 3)
        entity = store.merge(3, 4)
        assert sorted(find_bridges(entity)) == [(1, 2), (2, 3), (3, 4)]

    def test_cycle_has_no_bridges(self):
        dataset = _chain_dataset(3)
        store = EntityStore(dataset)
        store.merge(1, 2)
        store.merge(2, 3)
        entity = store.merge(3, 1)
        assert find_bridges(entity) == []

    def test_lollipop(self):
        # Triangle 1-2-3 plus pendant 4 attached at 3.
        dataset = _chain_dataset(4)
        store = EntityStore(dataset)
        store.merge(1, 2)
        store.merge(2, 3)
        store.merge(3, 1)
        entity = store.merge(3, 4)
        assert find_bridges(entity) == [(3, 4)]


class TestRefineClusters:
    def test_dense_cluster_untouched(self):
        dataset = _chain_dataset(3)
        store = EntityStore(dataset)
        store.merge(1, 2)
        store.merge(2, 3)
        store.merge(3, 1)
        stats = refine_clusters(store, SnapsConfig())
        assert stats.records_removed == 0
        assert store.same_entity(1, 3)

    def test_sparse_star_pruned(self):
        # A star of 8 records (hub 1): density 2·7/(8·7) = 0.25 < 0.3.
        dataset = _chain_dataset(8)
        store = EntityStore(dataset)
        for i in range(2, 9):
            store.merge(1, i)
        stats = refine_clusters(store, SnapsConfig())
        assert stats.records_removed >= 1

    def test_oversize_cluster_split_at_bridges(self):
        # Two dense 4-cliques joined by one bridge; force the size limit
        # low so the bridge rule fires.
        dataset = _chain_dataset(8)
        store = EntityStore(dataset)
        import itertools

        for a, b in itertools.combinations((1, 2, 3, 4), 2):
            store.merge(a, b)
        for a, b in itertools.combinations((5, 6, 7, 8), 2):
            store.merge(a, b)
        store.merge(4, 5)
        config = SnapsConfig(bridge_node_limit=6)
        stats = refine_clusters(store, config)
        assert stats.bridges_cut == 1
        assert store.same_entity(1, 4)
        assert store.same_entity(5, 8)
        assert not store.same_entity(4, 5)

    def test_pairs_never_refined(self):
        dataset = _chain_dataset(2)
        store = EntityStore(dataset)
        store.merge(1, 2)
        stats = refine_clusters(store, SnapsConfig())
        assert stats.clusters_examined == 0
        assert store.same_entity(1, 2)

    def test_stats_counts_clusters(self):
        dataset = _chain_dataset(3)
        store = EntityStore(dataset)
        store.merge(1, 2)
        store.merge(2, 3)
        stats = refine_clusters(store, SnapsConfig())
        assert stats.clusters_examined == 1
