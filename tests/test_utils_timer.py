"""Tests for the timing helpers."""

from repro.utils.timer import Stopwatch, Timer


class TestTimer:
    def test_measures_nonnegative_time(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(10000))
        assert t.elapsed >= 0.0
        assert t.elapsed is not first or True  # overwritten each time


class TestStopwatch:
    def test_phase_accumulates(self):
        sw = Stopwatch()
        with sw.phase("a"):
            pass
        with sw.phase("a"):
            pass
        assert sw.times["a"] >= 0.0

    def test_total_sums_phases(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        sw.add("y", 2.0)
        sw.add("x", 0.5)
        assert sw.total() == 3.5
        assert sw.times == {"x": 1.5, "y": 2.0}

    def test_independent_phases(self):
        sw = Stopwatch()
        with sw.phase("load"):
            pass
        with sw.phase("link"):
            pass
        assert set(sw.times) == {"load", "link"}

    def test_counts_per_phase(self):
        sw = Stopwatch()
        with sw.phase("load"):
            pass
        with sw.phase("load"):
            pass
        sw.add("link", 0.5)
        assert sw.counts == {"load": 2, "link": 1}

    def test_merge_aggregates_runs(self):
        a = Stopwatch()
        b = Stopwatch()
        a.add("load", 1.0)
        b.add("load", 2.0)
        b.add("link", 3.0)
        merged = a.merge(b)
        assert merged is a
        assert a.times == {"load": 3.0, "link": 3.0}
        assert a.counts == {"load": 2, "link": 1}
        assert a.total() == 6.0
