"""Round-trip and cross-subsystem tests for census datasets."""

import pytest

from repro.anonymize import anonymise_dataset
from repro.data.loader import load_dataset_csv, save_dataset_csv
from repro.data.roles import CENSUS_ROLES, CertificateType
from repro.data.synthetic import make_ios_census_dataset


@pytest.fixture(scope="module")
def census_dataset():
    return make_ios_census_dataset(scale=0.05, seed=31)


class TestCensusCsvRoundTrip:
    def test_households_survive(self, census_dataset, tmp_path):
        stem = tmp_path / "census"
        save_dataset_csv(census_dataset, stem)
        loaded = load_dataset_csv(stem)
        for cert in census_dataset.certificates.values():
            other = loaded.certificates[cert.cert_id]
            assert other.children == cert.children
            assert other.others == cert.others
            assert other.cert_type == cert.cert_type

    def test_census_records_survive(self, census_dataset, tmp_path):
        stem = tmp_path / "census"
        save_dataset_csv(census_dataset, stem)
        loaded = load_dataset_csv(stem)
        original = {
            r.record_id for r in census_dataset if r.role in CENSUS_ROLES
        }
        roundtripped = {r.record_id for r in loaded if r.role in CENSUS_ROLES}
        assert original == roundtripped

    def test_truth_survives(self, census_dataset, tmp_path):
        stem = tmp_path / "census"
        save_dataset_csv(census_dataset, stem)
        loaded = load_dataset_csv(stem)
        assert loaded.true_match_pairs("Cp-Cp") == census_dataset.true_match_pairs(
            "Cp-Cp"
        )


class TestCensusAnonymisation:
    def test_census_dataset_anonymises(self, census_dataset):
        anonymised, report = anonymise_dataset(census_dataset, k=5, seed=9)
        assert len(anonymised) == len(census_dataset)
        # Household structure intact.
        for cert in census_dataset.certificates.values():
            if cert.cert_type is CertificateType.CENSUS:
                other = anonymised.certificates[cert.cert_id]
                assert other.children == cert.children

    def test_census_years_shift_with_events(self, census_dataset):
        anonymised, _ = anonymise_dataset(census_dataset, k=5, seed=9)
        offsets = set()
        for cert in census_dataset.certificates.values():
            other = anonymised.certificates[cert.cert_id]
            offsets.add(other.year - cert.year)
        assert len(offsets) == 1


class TestDependencyGraphCensusGroups:
    def test_household_pair_groups_carry_relationship_edges(self, census_dataset):
        from repro.blocking import LshBlocker
        from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
        from repro.blocking.candidates import generate_candidate_pairs
        from repro.core import SnapsConfig
        from repro.core.dependency_graph import build_dependency_graph

        config = SnapsConfig()
        blocker = CompositeBlocker([LshBlocker(), PhoneticNameKeyBlocker()])
        pairs = list(generate_candidate_pairs(census_dataset, blocker))
        graph = build_dependency_graph(census_dataset, pairs, config)
        census_groups = [
            group
            for key, group in graph.groups.items()
            if census_dataset.certificates[key[0]].cert_type
            is CertificateType.CENSUS
            and census_dataset.certificates[key[1]].cert_type
            is CertificateType.CENSUS
        ]
        assert census_groups, "census household pairs should form groups"
        assert any(group.edges for group in census_groups), (
            "household co-membership should create relationship edges"
        )


class TestQueryOverCensusEntities:
    def test_census_only_person_findable(self, census_dataset):
        """A person who appears only in censuses (e.g. an immigrant with
        no vital events in the window) must still be searchable."""
        from repro.core import SnapsConfig, SnapsResolver
        from repro.pedigree import build_pedigree_graph
        from repro.query import Query, QueryEngine

        result = SnapsResolver(SnapsConfig()).resolve(census_dataset)
        graph = build_pedigree_graph(census_dataset, result.entities)
        census_only = next(
            (
                e
                for e in graph
                if e.roles
                and all(role in CENSUS_ROLES for role in e.roles)
                and e.first("first_name")
                and e.first("surname")
            ),
            None,
        )
        if census_only is None:
            pytest.skip("no census-only entity in this sample")
        engine = QueryEngine(graph)
        hits = engine.search(
            Query(
                first_name=census_only.first("first_name"),
                surname=census_only.first("surname"),
            ),
            top_m=10,
        )
        assert any(h.entity.entity_id == census_only.entity_id for h in hits)
