"""Interplay of feedback with the pedigree graph: corrected links must be
reflected when the graph is rebuilt."""

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.core.feedback import FeedbackSession
from repro.pedigree import build_pedigree_graph


class TestFeedbackToPedigree:
    def test_rejected_link_splits_pedigree_entity(self, tiny_dataset):
        result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        session = FeedbackSession(tiny_dataset, result.entities)
        entity = next(iter(session.store.entities(min_size=2)), None)
        if entity is None:
            pytest.skip("no multi-record entity")
        link = next(iter(entity.links))
        session.reject(*link)
        graph = build_pedigree_graph(tiny_dataset, session.store)
        entity_a = graph.entity_of_record(link[0])
        entity_b = graph.entity_of_record(link[1])
        assert entity_a.entity_id != entity_b.entity_id

    def test_confirmed_link_joins_pedigree_entity(self, tiny_dataset):
        from repro.core.constraints import ConstraintChecker

        result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        session = FeedbackSession(tiny_dataset, result.entities)
        checker = ConstraintChecker()
        records = list(tiny_dataset)
        pair = None
        for i, a in enumerate(records):
            for b in records[i + 1 : i + 100]:
                if not session.store.same_entity(a.record_id, b.record_id) and (
                    checker.can_merge(session.store, a, b)
                ):
                    pair = (a.record_id, b.record_id)
                    break
            if pair:
                break
        if pair is None:
            pytest.skip("no confirmable pair")
        session.confirm(*pair)
        graph = build_pedigree_graph(tiny_dataset, session.store)
        assert (
            graph.entity_of_record(pair[0]).entity_id
            == graph.entity_of_record(pair[1]).entity_id
        )

    def test_feedback_survives_graph_round_trip(self, tiny_dataset, tmp_path):
        from repro.pedigree import load_pedigree_graph, save_pedigree_graph

        result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        session = FeedbackSession(tiny_dataset, result.entities)
        entity = next(iter(session.store.entities(min_size=2)), None)
        if entity is None:
            pytest.skip("no multi-record entity")
        link = next(iter(entity.links))
        session.reject(*link)
        graph = build_pedigree_graph(tiny_dataset, session.store)
        path = save_pedigree_graph(graph, tmp_path / "g.json")
        loaded = load_pedigree_graph(path)
        assert (
            loaded.entity_of_record(link[0]).entity_id
            != loaded.entity_of_record(link[1]).entity_id
        )
