"""Tests for the census substrate (roles, households, constraints)."""

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.core.constraints import ConstraintChecker
from repro.core.entities import EntityStore
from repro.data.population import PopulationConfig, PopulationSimulator
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import (
    CENSUS_ROLES,
    CertificateType,
    Role,
    birth_year_range,
)
from repro.blocking.candidates import roles_linkable


@pytest.fixture(scope="module")
def census_run():
    config = PopulationConfig(
        start_year=1861, end_year=1891, n_founder_couples=15,
        census_years=(1861, 1871, 1881, 1891), seed=21,
    )
    sim = PopulationSimulator(config)
    return sim, sim.run("census-test")


class TestCensusRoles:
    def test_census_roles_linkable_to_vital_roles(self):
        assert roles_linkable(Role.CC, Role.BB)
        assert roles_linkable(Role.CH, Role.BF)
        assert roles_linkable(Role.CW, Role.BM)
        assert roles_linkable(Role.CH, Role.DD)
        assert roles_linkable(Role.CC, Role.CC)

    def test_census_birth_ranges(self):
        lo, hi = birth_year_range(Role.CH, 1881)
        assert hi == 1881 - 16
        lo, hi = birth_year_range(Role.CC, 1881)
        assert hi == 1881
        lo, hi = birth_year_range(Role.CC, 1881, age_at_event=10)
        assert (lo, hi) == (1870, 1872)

    def test_cw_gender_fixed(self):
        record = Record(1, 1, Role.CW, {"event_year": "1881"}, 1)
        assert record.gender == "f"


class TestCensusEmission:
    def test_households_emitted_each_census_year(self, census_run):
        _, dataset = census_run
        years = {
            c.year for c in dataset.certificates.values()
            if c.cert_type is CertificateType.CENSUS
        }
        assert years == {1861, 1871, 1881, 1891}

    def test_every_living_person_enumerated_once(self, census_run):
        sim, dataset = census_run
        for year in (1861, 1871, 1881, 1891):
            enumerated = [
                r.person_id
                for r in dataset
                if r.role in CENSUS_ROLES and r.event_year == year
            ]
            assert len(enumerated) == len(set(enumerated)), (
                f"{year}: someone enumerated twice"
            )
            present = {
                p.person_id for p in sim.people.values()
                if p.present_from <= year
                and (p.death_year is None or p.death_year > year)
            }
            assert present <= set(enumerated)

    def test_household_relationships(self, census_run):
        _, dataset = census_run
        for cert in dataset.certificates.values():
            if cert.cert_type is not CertificateType.CENSUS:
                continue
            triples = cert.relationships()
            head = cert.roles.get(Role.CH)
            for child in cert.children:
                if head is not None:
                    assert (head, "Fof", child) in triples or any(
                        rel == "Mof" and target == child
                        for _, rel, target in triples
                    )

    def test_children_live_with_parents(self, census_run):
        sim, dataset = census_run
        for cert in dataset.certificates.values():
            if cert.cert_type is not CertificateType.CENSUS:
                continue
            head = cert.roles.get(Role.CH)
            if head is None:
                continue
            head_person = dataset.record(head).person_id
            wife = cert.roles.get(Role.CW)
            wife_person = dataset.record(wife).person_id if wife else None
            for child_rid in cert.children:
                child = sim.people[dataset.record(child_rid).person_id]
                assert head_person in (child.father_id, child.mother_id) or (
                    wife_person in (child.father_id, child.mother_id)
                )

    def test_census_records_have_ages(self, census_run):
        _, dataset = census_run
        for record in dataset:
            if record.role in CENSUS_ROLES:
                assert record.age is not None


class TestCensusConstraints:
    def _dataset(self):
        records = [
            Record(1, 1, Role.CH, {"first_name": "john", "surname": "ross",
                                   "gender": "m", "event_year": "1881",
                                   "age": "40"}, 1),
            Record(2, 2, Role.CH, {"first_name": "john", "surname": "ross",
                                   "gender": "m", "event_year": "1881",
                                   "age": "40"}, 2),
            Record(3, 3, Role.CH, {"first_name": "john", "surname": "ross",
                                   "gender": "m", "event_year": "1891",
                                   "age": "50"}, 1),
        ]
        certs = [
            Certificate(i, CertificateType.CENSUS, 1881 if i < 3 else 1891,
                        "uig", {Role.CH: i})
            for i in (1, 2, 3)
        ]
        return Dataset("cc", records, certs)

    def test_same_census_year_not_linkable(self):
        dataset = self._dataset()
        checker = ConstraintChecker()
        assert not checker.records_compatible(dataset.record(1), dataset.record(2))

    def test_cross_census_linkable(self):
        dataset = self._dataset()
        checker = ConstraintChecker()
        assert checker.records_compatible(dataset.record(1), dataset.record(3))

    def test_entity_census_year_uniqueness_propagates(self):
        dataset = self._dataset()
        store = EntityStore(dataset)
        checker = ConstraintChecker()
        store.merge(1, 3)  # entity now covers censuses 1881 and 1891
        # Record 2 (census 1881) conflicts with the merged entity.
        assert not checker.can_merge(store, dataset.record(2), dataset.record(3))


class TestCensusResolution:
    def test_resolver_handles_census_dataset(self, census_run):
        _, dataset = census_run
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        # Census records must participate in entities.
        census_linked = sum(
            1
            for entity in result.entities.entities(min_size=2)
            for rid in entity.record_ids
            if dataset.record(rid).role in CENSUS_ROLES
        )
        assert census_linked > 0
        # And census-year uniqueness must hold in the output.
        for entity in result.entities.entities(min_size=2):
            years = [
                dataset.record(rid).event_year
                for rid in entity.record_ids
                if dataset.record(rid).role in CENSUS_ROLES
            ]
            assert len(years) == len(set(years))

    def test_pedigree_graph_includes_census_edges(self, census_run):
        from repro.pedigree import build_pedigree_graph

        _, dataset = census_run
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        graph = build_pedigree_graph(dataset, result.entities)
        assert len(graph) > 0
        assert graph.n_edges() > 0
