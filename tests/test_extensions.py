"""Tests for the extension features: GEDCOM export, pedigree-graph
serialisation, geo-aware querying, and the expert-feedback loop."""

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.core.feedback import FeedbackSession
from repro.pedigree import (
    extract_pedigree,
    load_pedigree_graph,
    render_gedcom,
    save_pedigree_graph,
)
from repro.query import Query, QueryEngine


@pytest.fixture(scope="module")
def family_pedigree(tiny_pedigree_graph):
    for entity in tiny_pedigree_graph:
        if (
            tiny_pedigree_graph.children(entity.entity_id)
            and tiny_pedigree_graph.spouses(entity.entity_id)
        ):
            return extract_pedigree(tiny_pedigree_graph, entity.entity_id, 2)
    pytest.skip("no family entity")


class TestGedcom:
    def test_header_and_trailer(self, family_pedigree):
        text = render_gedcom(family_pedigree)
        assert text.startswith("0 HEAD")
        assert text.rstrip().endswith("0 TRLR")
        assert "2 VERS 5.5.1" in text

    def test_every_entity_exported(self, family_pedigree):
        text = render_gedcom(family_pedigree)
        for entity_id in family_pedigree.entities:
            assert f"0 @I{entity_id}@ INDI" in text

    def test_family_records_link_parents_and_children(self, family_pedigree):
        text = render_gedcom(family_pedigree)
        assert "0 @F1@ FAM" in text
        assert "1 CHIL @I" in text
        assert "1 HUSB @I" in text or "1 WIFE @I" in text

    def test_children_carry_famc(self, family_pedigree):
        text = render_gedcom(family_pedigree)
        assert "1 FAMC @F" in text

    def test_sex_lines_valid(self, family_pedigree):
        for line in render_gedcom(family_pedigree).splitlines():
            if line.startswith("1 SEX"):
                assert line in ("1 SEX M", "1 SEX F")

    def test_name_format(self, family_pedigree):
        text = render_gedcom(family_pedigree)
        name_lines = [l for l in text.splitlines() if l.startswith("1 NAME")]
        assert name_lines
        for line in name_lines:
            assert line.count("/") == 2  # surname delimiters


class TestSerialization:
    def test_round_trip_entities(self, tiny_pedigree_graph, tmp_path):
        path = save_pedigree_graph(tiny_pedigree_graph, tmp_path / "g.json")
        loaded = load_pedigree_graph(path)
        assert len(loaded) == len(tiny_pedigree_graph)
        for entity in tiny_pedigree_graph:
            other = loaded.entity(entity.entity_id)
            assert other.values == entity.values
            assert other.gender == entity.gender
            assert other.roles == entity.roles
            assert other.record_ids == entity.record_ids

    def test_round_trip_edges(self, tiny_pedigree_graph, tmp_path):
        path = save_pedigree_graph(tiny_pedigree_graph, tmp_path / "g.json")
        loaded = load_pedigree_graph(path)
        for entity in tiny_pedigree_graph:
            eid = entity.entity_id
            assert loaded.children(eid) == tiny_pedigree_graph.children(eid)
            assert loaded.parents(eid) == tiny_pedigree_graph.parents(eid)
            assert loaded.spouses(eid) == tiny_pedigree_graph.spouses(eid)

    def test_query_engine_works_on_loaded_graph(self, tiny_pedigree_graph, tmp_path):
        path = save_pedigree_graph(tiny_pedigree_graph, tmp_path / "g.json")
        loaded = load_pedigree_graph(path)
        engine = QueryEngine(loaded)
        target = next(
            e for e in loaded if e.first("first_name") and e.first("surname")
        )
        hits = engine.search(
            Query(first_name=target.first("first_name"),
                  surname=target.first("surname"))
        )
        assert hits and hits[0].score_percent > 90.0

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_pedigree_graph(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "snaps-pedigree-graph", "version": 99}')
        with pytest.raises(ValueError):
            load_pedigree_graph(path)


class TestGeoQuery:
    def test_geo_mode_scores_nearby_parish(self, tiny_pedigree_graph):
        engine = QueryEngine(tiny_pedigree_graph, use_geographic_distance=True)
        # Find an entity with a parish, query with a *different but
        # nearby* parish: geographic scoring should still give partial
        # parish credit.
        target = next(
            e
            for e in tiny_pedigree_graph
            if e.first("first_name") and e.first("surname") and e.first("parish")
        )
        from repro.data.names import PARISH_COORDINATES
        from repro.similarity.geo import haversine_km

        own = target.first("parish")
        if own not in PARISH_COORDINATES:
            pytest.skip("parish not in gazetteer")
        nearby = min(
            (p for p in PARISH_COORDINATES if p != own),
            key=lambda p: haversine_km(
                PARISH_COORDINATES[own], PARISH_COORDINATES[p]
            ),
        )
        hits = engine.search(
            Query(
                first_name=target.first("first_name"),
                surname=target.first("surname"),
                parish=nearby,
            ),
            top_m=10,
        )
        hit = next(
            (h for h in hits if h.entity.entity_id == target.entity_id), None
        )
        assert hit is not None
        assert hit.attribute_scores.get("parish", 0.0) > 0.0

    def test_geo_mode_unknown_parish_falls_back(self, tiny_pedigree_graph):
        engine = QueryEngine(tiny_pedigree_graph, use_geographic_distance=True)
        matches = engine._parish_matches("notaparish")
        assert isinstance(matches, list)


class TestFeedback:
    @pytest.fixture()
    def session(self, tiny_dataset):
        result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        return FeedbackSession(tiny_dataset, result.entities)

    def _linked_pair(self, session):
        for entity in session.store.entities(min_size=2):
            link = next(iter(entity.links))
            return link
        pytest.skip("no linked pair")

    def _unlinked_compatible_pair(self, session):
        from repro.core.constraints import ConstraintChecker

        checker = ConstraintChecker()
        records = list(session.dataset)
        for i, a in enumerate(records):
            for b in records[i + 1 : i + 200]:
                if session.store.same_entity(a.record_id, b.record_id):
                    continue
                if checker.can_merge(session.store, a, b):
                    return (a.record_id, b.record_id)
        pytest.skip("no compatible unlinked pair")

    def test_confirm_merges(self, session):
        pair = self._unlinked_compatible_pair(session)
        session.confirm(*pair)
        assert session.store.same_entity(*pair)
        assert session.summary()["confirmed"] == 1

    def test_reject_splits(self, session):
        pair = self._linked_pair(session)
        session.reject(*pair)
        assert not session.store.same_entity(*pair)

    def test_reject_then_confirm_conflicts(self, session):
        pair = self._linked_pair(session)
        session.reject(*pair)
        with pytest.raises(ValueError):
            session.confirm(*pair)

    def test_confirm_impossible_pair_rejected(self, session, tiny_dataset):
        from repro.data.roles import Role

        babies = tiny_dataset.records_with_role([Role.BB])
        if len(babies) < 2:
            pytest.skip("not enough babies")
        with pytest.raises(ValueError):
            session.confirm(babies[0].record_id, babies[1].record_id)

    def test_self_link_rejected(self, session):
        with pytest.raises(ValueError):
            session.reject(1, 1)

    def test_checker_vetoes_rejected_merge(self, session):
        pair = self._linked_pair(session)
        session.reject(*pair)
        checker = session.checker()
        a = session.dataset.record(pair[0])
        b = session.dataset.record(pair[1])
        assert not checker.can_merge(session.store, a, b)
