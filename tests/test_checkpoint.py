"""Tests for per-phase resolver checkpoints (repro.core.checkpoint)."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.blocking.candidates import CandidatePair
from repro.core.checkpoint import (
    ALL_PHASES,
    CheckpointError,
    ResolveCheckpointer,
    pipeline_phases,
)
from repro.core.config import SnapsConfig
from repro.core.entities import EntityStore
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role
from repro.store import codecs


@pytest.fixture()
def dataset():
    records, certs = [], []
    for i in range(1, 7):
        records.append(
            Record(i, i, Role.BM,
                   {"first_name": "mary", "surname": "ross",
                    "event_year": str(1870 + i)}, person_id=1)
        )
        certs.append(
            Certificate(i, CertificateType.BIRTH, 1870 + i, "uig", {Role.BM: i})
        )
    return Dataset("ck", records, certs)


@pytest.fixture()
def checkpoint(tmp_path, dataset):
    return ResolveCheckpointer.begin(tmp_path / "ck", dataset, SnapsConfig())


class TestPipelinePhases:
    def test_full_plan(self):
        assert pipeline_phases(SnapsConfig()) == ALL_PHASES

    def test_no_refinement_skips_refine_phases(self):
        phases = pipeline_phases(SnapsConfig(use_refinement=False))
        assert phases == ("blocking", "bootstrap", "merging")


class TestEntityStateRoundTrip:
    def test_merged_and_split_store_survives(self, dataset):
        store = EntityStore(dataset)
        store.merge(1, 2)
        store.merge(2, 3)
        store.merge(4, 5)
        store.remove_record(2)  # splits {1,2,3} into singletons
        blob = codecs.encode_entity_state(store)
        # JSON round trip: what the checkpoint payload actually stores.
        restored = codecs.decode_entity_state(
            json.loads(json.dumps(blob)), dataset
        )
        assert len(restored) == len(store)
        for rid in range(1, 7):
            a = store.entity_of(rid)
            b = restored.entity_of(rid)
            assert a.record_ids == b.record_ids
            assert a.links == b.links
            assert a.entity_id == b.entity_id

    def test_restored_store_continues_identically(self, dataset):
        store = EntityStore(dataset)
        store.merge(1, 2)
        restored = codecs.decode_entity_state(
            codecs.encode_entity_state(store), dataset
        )
        # Future entity ids must not collide with checkpointed ones.
        a = store.merge(3, 4)
        b = restored.merge(3, 4)
        assert a.entity_id == b.entity_id
        assert store.values_of(a, "surname") == restored.values_of(b, "surname")


class TestBeginAndResume:
    def test_begin_writes_meta_and_dataset(self, tmp_path, dataset):
        ResolveCheckpointer.begin(tmp_path / "ck", dataset, SnapsConfig())
        meta = json.loads((tmp_path / "ck" / "checkpoint.json").read_text())
        assert meta["format"] == "snaps-resolve-checkpoint"
        assert meta["phases"] == list(ALL_PHASES)
        assert meta["dataset"]["records"] == 6
        assert (tmp_path / "ck" / "dataset.records.csv").exists()

    def test_resume_restores_dataset_and_config(self, tmp_path, dataset):
        config = SnapsConfig(merge_threshold=0.9, use_refinement=False)
        ResolveCheckpointer.begin(tmp_path / "ck", dataset, config)
        ckpt, restored, restored_config = ResolveCheckpointer.resume(
            tmp_path / "ck"
        )
        assert restored.content_fingerprint() == dataset.content_fingerprint()
        assert restored_config == config
        assert ckpt.phases == pipeline_phases(config)

    def test_begin_refuses_different_config(self, tmp_path, dataset):
        ResolveCheckpointer.begin(tmp_path / "ck", dataset, SnapsConfig())
        with pytest.raises(CheckpointError, match="different\\s+configuration"):
            ResolveCheckpointer.begin(
                tmp_path / "ck", dataset, SnapsConfig(merge_threshold=0.5)
            )

    def test_begin_refuses_different_dataset(self, tmp_path, dataset):
        ResolveCheckpointer.begin(tmp_path / "ck", dataset, SnapsConfig())
        other = Dataset(
            "other",
            [r for r in dataset if r.record_id <= 3],
            [dataset.certificates[c] for c in (1, 2, 3)],
        )
        with pytest.raises(CheckpointError, match="different\\s+dataset"):
            ResolveCheckpointer.begin(tmp_path / "ck", other, SnapsConfig())

    def test_begin_fresh_discards_old_phases(self, tmp_path, dataset, checkpoint):
        checkpoint.save_pairs([CandidatePair(1, 2)])
        assert checkpoint.completed_prefix() == ("blocking",)
        reopened = ResolveCheckpointer.begin(
            checkpoint.directory, dataset, SnapsConfig()
        )
        assert reopened.completed_prefix() == ()

    def test_resume_detects_tampered_dataset(self, tmp_path, dataset, checkpoint):
        records_csv = checkpoint.directory / "dataset.records.csv"
        records_csv.write_text(
            records_csv.read_text().replace("mary", "MARY", 1)
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            ResolveCheckpointer.resume(checkpoint.directory)


class TestReadMetaErrors:
    def test_not_a_checkpoint_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="not a checkpoint directory"):
            ResolveCheckpointer.resume(tmp_path)

    def test_corrupt_meta(self, tmp_path):
        (tmp_path / "checkpoint.json").write_text("{truncated")
        with pytest.raises(CheckpointError, match="corrupt checkpoint meta"):
            ResolveCheckpointer.resume(tmp_path)

    def test_wrong_format(self, tmp_path):
        (tmp_path / "checkpoint.json").write_text(
            json.dumps({"format": "something-else", "version": 1})
        )
        with pytest.raises(CheckpointError, match="not a resolve checkpoint"):
            ResolveCheckpointer.resume(tmp_path)

    def test_unsupported_version(self, tmp_path):
        (tmp_path / "checkpoint.json").write_text(
            json.dumps({"format": "snaps-resolve-checkpoint", "version": 99})
        )
        with pytest.raises(CheckpointError, match="version"):
            ResolveCheckpointer.resume(tmp_path)


class TestPhasePayloads:
    def test_pairs_round_trip(self, checkpoint):
        pairs = [CandidatePair(1, 2), CandidatePair(2, 5), CandidatePair(3, 6)]
        checkpoint.save_pairs(pairs)
        assert checkpoint.load_pairs() == pairs

    def test_state_round_trip_with_stats(self, dataset, checkpoint):
        store = EntityStore(dataset)
        store.merge(1, 2)
        checkpoint.save_pairs([CandidatePair(1, 2)])
        checkpoint.save_state("bootstrap", store, {"links": 1})
        restored, stats = checkpoint.load_state("bootstrap", dataset)
        assert stats == {"links": 1}
        assert restored.entity_of(1).record_ids == {1, 2}

    def test_unknown_phase_rejected(self, dataset, checkpoint):
        with pytest.raises(CheckpointError, match="not in checkpoint plan"):
            checkpoint.save_state("warmup", EntityStore(dataset), {})

    def test_load_unsaved_phase_fails(self, dataset, checkpoint):
        with pytest.raises(CheckpointError, match="no intact checkpoint"):
            checkpoint.load_state("merging", dataset)

    def test_payload_phase_mismatch_detected(self, dataset, checkpoint):
        checkpoint.save_state("bootstrap", EntityStore(dataset), {})
        phases = checkpoint.directory / "phases"
        # A payload masquerading under the wrong phase name: intact
        # checksum, wrong content.
        shutil.copy(phases / "bootstrap.json", phases / "merging.json")
        shutil.copy(phases / "bootstrap.json.sha256", phases / "merging.json.sha256")
        with pytest.raises(CheckpointError, match="is for phase 'bootstrap'"):
            checkpoint.load_state("merging", dataset)


class TestCompletedPrefix:
    def _complete_through_merging(self, dataset, checkpoint):
        store = EntityStore(dataset)
        checkpoint.save_pairs([CandidatePair(1, 2)])
        for phase in ("bootstrap", "refine_bootstrap", "merging"):
            checkpoint.save_state(phase, store, {})

    def test_prefix_in_pipeline_order(self, dataset, checkpoint):
        self._complete_through_merging(dataset, checkpoint)
        assert checkpoint.completed_prefix() == (
            "blocking", "bootstrap", "refine_bootstrap", "merging"
        )

    def test_missing_marker_means_incomplete(self, dataset, checkpoint):
        self._complete_through_merging(dataset, checkpoint)
        (checkpoint.directory / "phases" / "merging.json.sha256").unlink()
        assert checkpoint.completed_prefix() == (
            "blocking", "bootstrap", "refine_bootstrap"
        )

    def test_torn_early_payload_invalidates_successors(self, dataset, checkpoint):
        self._complete_through_merging(dataset, checkpoint)
        payload = checkpoint.directory / "phases" / "bootstrap.json"
        payload.write_bytes(payload.read_bytes()[: payload.stat().st_size // 2])
        # bootstrap fails its checksum, so the intact later phases —
        # derived from it — must not be trusted either.
        assert checkpoint.completed_prefix() == ("blocking",)
        assert checkpoint.is_complete("merging")
