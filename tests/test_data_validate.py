"""Tests for ingest hardening: validation, quarantine, strict/skip loads."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.data.loader import (
    load_dataset_checked,
    read_dataset_rows,
    save_dataset_csv,
)
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role
from repro.data.synthetic import make_tiny_dataset
from repro.data.validate import (
    DatasetLoadError,
    QuarantineReport,
    ValidationIssue,
    clean_dataset,
    format_issues,
    validate_dataset_parts,
)
from repro.obs.metrics import MetricsRegistry


def _birth(cert_id, mother_rid, year=1875, **mother_attrs):
    """One birth certificate with a single mother record."""
    attrs = {"first_name": "mary", "surname": "ross", "event_year": str(year)}
    attrs.update(mother_attrs)
    record = Record(mother_rid, cert_id, Role.BM, attrs, person_id=mother_rid)
    cert = Certificate(
        cert_id, CertificateType.BIRTH, year, "uig", {Role.BM: mother_rid}
    )
    return [record], cert


def _parts(n=3, **attrs):
    records, certs = [], []
    for i in range(1, n + 1):
        recs, cert = _birth(i, 100 + i, **attrs)
        records += recs
        certs.append(cert)
    return records, certs


def _codes(issues):
    return [issue.code for issue in issues]


class TestValidateDatasetParts:
    def test_clean_parts_have_no_issues(self):
        records, certs = _parts()
        assert validate_dataset_parts(records, certs) == []

    def test_duplicate_record_id(self):
        records, certs = _parts(1)
        dup = Record(101, 1, Role.BM, {}, person_id=9)
        issues = validate_dataset_parts(records + [dup], certs)
        assert "duplicate_record_id" in _codes(issues)

    def test_duplicate_cert_id(self):
        records, certs = _parts(1)
        issues = validate_dataset_parts(records, certs + [certs[0]])
        assert "duplicate_cert_id" in _codes(issues)

    def test_dangling_reference(self):
        records, certs = _parts(1)
        certs[0].roles[Role.BF] = 999  # no such record
        issues = validate_dataset_parts(records, certs)
        (issue,) = [i for i in issues if i.code == "dangling_reference"]
        assert "999" in issue.message and issue.cert_id == 1

    def test_role_mismatch(self):
        records, certs = _parts(1)
        certs[0].roles[Role.BF] = 101  # 101 exists but is the BM record
        issues = validate_dataset_parts(records, certs)
        assert "role_mismatch" in _codes(issues)

    def test_cert_year_out_of_range(self):
        records, certs = _parts(1)
        bad = Certificate(2, CertificateType.BIRTH, 1200, "uig", {})
        issues = validate_dataset_parts(records, certs + [bad])
        assert "year_out_of_range" in _codes(issues)

    def test_missing_certificate(self):
        records, certs = _parts(1)
        orphan = Record(200, 77, Role.DD, {}, person_id=200)
        issues = validate_dataset_parts(records + [orphan], certs)
        (issue,) = [i for i in issues if i.code == "missing_certificate"]
        assert issue.record_id == 200

    def test_unparseable_year(self):
        records, certs = _parts(1, event_year="eighteen-seventy")
        assert "unparseable_year" in _codes(validate_dataset_parts(records, certs))

    def test_unparseable_and_out_of_range_age(self):
        bad_records, certs = _parts(2)
        bad_records[0].attributes["age"] = "old"
        bad_records[1].attributes["age"] = "300"
        codes = _codes(validate_dataset_parts(bad_records, certs))
        assert "unparseable_age" in codes and "age_out_of_range" in codes

    def test_bad_gender(self):
        records, certs = _parts(1, gender="x")
        assert "bad_gender" in _codes(validate_dataset_parts(records, certs))

    def test_bad_geo(self):
        records, certs = _parts(2)
        records[0].attributes["latitude"] = "95.0"
        records[1].attributes["longitude"] = "east"
        codes = _codes(validate_dataset_parts(records, certs))
        assert codes.count("bad_geo") == 2


class TestCleanDataset:
    def test_record_issue_drops_whole_certificate(self):
        records, certs = _parts(3)
        records[0].attributes["gender"] = "x"
        issues = validate_dataset_parts(records, certs)
        dataset, report = clean_dataset("d", records, certs, issues)
        assert report.certificates_dropped == 1
        assert report.records_dropped == 1
        assert len(dataset.certificates) == 2
        assert 101 not in {r.record_id for r in dataset}

    def test_orphan_record_dropped_alone(self):
        records, certs = _parts(2)
        orphan = Record(200, 77, Role.DD, {}, person_id=200)
        issues = validate_dataset_parts(records + [orphan], certs)
        dataset, report = clean_dataset("d", records + [orphan], certs, issues)
        assert report.certificates_dropped == 0
        assert report.records_dropped == 1
        assert len(dataset.certificates) == 2

    def test_clean_input_passes_through(self):
        records, certs = _parts(3)
        dataset, report = clean_dataset("d", records, certs, [])
        assert len(dataset) == 3
        assert report.certificates_dropped == 0 and not report.issues


class TestQuarantineReport:
    def _report(self):
        return QuarantineReport(
            issues=[
                ValidationIssue("bad_gender", "gender 'x'", record_id=1, cert_id=1),
                ValidationIssue("bad_gender", "gender 'q'", record_id=2, cert_id=2),
                ValidationIssue("unparseable_year", "year 'abc'", cert_id=3),
            ],
            certificates_dropped=3,
            records_dropped=5,
        )

    def test_counts_sorted_by_code(self):
        assert self._report().counts() == {
            "bad_gender": 2, "unparseable_year": 1
        }

    def test_write_jsonl(self, tmp_path):
        path = self._report().write_jsonl(tmp_path / "report.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 4  # three issues + summary
        assert lines[0] == {
            "code": "bad_gender", "message": "gender 'x'",
            "record_id": 1, "cert_id": 1,
        }
        assert lines[-1] == {
            "summary": {"bad_gender": 2, "unparseable_year": 1},
            "certificates_dropped": 3,
            "records_dropped": 5,
        }

    def test_to_metrics(self):
        metrics = MetricsRegistry()
        self._report().to_metrics(metrics)
        assert metrics.counter_value("data.quarantine.issues") == 3
        assert metrics.counter_value("data.quarantine.certificates_dropped") == 3
        assert metrics.counter_value("data.quarantine.records_dropped") == 5
        assert metrics.counter_value("data.quarantine.bad_gender") == 2

    def test_summary_mentions_counts(self):
        summary = self._report().summary()
        assert "3 certificate(s)" in summary and "bad_gender=2" in summary

    def test_format_issues_limits(self):
        issues = [ValidationIssue("bad_geo", f"issue {i}") for i in range(8)]
        digest = format_issues(issues, limit=5)
        assert "issue 4" in digest and "issue 5" not in digest
        assert "and 3 more issue(s)" in digest


class TestLoaderRowErrors:
    @pytest.fixture()
    def stem(self, tmp_path):
        records, certs = _parts(3)
        stem = tmp_path / "tiny"
        save_dataset_csv(Dataset("tiny", records, certs), stem)
        return stem

    def _garble_record_row(self, stem):
        path = stem.with_suffix(".records.csv")
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace("101", "not-an-id", 1)
        path.write_text("\n".join(lines) + "\n")

    def test_raise_names_file_and_row(self, stem):
        self._garble_record_row(stem)
        with pytest.raises(DatasetLoadError) as raised:
            read_dataset_rows(stem)
        message = str(raised.value)
        assert "tiny.records.csv" in message and "row 2" in message
        assert raised.value.row == 2

    def test_skip_records_issue_and_continues(self, stem):
        self._garble_record_row(stem)
        issues = []
        records, certs = read_dataset_rows(stem, on_error="skip", issues=issues)
        assert len(records) == 2 and len(certs) == 3
        (issue,) = [i for i in issues if i.code == "unparseable_row"]
        assert issue.file == "tiny.records.csv" and issue.row == 2

    def test_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(DatasetLoadError, match="records.csv"):
            read_dataset_rows(tmp_path / "nope")


class TestLoadDatasetChecked:
    @pytest.fixture()
    def dirty_stem(self, tmp_path):
        records, certs = _parts(4)
        records[1].attributes["gender"] = "x"
        stem = tmp_path / "dirty"
        save_dataset_csv(Dataset("dirty", records, certs), stem)
        return stem

    def test_strict_raises_with_issues_attached(self, dirty_stem):
        with pytest.raises(DatasetLoadError) as raised:
            load_dataset_checked(dirty_stem, mode="strict")
        assert "bad_gender" in str(raised.value)
        assert _codes(raised.value.issues) == ["bad_gender"]

    def test_quarantine_returns_clean_dataset_and_report(self, dirty_stem):
        metrics = MetricsRegistry()
        dataset, report = load_dataset_checked(
            dirty_stem, mode="quarantine", metrics=metrics
        )
        assert len(dataset) == 3
        assert report.certificates_dropped == 1
        assert metrics.counter_value("data.quarantine.bad_gender") == 1

    def test_report_path_written_only_when_dirty(self, dirty_stem, tmp_path):
        report_path = tmp_path / "q.jsonl"
        load_dataset_checked(
            dirty_stem, mode="quarantine", report_path=report_path
        )
        assert report_path.exists()
        clean = tmp_path / "clean"
        records, certs = _parts(2)
        save_dataset_csv(Dataset("c", records, certs), clean)
        other = tmp_path / "other.jsonl"
        load_dataset_checked(clean, mode="quarantine", report_path=other)
        assert not other.exists()

    def test_bad_mode_rejected(self, dirty_stem):
        with pytest.raises(ValueError, match="mode"):
            load_dataset_checked(dirty_stem, mode="lenient")


class TestValidationCLI:
    @pytest.fixture()
    def dirty_stem(self, tmp_path):
        dataset = make_tiny_dataset(seed=3)
        stem = tmp_path / "dirty"
        save_dataset_csv(dataset, stem)
        # Poison one record row: non-numeric event_year survives row
        # parsing but fails schema validation.
        path = stem.with_suffix(".records.csv")
        lines = path.read_text().splitlines()
        header = lines[0].split(",")
        year_col = header.index("event_year")
        cells = lines[1].split(",")
        cells[year_col] = "eighteen77"
        lines[1] = ",".join(cells)
        path.write_text("\n".join(lines) + "\n")
        return stem

    def test_resolve_strict_fails_fast(self, dirty_stem, tmp_path, capsys):
        code = main([
            "resolve", "--data", str(dirty_stem), "--strict",
            "--out", str(tmp_path / "g.json"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "dataset error" in err and "unparseable_year" in err
        assert "--quarantine" in err  # actionable hint
        assert not (tmp_path / "g.json").exists()

    def test_resolve_default_is_strict(self, dirty_stem, tmp_path, capsys):
        code = main([
            "resolve", "--data", str(dirty_stem),
            "--out", str(tmp_path / "g.json"),
        ])
        assert code == 2
        assert "dataset error" in capsys.readouterr().err

    def test_resolve_quarantine_continues(self, dirty_stem, tmp_path, capsys):
        report = tmp_path / "report.jsonl"
        code = main([
            "resolve", "--data", str(dirty_stem), "--quarantine",
            "--quarantine-report", str(report),
            "--out", str(tmp_path / "g.json"),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "quarantined 1 certificate(s)" in captured.err
        assert "quarantine report written" in captured.err
        assert (tmp_path / "g.json").exists()
        lines = [json.loads(l) for l in report.read_text().splitlines()]
        assert lines[0]["code"] == "unparseable_year"
        assert lines[-1]["summary"] == {"unparseable_year": 1}

    def test_snapshot_ingest_strict_fails_fast(
        self, dirty_stem, tmp_path, capsys
    ):
        store = tmp_path / "store"
        clean = make_tiny_dataset(seed=3)
        clean_stem = tmp_path / "clean"
        save_dataset_csv(clean, clean_stem)
        assert main([
            "resolve", "--data", str(clean_stem),
            "--snapshot-out", str(store),
        ]) == 0
        capsys.readouterr()
        code = main([
            "snapshot", "ingest", "--store", str(store),
            "--data", str(dirty_stem), "--strict",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "dataset error" in err and "--quarantine" in err
