"""Tests for the online query engine (Section 7)."""

import pytest

from repro.query import Query, QueryEngine


@pytest.fixture(scope="module")
def sample_entity(tiny_query_engine):
    """An entity with full name values to query for."""
    for entity in tiny_query_engine.graph:
        if entity.first("first_name") and entity.first("surname"):
            return entity
    pytest.skip("no named entity")


class TestQueryValidation:
    def test_names_mandatory(self):
        with pytest.raises(ValueError):
            Query(first_name="", surname="macdonald")
        with pytest.raises(ValueError):
            Query(first_name="mary", surname="")

    def test_record_type_restricted(self):
        with pytest.raises(ValueError):
            Query(first_name="a", surname="b", record_type="marriage")

    def test_gender_restricted(self):
        with pytest.raises(ValueError):
            Query(first_name="a", surname="b", gender="x")

    def test_year_range_ordering(self):
        with pytest.raises(ValueError):
            Query(first_name="a", surname="b", year_from=1890, year_to=1880)


class TestSearch:
    def test_exact_match_ranks_first(self, tiny_query_engine, sample_entity):
        query = Query(
            first_name=sample_entity.first("first_name"),
            surname=sample_entity.first("surname"),
        )
        results = tiny_query_engine.search(query, top_m=10)
        assert results
        top = results[0]
        assert top.entity.first("first_name") == sample_entity.first("first_name")
        assert top.match_kinds.get("first_name") == "exact"

    def test_exact_match_on_all_fields_is_100_percent(
        self, tiny_query_engine, sample_entity
    ):
        query = Query(
            first_name=sample_entity.first("first_name"),
            surname=sample_entity.first("surname"),
        )
        results = tiny_query_engine.search(query)
        assert results[0].score_percent == 100.0

    def test_misspelled_query_still_finds_entity(
        self, tiny_query_engine, sample_entity
    ):
        first = sample_entity.first("first_name")
        surname = sample_entity.first("surname")
        typo = surname[0] + surname[2:] if len(surname) > 3 else surname + "e"
        query = Query(first_name=first, surname=typo)
        results = tiny_query_engine.search(query, top_m=10)
        assert any(r.entity.entity_id == sample_entity.entity_id for r in results)

    def test_approximate_matches_marked(self, tiny_query_engine, sample_entity):
        surname = sample_entity.first("surname")
        typo = surname[0] + surname[2:] if len(surname) > 3 else surname + "e"
        query = Query(first_name=sample_entity.first("first_name"), surname=typo)
        results = tiny_query_engine.search(query, top_m=10)
        hit = next(
            r for r in results if r.entity.entity_id == sample_entity.entity_id
        )
        assert hit.match_kinds.get("surname") in ("approx", "exact")

    def test_top_m_respected(self, tiny_query_engine, sample_entity):
        query = Query(
            first_name=sample_entity.first("first_name"),
            surname=sample_entity.first("surname"),
        )
        assert len(tiny_query_engine.search(query, top_m=3)) <= 3

    def test_scores_descending(self, tiny_query_engine, sample_entity):
        query = Query(
            first_name=sample_entity.first("first_name"),
            surname=sample_entity.first("surname"),
        )
        scores = [r.score_percent for r in tiny_query_engine.search(query, top_m=10)]
        assert scores == sorted(scores, reverse=True)

    def test_gender_filter_boosts_matching(self, tiny_query_engine, sample_entity):
        if sample_entity.gender is None:
            pytest.skip("unknown gender")
        base = Query(
            first_name=sample_entity.first("first_name"),
            surname=sample_entity.first("surname"),
        )
        gendered = Query(
            first_name=sample_entity.first("first_name"),
            surname=sample_entity.first("surname"),
            gender=sample_entity.gender,
        )
        top = tiny_query_engine.search(gendered, top_m=5)
        assert any(r.entity.entity_id == sample_entity.entity_id for r in top)

    def test_year_range_scoring(self, tiny_query_engine, sample_entity):
        span = sample_entity.year_range()
        if span is None:
            pytest.skip("no years")
        query = Query(
            first_name=sample_entity.first("first_name"),
            surname=sample_entity.first("surname"),
            year_from=span[0],
            year_to=span[1],
        )
        results = tiny_query_engine.search(query, top_m=5)
        hit = next(
            (r for r in results if r.entity.entity_id == sample_entity.entity_id),
            None,
        )
        assert hit is not None
        assert hit.attribute_scores.get("year") == 1.0

    def test_record_type_filter(self, tiny_query_engine):
        from repro.data.roles import Role

        birth_entity = next(
            (
                e
                for e in tiny_query_engine.graph
                if Role.BB in e.roles and e.first("first_name") and e.first("surname")
            ),
            None,
        )
        if birth_entity is None:
            pytest.skip("no birth entity")
        query = Query(
            first_name=birth_entity.first("first_name"),
            surname=birth_entity.first("surname"),
            record_type="birth",
        )
        for result in tiny_query_engine.search(query, top_m=10):
            assert Role.BB in result.entity.roles

    def test_nonsense_names_return_nothing_relevant(self, tiny_query_engine):
        query = Query(first_name="xqzw", surname="vvkkpp")
        results = tiny_query_engine.search(query)
        # Either no results or only weak approximate ones.
        assert all(r.score_percent < 80.0 for r in results)

    def test_entities_without_name_match_excluded(self, tiny_query_engine, sample_entity):
        """Accumulator seeds only on names: year/gender alone never adds."""
        query = Query(first_name="xqzw", surname="vvkkpp", year_from=1800,
                      year_to=1999)
        results = tiny_query_engine.search(query, top_m=50)
        for result in results:
            assert (
                "first_name" in result.attribute_scores
                or "surname" in result.attribute_scores
            )
