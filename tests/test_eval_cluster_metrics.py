"""Tests for cluster-level metrics: B-cubed, purity, VI."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.cluster_metrics import (
    b_cubed,
    cluster_purity,
    clustering_from_entities,
    variation_of_information,
)


def _ids(assignment):
    return dict(assignment)


PERFECT = {1: 10, 2: 10, 3: 20, 4: 20}
ALL_MERGED = {1: 1, 2: 1, 3: 1, 4: 1}
ALL_SPLIT = {1: 1, 2: 2, 3: 3, 4: 4}


class TestBCubed:
    def test_perfect(self):
        scores = b_cubed(PERFECT, PERFECT)
        assert scores.precision == scores.recall == scores.f1 == 1.0

    def test_all_merged_hurts_precision_not_recall(self):
        scores = b_cubed(ALL_MERGED, PERFECT)
        assert scores.recall == 1.0
        assert scores.precision == 0.5

    def test_all_split_hurts_recall_not_precision(self):
        scores = b_cubed(ALL_SPLIT, PERFECT)
        assert scores.precision == 1.0
        assert scores.recall == 0.5

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError):
            b_cubed({1: 1}, {2: 2})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            b_cubed({}, {})

    @given(
        assignment=st.dictionaries(
            st.integers(0, 20), st.integers(0, 5), min_size=1, max_size=20
        )
    )
    @settings(max_examples=40)
    def test_self_evaluation_is_perfect(self, assignment):
        scores = b_cubed(assignment, assignment)
        assert scores.precision == pytest.approx(1.0)
        assert scores.recall == pytest.approx(1.0)

    @given(
        predicted=st.dictionaries(
            st.integers(0, 15), st.integers(0, 4), min_size=1, max_size=16
        ),
        relabel=st.integers(0, 4),
    )
    @settings(max_examples=40)
    def test_bounds(self, predicted, relabel):
        truth = {k: (v + relabel) % 3 for k, v in predicted.items()}
        scores = b_cubed(predicted, truth)
        assert 0.0 < scores.precision <= 1.0
        assert 0.0 < scores.recall <= 1.0


class TestPurity:
    def test_perfect(self):
        assert cluster_purity(PERFECT, PERFECT) == 1.0

    def test_all_merged(self):
        assert cluster_purity(ALL_MERGED, PERFECT) == 0.5

    def test_singletons_always_pure(self):
        assert cluster_purity(ALL_SPLIT, PERFECT) == 1.0


class TestVariationOfInformation:
    def test_identity_is_zero(self):
        assert variation_of_information(PERFECT, PERFECT) == pytest.approx(0.0)

    def test_symmetry(self):
        a = variation_of_information(ALL_MERGED, PERFECT)
        b = variation_of_information(PERFECT, ALL_MERGED)
        assert a == pytest.approx(b)

    def test_bounded_by_log_n(self):
        vi = variation_of_information(ALL_SPLIT, ALL_MERGED)
        assert 0.0 < vi <= math.log(4) * 2

    @given(
        assignment=st.dictionaries(
            st.integers(0, 15), st.integers(0, 4), min_size=2, max_size=16
        )
    )
    @settings(max_examples=40)
    def test_nonnegative(self, assignment):
        truth = {k: k % 3 for k in assignment}
        assert variation_of_information(assignment, truth) >= 0.0


class TestIntegrationWithResolver:
    def test_snaps_clusters_score_well(self, tiny_dataset, resolved_tiny):
        predicted = clustering_from_entities(resolved_tiny.entities)
        truth = {r.record_id: r.person_id for r in tiny_dataset}
        scores = b_cubed(predicted, truth)
        assert scores.precision > 0.9
        assert scores.recall > 0.6
        assert cluster_purity(predicted, truth) > 0.9
        vi = variation_of_information(predicted, truth)
        assert vi < 1.0  # close to the truth clustering
