"""Tests for the end-to-end resolver and its ablation switches."""

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.eval import evaluate_linkage


class TestConfigValidation:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            SnapsConfig(merge_threshold=1.5)
        with pytest.raises(ValueError):
            SnapsConfig(gamma=-0.1)

    def test_bridge_limit(self):
        with pytest.raises(ValueError):
            SnapsConfig(bridge_node_limit=2)

    def test_effective_gamma(self):
        assert SnapsConfig(use_ambiguity=False).effective_gamma == 1.0
        assert SnapsConfig(gamma=0.6).effective_gamma == 0.6

    def test_negative_slack(self):
        with pytest.raises(ValueError):
            SnapsConfig(temporal_slack_years=-1)


class TestResolver:
    def test_result_counts_consistent(self, resolved_tiny, tiny_dataset):
        assert resolved_tiny.n_relational > 0
        assert resolved_tiny.n_atomic > 0
        summary = resolved_tiny.summary()
        assert summary["records"] == len(tiny_dataset)
        assert summary["time_total"] > 0

    def test_linkage_quality_reasonable(self, resolved_tiny, tiny_dataset):
        """SNAPS on clean-ish tiny data should be strong (sanity bound,
        far below the paper's numbers to avoid flakiness)."""
        for role_pair in ("Bp-Bp", "Bp-Dp"):
            ev = evaluate_linkage(
                resolved_tiny.matched_pairs(role_pair),
                tiny_dataset.true_match_pairs(role_pair),
                role_pair,
            )
            assert ev.precision > 80.0
            assert ev.recall > 70.0

    def test_no_entity_contains_two_births(self, resolved_tiny):
        from repro.data.roles import Role

        for entity in resolved_tiny.entities.entities(min_size=2):
            assert entity.role_counts.get(Role.BB, 0) <= 1
            assert entity.role_counts.get(Role.DD, 0) <= 1

    def test_no_entity_mixes_genders(self, resolved_tiny, tiny_dataset):
        for entity in resolved_tiny.entities.entities(min_size=2):
            genders = {
                tiny_dataset.record(rid).gender
                for rid in entity.record_ids
            } - {None}
            assert len(genders) <= 1

    def test_no_entity_spans_one_certificate_twice(self, resolved_tiny, tiny_dataset):
        for entity in resolved_tiny.entities.entities(min_size=2):
            certs = [tiny_dataset.record(rid).cert_id for rid in entity.record_ids]
            assert len(certs) == len(set(certs))

    def test_deterministic(self, tiny_dataset):
        a = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        b = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        assert a.matched_pairs("Bp-Bp") == b.matched_pairs("Bp-Bp")

    def test_role_restriction(self, tiny_dataset):
        from repro.data.roles import Role

        result = SnapsResolver(SnapsConfig()).resolve(
            tiny_dataset, roles=[Role.BM, Role.BF]
        )
        assert result.matched_pairs("Bb-Dd") == set()


class TestAblations:
    """Each disabled technique must not crash and should not *improve*
    overall F* (allowing small noise)."""

    @pytest.mark.parametrize(
        "flag",
        ["use_propagation", "use_ambiguity", "use_relational", "use_refinement"],
    )
    def test_ablation_runs(self, tiny_dataset, flag):
        config = SnapsConfig(**{flag: False})
        result = SnapsResolver(config).resolve(tiny_dataset)
        ev = evaluate_linkage(
            result.matched_pairs("Bp-Bp"),
            tiny_dataset.true_match_pairs("Bp-Bp"),
        )
        assert 0.0 <= ev.f_star <= 100.0

    def test_full_system_not_worse_than_no_rel(self, tiny_dataset, resolved_tiny):
        no_rel = SnapsResolver(SnapsConfig(use_relational=False)).resolve(tiny_dataset)
        full = evaluate_linkage(
            resolved_tiny.matched_pairs("Bp-Dp"),
            tiny_dataset.true_match_pairs("Bp-Dp"),
        )
        ablated = evaluate_linkage(
            no_rel.matched_pairs("Bp-Dp"),
            tiny_dataset.true_match_pairs("Bp-Dp"),
        )
        assert full.f_star >= ablated.f_star - 1.0
