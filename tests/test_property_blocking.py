"""Hypothesis property tests for blocking components."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.lsh import LshBlocker
from repro.blocking.minhash import MinHasher
from repro.data.records import Record
from repro.data.roles import Role

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)


def _record(rid, first, surname):
    return Record(rid, rid, Role.BM,
                  {"first_name": first, "surname": surname,
                   "event_year": "1880"}, rid)


class TestLshProperties:
    @given(
        jaccards=st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=10
        )
    )
    def test_s_curve_monotone(self, jaccards):
        blocker = LshBlocker()
        ordered = sorted(jaccards)
        probabilities = [
            blocker.estimated_pair_probability(j) for j in ordered
        ]
        assert probabilities == sorted(probabilities)
        assert all(0.0 <= p <= 1.0 for p in probabilities)

    @given(first=words, surname=words)
    @settings(max_examples=40)
    def test_identical_records_always_co_blocked(self, first, surname):
        blocker = LshBlocker()
        a = _record(1, first, surname)
        b = _record(2, first, surname)
        assert set(blocker.block_keys(a)) == set(blocker.block_keys(b))

    @given(first=words, surname=words)
    @settings(max_examples=40)
    def test_key_count_equals_bands(self, first, surname):
        blocker = LshBlocker(n_bands=8, rows_per_band=4)
        keys = blocker.block_keys(_record(1, first, surname))
        assert len(keys) == 8

    @given(first=words, surname=words)
    @settings(max_examples=30)
    def test_keys_deterministic_across_instances(self, first, surname):
        a = LshBlocker(seed=5).block_keys(_record(1, first, surname))
        b = LshBlocker(seed=5).block_keys(_record(2, first, surname))
        assert a == b


class TestMinHashProperties:
    @given(value=words)
    @settings(max_examples=40)
    def test_signature_stable(self, value):
        hasher = MinHasher(n_hashes=16, seed=9)
        assert hasher.signature(value) == hasher.signature(value)

    @given(a=words, b=words)
    @settings(max_examples=40)
    def test_estimate_symmetric_and_bounded(self, a, b):
        hasher = MinHasher(n_hashes=32, seed=9)
        sig_a, sig_b = hasher.signature(a), hasher.signature(b)
        estimate = hasher.estimate_jaccard(sig_a, sig_b)
        assert estimate == hasher.estimate_jaccard(sig_b, sig_a)
        assert 0.0 <= estimate <= 1.0
