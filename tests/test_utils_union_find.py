"""Tests for the union-find structure."""

from repro.utils.union_find import UnionFind


class TestUnionFind:
    def test_initially_disconnected(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")

    def test_union_connects(self):
        uf = UnionFind()
        assert uf.union("a", "b") is True
        assert uf.connected("a", "b")

    def test_union_same_set_returns_false(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.union("b", "a") is False

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")

    def test_size(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.size(1) == 3
        uf.add(4)
        assert uf.size(4) == 1

    def test_groups(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.add(3)
        groups = uf.groups()
        sizes = sorted(len(members) for members in groups.values())
        assert sizes == [1, 2]

    def test_find_is_idempotent_and_consistent(self):
        uf = UnionFind()
        for i in range(10):
            uf.union(0, i)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(10))

    def test_lazy_key_creation(self):
        uf = UnionFind()
        assert "new" not in uf
        uf.find("new")
        assert "new" in uf

    def test_len_and_iter(self):
        uf = UnionFind([1, 2, 3])
        assert len(uf) == 3
        assert sorted(uf) == [1, 2, 3]
