"""Hypothesis property tests for the index structures."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import SimilarityAwareIndex

words = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=10),
    min_size=1,
    max_size=25,
    unique=True,
)


class TestSimilarityIndexProperties:
    @given(values=words)
    @settings(max_examples=40)
    def test_every_value_matches_itself_at_one(self, values):
        index = SimilarityAwareIndex(values, threshold=0.5)
        for value in values:
            matches = dict(index.matches(value))
            assert matches.get(value) == 1.0

    @given(values=words)
    @settings(max_examples=40)
    def test_matches_respect_threshold(self, values):
        index = SimilarityAwareIndex(values, threshold=0.6)
        for value in values[:5]:
            for _, similarity in index.matches(value):
                assert similarity >= 0.6

    @given(values=words, probe=st.text(alphabet=string.ascii_lowercase,
                                       min_size=2, max_size=10))
    @settings(max_examples=40)
    def test_probe_results_subset_of_universe(self, values, probe):
        index = SimilarityAwareIndex(values, threshold=0.5)
        universe = {v.lower() for v in values}
        for matched, _ in index.matches(probe):
            assert matched in universe

    @given(values=words)
    @settings(max_examples=30)
    def test_lower_threshold_returns_superset(self, values):
        lax = SimilarityAwareIndex(values, threshold=0.4)
        strict = SimilarityAwareIndex(values, threshold=0.8)
        for value in values[:5]:
            lax_matches = {v for v, _ in lax.matches(value)}
            strict_matches = {v for v, _ in strict.matches(value)}
            assert strict_matches <= lax_matches
