"""White-box tests for merging internals: disagreement detection and the
interaction of REF with the entity store after merging."""

import pytest

from repro.core.config import SnapsConfig
from repro.core.dependency_graph import AtomicNode, DependencyGraph, RelationalNode
from repro.core.merging import _must_values_disagree
from repro.core.scoring import PairScorer
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


@pytest.fixture()
def ctx():
    records = [
        Record(1, 1, Role.BM, {"first_name": "mary", "surname": "ross",
                               "event_year": "1870"}, 1),
        Record(2, 2, Role.BM, {"first_name": "flora", "surname": "ross",
                               "event_year": "1872"}, 2),
        Record(3, 3, Role.BM, {"surname": "ross", "event_year": "1874"}, 3),
    ]
    certs = [
        Certificate(i, CertificateType.BIRTH, 1868 + 2 * i, "uig", {Role.BM: i})
        for i in (1, 2, 3)
    ]
    dataset = Dataset("mi", records, certs)
    config = SnapsConfig()
    graph = DependencyGraph(dataset)
    scorer = PairScorer(dataset, config)
    return dataset, config, graph, scorer


class TestMustValuesDisagree:
    def test_present_and_dissimilar_is_disagreement(self, ctx):
        dataset, config, graph, scorer = ctx
        node = RelationalNode(1, 2, (1, 2))
        graph.add_node(node)
        assert _must_values_disagree(graph, scorer, node, config)

    def test_atomic_node_means_agreement(self, ctx):
        dataset, config, graph, scorer = ctx
        node = RelationalNode(1, 2, (1, 2))
        node.atomic["first_name"] = AtomicNode("first_name", "mary", "mary", 1.0)
        graph.add_node(node)
        assert not _must_values_disagree(graph, scorer, node, config)

    def test_missing_value_is_not_disagreement(self, ctx):
        dataset, config, graph, scorer = ctx
        node = RelationalNode(1, 3, (1, 3))  # record 3 has no first name
        graph.add_node(node)
        assert not _must_values_disagree(graph, scorer, node, config)


class TestRefinementAfterMerge:
    def test_removed_record_can_remerge_correctly(self, tiny_dataset):
        """REF's contract: unmerged records return to the pool and can be
        linked again.  Simulate by removing a record from a resolved
        cluster and merging it back."""
        from repro.core import SnapsResolver

        result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        store = result.entities
        entity = next(iter(store.entities(min_size=3)), None)
        if entity is None:
            pytest.skip("no cluster of 3+")
        record_ids = sorted(entity.record_ids)
        victim = record_ids[0]
        partner = record_ids[1]
        store.remove_record(victim)
        assert not store.same_entity(victim, partner)
        store.merge(victim, partner)
        assert store.same_entity(victim, partner)
