"""Tests for the attribute schema (Must/Core/Extra)."""

import pytest

from repro.data.schema import AttributeCategory, AttributeSpec, Schema, default_schema


class TestSchema:
    def test_default_schema_structure(self):
        schema = default_schema()
        assert schema.names_in(AttributeCategory.MUST) == ["first_name"]
        assert schema.names_in(AttributeCategory.CORE) == ["surname"]
        assert "occupation" in schema.names_in(AttributeCategory.EXTRA)

    def test_default_weights_match_paper(self):
        schema = default_schema()
        assert schema.weight(AttributeCategory.MUST) == 0.5
        assert schema.weight(AttributeCategory.CORE) == 0.3
        assert schema.weight(AttributeCategory.EXTRA) == 0.2

    def test_category_lookup(self):
        schema = default_schema()
        assert schema.category("first_name") is AttributeCategory.MUST
        assert schema.category("nonexistent") is None

    def test_names_order_preserved(self):
        schema = Schema(
            attributes=(
                AttributeSpec("b", AttributeCategory.MUST),
                AttributeSpec("a", AttributeCategory.CORE),
            )
        )
        assert schema.names() == ["b", "a"]

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            Schema(attributes=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema(
                attributes=(
                    AttributeSpec("x", AttributeCategory.MUST),
                    AttributeSpec("x", AttributeCategory.CORE),
                )
            )

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Schema(
                attributes=(AttributeSpec("x", AttributeCategory.MUST),),
                weight_must=-0.1,
            )

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            Schema(
                attributes=(AttributeSpec("x", AttributeCategory.MUST),),
                weight_must=0.0,
                weight_core=0.0,
                weight_extra=0.0,
            )
