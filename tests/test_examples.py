"""Smoke tests for the example scripts.

The fast examples run end to end (their output is the documentation);
the heavier ones are compile-checked so doc rot still fails the suite.
"""

import py_compile
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


class TestFastExamples:
    def test_quickstart_runs(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "quickstart", EXAMPLES / "quickstart.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert "family pedigree of" in out
        assert "F*=" in out

    def test_anonymisation_demo_runs(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "anonymisation_demo", EXAMPLES / "anonymisation_demo.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        out = capsys.readouterr().out
        assert "anonymisation report" in out


class TestAllExamplesCompile:
    @pytest.mark.parametrize(
        "script",
        sorted(EXAMPLES.glob("*.py")),
        ids=lambda p: p.name,
    )
    def test_compiles(self, script, tmp_path):
        py_compile.compile(
            str(script), cfile=str(tmp_path / "out.pyc"), doraise=True
        )
