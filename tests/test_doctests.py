"""Run the doctests embedded in the library's docstrings.

The similarity and utility modules carry worked examples in their
docstrings; this keeps them honest.
"""

import doctest

import pytest

import repro.similarity.geo
import repro.similarity.jaccard
import repro.similarity.jaro
import repro.similarity.levenshtein
import repro.similarity.numeric
import repro.similarity.phonetic
import repro.similarity.qgram
import repro.utils.heaps
import repro.utils.timer
import repro.utils.union_find
import repro.data.roles
import repro.obs.metrics
import repro.obs.trace

_MODULES = [
    repro.similarity.levenshtein,
    repro.similarity.jaro,
    repro.similarity.qgram,
    repro.similarity.jaccard,
    repro.similarity.phonetic,
    repro.similarity.numeric,
    repro.similarity.geo,
    repro.utils.heaps,
    repro.utils.timer,
    repro.utils.union_find,
    repro.data.roles,
    repro.obs.metrics,
    repro.obs.trace,
]


@pytest.mark.parametrize("module", _MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, tests = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert tests > 0, f"{module.__name__} has no doctests"
    assert failures == 0
