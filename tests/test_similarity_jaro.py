"""Tests for Jaro and Jaro-Winkler similarity."""

import pytest

from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value_martha_marhta(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-4)

    def test_known_value_dwayne_duane(self):
        assert jaro_similarity("dwayne", "duane") == pytest.approx(0.8222, abs=1e-4)

    def test_no_common_characters(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty_vs_nonempty(self):
        assert jaro_similarity("", "abc") == 0.0
        assert jaro_similarity("abc", "") == 0.0

    def test_symmetry(self):
        assert jaro_similarity("catherine", "katherine") == jaro_similarity(
            "katherine", "catherine"
        )


class TestJaroWinkler:
    def test_prefix_boost(self):
        plain = jaro_similarity("macdonald", "macdonell")
        boosted = jaro_winkler_similarity("macdonald", "macdonell")
        assert boosted > plain

    def test_no_boost_without_common_prefix(self):
        assert jaro_winkler_similarity("xmith", "smith") == jaro_similarity(
            "xmith", "smith"
        )

    def test_bounded_by_one(self):
        assert jaro_winkler_similarity("aaaa", "aaab") <= 1.0

    def test_prefix_capped_at_four(self):
        # Identical 4-char and 6-char prefixes with same jaro should boost equally.
        s1 = jaro_winkler_similarity("abcdxx", "abcdyy")
        s2 = jaro_winkler_similarity("abcdexx", "abcdeyy")
        # Both have prefix >= 4, so boost factor uses 4 in both cases.
        assert s1 <= 1.0 and s2 <= 1.0

    def test_invalid_prefix_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.3)

    @pytest.mark.parametrize("pair", [("smith", "smith"), ("a", "a")])
    def test_identical_is_one(self, pair):
        assert jaro_winkler_similarity(*pair) == 1.0

    def test_typo_scores_high(self):
        assert jaro_winkler_similarity("catherine", "cathrine") > 0.9
