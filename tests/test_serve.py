"""Tests for the online serving subsystem (repro.serve)."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.query import Query, QueryEngine
from repro.serve import (
    AdmissionController,
    Deadline,
    LRUTTLCache,
    MISS,
    Rejected,
    ServeClient,
    ServeConfig,
    ServeError,
    ServingApp,
    make_server,
    query_cache_key,
)


@pytest.fixture()
def app(tiny_pedigree_graph):
    return ServingApp(tiny_pedigree_graph, ServeConfig())


def _named_entity(graph):
    return next(
        e for e in graph if e.first("first_name") and e.first("surname")
    )


# ----------------------------------------------------------------------
# Cache unit tests
# ----------------------------------------------------------------------


class TestLRUTTLCache:
    def test_hit_miss_counters(self):
        cache = LRUTTLCache(max_size=4, ttl_s=None)
        assert cache.get("a") is MISS
        cache.put("a", [1, 2])
        assert cache.get("a") == [1, 2]
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_falsy_values_are_cacheable(self):
        cache = LRUTTLCache(max_size=4, ttl_s=None)
        cache.put("empty", [])
        assert cache.get("empty") == []

    def test_lru_eviction_order(self):
        cache = LRUTTLCache(max_size=2, ttl_s=None)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a → b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        cache = LRUTTLCache(max_size=4, ttl_s=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        now[0] = 9.9
        assert cache.get("a") == 1
        now[0] = 10.1
        assert cache.get("a") is MISS
        assert cache.stats()["expirations"] == 1
        assert len(cache) == 0

    def test_zero_size_disables(self):
        cache = LRUTTLCache(max_size=0, ttl_s=None)
        cache.put("a", 1)
        assert cache.get("a") is MISS
        assert len(cache) == 0

    def test_metrics_mirroring(self):
        metrics = MetricsRegistry()
        cache = LRUTTLCache(max_size=1, ttl_s=None, metrics=metrics)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts a
        assert metrics.counter_value("serve.cache.misses") == 1
        assert metrics.counter_value("serve.cache.hits") == 1
        assert metrics.counter_value("serve.cache.evictions") == 1

    def test_thread_safety_smoke(self):
        cache = LRUTTLCache(max_size=64, ttl_s=None)

        def worker(seed):
            for i in range(300):
                key = (seed * i) % 100
                if cache.get(key) is MISS:
                    cache.put(key, key)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(1, 9)))
        assert len(cache) <= 64

    def test_query_key_normalisation(self):
        key_a = query_cache_key(Query(first_name=" Mary ", surname="MacDonald"), 10)
        key_b = query_cache_key(Query(first_name="mary", surname="macdonald"), 10)
        key_c = query_cache_key(Query(first_name="mary", surname="macdonald"), 5)
        assert key_a == key_b
        assert key_a != key_c

    def test_keep_stale_retains_expired_entries(self):
        now = [0.0]
        cache = LRUTTLCache(
            max_size=4, ttl_s=10.0, clock=lambda: now[0], keep_stale=True
        )
        cache.put("a", 1)
        now[0] = 11.0
        # Expired for get(), but the entry survives for degraded mode.
        assert cache.get("a") is MISS
        assert cache.stats()["expirations"] == 1
        assert len(cache) == 1
        value, age_s = cache.get_stale("a")
        assert value == 1 and age_s == pytest.approx(11.0)
        # Repeated expired gets count the expiration only once.
        assert cache.get("a") is MISS
        assert cache.stats()["expirations"] == 1

    def test_get_stale_counts_hits_and_misses(self):
        now = [0.0]
        cache = LRUTTLCache(
            max_size=4, ttl_s=10.0, clock=lambda: now[0], keep_stale=True
        )
        cache.put("a", 1)
        now[0] = 3.0
        value, age_s = cache.get_stale("a")  # works on fresh entries too
        assert value == 1 and age_s == pytest.approx(3.0)
        assert cache.get_stale("missing") is MISS
        assert cache.stats()["stale_hits"] == 1

    def test_without_keep_stale_expired_entries_vanish(self):
        now = [0.0]
        cache = LRUTTLCache(max_size=4, ttl_s=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        now[0] = 11.0
        assert cache.get("a") is MISS
        assert cache.get_stale("a") is MISS
        assert len(cache) == 0

    def test_bump_epoch_invalidates_without_keep_stale(self):
        cache = LRUTTLCache(max_size=4, ttl_s=None)
        cache.put("a", 1)
        cache.bump_epoch()
        assert cache.get("a") is MISS
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

    def test_bump_epoch_keeps_entries_for_stale_path(self):
        """After a snapshot swap, predecessor results must not come back
        as fresh hits — only via the explicit stale (Warning: 110) path."""
        now = [0.0]
        cache = LRUTTLCache(
            max_size=4, ttl_s=60.0, clock=lambda: now[0], keep_stale=True
        )
        cache.put("a", 1)
        cache.bump_epoch()
        now[0] = 2.0  # well within TTL: only the epoch expired it
        assert cache.get("a") is MISS
        value, age_s = cache.get_stale("a")
        assert value == 1 and age_s == pytest.approx(2.0)
        # Entries written after the bump are fresh again.
        cache.put("b", 2)
        assert cache.get("b") == 2

    def test_entries_written_after_bump_are_fresh(self):
        cache = LRUTTLCache(max_size=4, ttl_s=None)
        cache.bump_epoch()
        cache.put("a", 1)
        assert cache.get("a") == 1


# ----------------------------------------------------------------------
# Admission-control unit tests
# ----------------------------------------------------------------------


class TestAdmissionController:
    def test_rejects_when_queue_full(self):
        gate = AdmissionController(max_concurrency=1, max_pending=0,
                                   queue_timeout_s=0.05)
        release = threading.Event()
        occupied = threading.Event()

        def occupy():
            with gate.admit():
                occupied.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=occupy)
        thread.start()
        assert occupied.wait(timeout=5)
        with pytest.raises(Rejected) as rejected:
            with gate.admit():
                pass  # pragma: no cover - must not be admitted
        assert rejected.value.status == 429
        assert rejected.value.retry_after_s >= 1.0
        release.set()
        thread.join(timeout=5)
        # Slot released: admission works again.
        with gate.admit():
            pass

    def test_queue_timeout_yields_503(self):
        gate = AdmissionController(max_concurrency=1, max_pending=4,
                                   queue_timeout_s=0.05)
        release = threading.Event()
        occupied = threading.Event()

        def occupy():
            with gate.admit():
                occupied.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=occupy)
        thread.start()
        assert occupied.wait(timeout=5)
        with pytest.raises(Rejected) as rejected:
            with gate.admit():
                pass  # pragma: no cover
        assert rejected.value.status == 503
        release.set()
        thread.join(timeout=5)

    def test_expired_deadline_is_shed(self):
        gate = AdmissionController(max_concurrency=1, max_pending=4)
        with pytest.raises(Rejected) as rejected:
            with gate.admit(Deadline.after(-1.0)):
                pass  # pragma: no cover
        assert rejected.value.status == 503
        # The slot must have been released despite the rejection.
        with gate.admit():
            pass

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        gate = AdmissionController(max_concurrency=2, metrics=metrics)
        with gate.admit():
            pass
        assert metrics.counter_value("serve.admission.admitted") == 1

    def test_deadline_helpers(self):
        assert not Deadline.after(None).expired()
        assert Deadline.after(60).remaining() > 0
        assert Deadline.after(0).expired()

    def test_rejection_reasons_are_actionable(self):
        gate = AdmissionController(max_concurrency=1, max_pending=0,
                                   queue_timeout_s=0.05)
        release = threading.Event()
        occupied = threading.Event()

        def occupy():
            with gate.admit():
                occupied.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=occupy)
        thread.start()
        assert occupied.wait(timeout=5)
        try:
            with pytest.raises(Rejected) as rejected:
                with gate.admit():
                    pass  # pragma: no cover
            assert rejected.value.reason == "pending queue full"
            assert rejected.value.retry_after_s >= 1.0
        finally:
            release.set()
            thread.join(timeout=5)

    def test_deadline_expired_while_queued_reason(self):
        # The request's own deadline passed before a slot opened: shed it
        # with the queued-specific reason, not a generic timeout.
        gate = AdmissionController(max_concurrency=1, max_pending=4,
                                   queue_timeout_s=5.0)
        with pytest.raises(Rejected) as rejected:
            with gate.admit(Deadline.after(-0.1)):
                pass  # pragma: no cover
        assert rejected.value.status == 503
        assert "deadline expired" in rejected.value.reason
        assert rejected.value.retry_after_s >= 1.0

    def test_metrics_distinguish_rejection_kinds(self):
        metrics = MetricsRegistry()
        gate = AdmissionController(max_concurrency=1, max_pending=4,
                                   queue_timeout_s=1.0, metrics=metrics)
        with pytest.raises(Rejected):
            with gate.admit(Deadline.after(-0.1)):
                pass  # pragma: no cover
        assert metrics.counter_value("serve.admission.rejected_deadline") == 1


# ----------------------------------------------------------------------
# Route handling (no sockets)
# ----------------------------------------------------------------------


class TestRoutes:
    def test_healthz(self, app, tiny_pedigree_graph):
        response = app.handle("GET", "/healthz")
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "ok"
        assert payload["entities"] == len(tiny_pedigree_graph)

    def test_unknown_path_404(self, app):
        assert app.handle("GET", "/nope").status == 404

    def test_wrong_method_405(self, app):
        response = app.handle("GET", "/v1/search")
        assert response.status == 405
        assert response.headers["Allow"] == "POST"
        assert app.handle("POST", "/healthz").status == 405

    def test_search_matches_offline_engine(self, app, tiny_pedigree_graph):
        probe = _named_entity(tiny_pedigree_graph)
        first, surname = probe.first("first_name"), probe.first("surname")
        body = f'{{"first_name": "{first}", "surname": "{surname}", "top": 5}}'
        response = app.handle("POST", "/v1/search", body=body.encode())
        assert response.status == 200
        served = response.json()
        assert served["cached"] is False
        offline = QueryEngine(tiny_pedigree_graph).search(
            Query(first_name=first, surname=surname), top_m=5
        )
        assert [
            (m["entity"]["entity_id"], m["score_percent"])
            for m in served["matches"]
        ] == [(m.entity.entity_id, m.score_percent) for m in offline]

    def test_search_cache_hit_skips_search_span(self, app, tiny_pedigree_graph):
        probe = _named_entity(tiny_pedigree_graph)
        body = (
            f'{{"first_name": "{probe.first("first_name")}", '
            f'"surname": "{probe.first("surname")}"}}'
        ).encode()
        cold = app.handle("POST", "/v1/search", body=body)
        searches_after_cold = app.metrics.counter_value("query.searches")
        warm = app.handle("POST", "/v1/search", body=body)
        assert cold.json()["cached"] is False
        assert warm.json()["cached"] is True
        assert warm.json()["matches"] == cold.json()["matches"]
        # No new engine search ran, and the warm request's trace has a
        # cache_lookup span but no search span.
        assert app.metrics.counter_value("query.searches") == searches_after_cold
        assert app.metrics.counter_value("serve.cache.hits") == 1
        warm_trace = app.recent_traces[-1]
        assert warm_trace.find("cache_lookup") is not None
        assert warm_trace.find("search") is None

    @pytest.mark.parametrize("body,reason", [
        (b"not json", "valid JSON"),
        (b"[1, 2]", "JSON object"),
        (b'{"surname": "macdonald"}', "first_name"),
        (b'{"first_name": "", "surname": "x"}', "mandatory"),
        (b'{"first_name": "a", "surname": "b", "top": 0}', "top"),
        (b'{"first_name": "a", "surname": "b", "gender": "x"}', "gender"),
        (b'{"first_name": "a", "surname": "b", "year_from": "1880"}', "integer"),
        (b'{"first_name": "a", "surname": "b", "bogus": 1}', "unknown"),
        (None, "JSON"),
    ])
    def test_search_malformed_400(self, app, body, reason):
        response = app.handle("POST", "/v1/search", body=body)
        assert response.status == 400
        assert reason.lower() in response.json()["error"]["message"].lower()

    def test_pedigree_json(self, app, tiny_pedigree_graph):
        entity = _named_entity(tiny_pedigree_graph)
        response = app.handle(
            "GET", f"/v1/pedigree/{entity.entity_id}", {"generations": "2"}
        )
        assert response.status == 200
        payload = response.json()
        assert payload["root_id"] == entity.entity_id
        assert payload["count"] >= 1
        ids = {e["entity_id"] for e in payload["entities"]}
        assert entity.entity_id in ids
        for source, _rel, target in payload["edges"]:
            assert source in ids and target in ids

    @pytest.mark.parametrize("fmt,marker", [
        ("ascii", "==="), ("dot", "digraph"), ("gedcom", "0 HEAD"),
    ])
    def test_pedigree_text_formats(self, app, tiny_pedigree_graph, fmt, marker):
        entity = _named_entity(tiny_pedigree_graph)
        response = app.handle(
            "GET", f"/v1/pedigree/{entity.entity_id}", {"format": fmt}
        )
        assert response.status == 200
        assert marker in response.body.decode()

    def test_pedigree_errors(self, app):
        assert app.handle("GET", "/v1/pedigree/abc").status == 400
        assert app.handle("GET", "/v1/pedigree/5", {"generations": "99"}).status == 400
        assert app.handle("GET", "/v1/pedigree/5", {"format": "png"}).status == 400
        assert app.handle("GET", "/v1/pedigree/99999999").status == 404

    def test_metricz_text_and_json(self, app):
        app.handle("GET", "/healthz")
        text = app.handle("GET", "/metricz")
        assert text.status == 200
        assert text.content_type.startswith("text/plain")
        assert "serve.requests" in text.body.decode()
        as_json = app.handle("GET", "/metricz", {"format": "json"})
        payload = as_json.json()
        assert payload["counters"]["serve.requests"] >= 2
        assert "serve.cache.size" in payload["gauges"]

    def test_endpoint_latency_histograms(self, app, tiny_pedigree_graph):
        probe = _named_entity(tiny_pedigree_graph)
        body = (
            f'{{"first_name": "{probe.first("first_name")}", '
            f'"surname": "{probe.first("surname")}"}}'
        ).encode()
        app.handle("GET", "/healthz")
        app.handle("POST", "/v1/search", body=body)
        app.handle("GET", f"/v1/pedigree/{probe.entity_id}")
        snapshot = app.metrics.as_dict()["histograms"]
        for endpoint in ("healthz", "search", "pedigree"):
            assert snapshot[f"serve.{endpoint}.latency_seconds"]["count"] == 1

    def test_admission_rejection_over_http_route(self, app, tiny_pedigree_graph):
        """Saturating a 1-slot gate returns 429/503, never a hang.

        The two concurrent requests must be *distinct* queries: an
        identical duplicate would be coalesced by SingleFlight into the
        occupant's computation (sharing its 200) before ever reaching
        admission control — that dedup path has its own test below.
        """
        probe = _named_entity(tiny_pedigree_graph)
        config = ServeConfig(max_concurrency=1, max_pending=0, queue_timeout_s=0.05)
        slow_app = ServingApp(tiny_pedigree_graph, config)
        real_search = slow_app.engine.search
        started = threading.Event()

        def slow_search(query, top_m=10):
            started.set()
            time.sleep(0.5)
            return real_search(query, top_m=top_m)

        slow_app.engine.search = slow_search
        body = (
            f'{{"first_name": "{probe.first("first_name")}", '
            f'"surname": "{probe.first("surname")}"}}'
        ).encode()
        other_body = (
            f'{{"first_name": "{probe.first("first_name")}", '
            f'"surname": "{probe.first("surname")}", "top": 3}}'
        ).encode()

        def request(payload):
            return slow_app.handle("POST", "/v1/search", body=payload)

        with ThreadPoolExecutor(max_workers=2) as pool:
            occupant = pool.submit(request, body)
            assert started.wait(timeout=5)
            blocked = pool.submit(request, other_body)
            rejected = blocked.result(timeout=5)
            assert rejected.status in (429, 503)
            assert int(rejected.headers["Retry-After"]) >= 1
            assert occupant.result(timeout=5).status == 200

    def test_identical_inflight_requests_coalesce(self, tiny_pedigree_graph):
        """An identical concurrent duplicate shares the occupant's
        computation instead of burning the saturated admission slot."""
        probe = _named_entity(tiny_pedigree_graph)
        config = ServeConfig(
            max_concurrency=1, max_pending=0, queue_timeout_s=0.05,
            cache_size=0,
        )
        slow_app = ServingApp(tiny_pedigree_graph, config)
        real_search = slow_app.engine.search
        started = threading.Event()
        searches = []

        def slow_search(query, top_m=10):
            searches.append(1)
            started.set()
            time.sleep(0.5)
            return real_search(query, top_m=top_m)

        slow_app.engine.search = slow_search
        body = (
            f'{{"first_name": "{probe.first("first_name")}", '
            f'"surname": "{probe.first("surname")}"}}'
        ).encode()

        def request():
            return slow_app.handle("POST", "/v1/search", body=body)

        with ThreadPoolExecutor(max_workers=2) as pool:
            leader = pool.submit(request)
            assert started.wait(timeout=5)
            follower = pool.submit(request)
            assert follower.result(timeout=5).status == 200
            assert leader.result(timeout=5).status == 200
        assert searches == [1], "duplicate must not run a second search"
        assert slow_app.flights.stats()["followers"] == 1


# ----------------------------------------------------------------------
# End-to-end over real sockets
# ----------------------------------------------------------------------


@pytest.fixture()
def running_server(tiny_pedigree_graph):
    app = ServingApp(tiny_pedigree_graph, ServeConfig(max_concurrency=4))
    server = make_server(app, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield app, ServeClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestEndToEnd:
    def test_concurrent_clients_smoke(self, running_server, tiny_pedigree_graph):
        app, client = running_server
        assert client.healthz()["status"] == "ok"
        named = [
            e for e in tiny_pedigree_graph
            if e.first("first_name") and e.first("surname")
        ][:8]

        def worker(entity):
            result = client.search(
                entity.first("first_name"), entity.first("surname"), top=3
            )
            assert result["count"] >= 1
            found = client.pedigree(result["matches"][0]["entity"]["entity_id"])
            assert found["count"] >= 1
            return result["count"]

        with ThreadPoolExecutor(max_workers=4) as pool:
            counts = list(pool.map(worker, named))
        assert len(counts) == len(named)
        metrics = client.metricz()
        assert metrics["counters"]["serve.requests"] >= 2 * len(named) + 1
        assert metrics["counters"]["serve.responses.2xx"] >= 2 * len(named)

    def test_http_error_paths(self, running_server):
        _, client = running_server
        with pytest.raises(ServeError) as error:
            client.search("", "")
        assert error.value.status == 400
        with pytest.raises(ServeError) as error:
            client.pedigree(99999999)
        assert error.value.status == 404
        with pytest.raises(ServeError) as error:
            client._json("GET", "/bogus")
        assert error.value.status == 404

    def test_served_cache_round_trip(self, running_server, tiny_pedigree_graph):
        _, client = running_server
        probe = _named_entity(tiny_pedigree_graph)
        first, surname = probe.first("first_name"), probe.first("surname")
        cold = client.search(first, surname)
        warm = client.search(first, surname)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["matches"] == cold["matches"]


# ----------------------------------------------------------------------
# Client reload wrapper (promotion path)
# ----------------------------------------------------------------------


class TestClientReload:
    def _client_with_script(self, monkeypatch, outcomes):
        """ServeClient whose _json pops scripted outcomes (exc or dict)."""
        client = ServeClient("http://127.0.0.1:1")
        calls = []

        def scripted(method, path, payload=None):
            calls.append((method, path, payload))
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        monkeypatch.setattr(client, "_json", scripted)
        return client, calls

    def test_reload_posts_snapshot_body(self, monkeypatch):
        client, calls = self._client_with_script(
            monkeypatch, [{"status": "reloaded"}]
        )
        client.reload("abc123")
        assert calls == [("POST", "/v1/reload", {"snapshot": "abc123"})]

    def test_reload_without_id_sends_empty_body(self, monkeypatch):
        client, calls = self._client_with_script(
            monkeypatch, [{"status": "reloaded"}]
        )
        client.reload()
        assert calls == [("POST", "/v1/reload", {})]

    def test_retry_policy_retries_transient_statuses(self, monkeypatch):
        from repro.faults import RetryPolicy

        client, calls = self._client_with_script(
            monkeypatch,
            [ServeError(503, "replica busy"), {"status": "reloaded", "snapshot": "x"}],
        )
        result = client.reload(
            "x", retry=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        )
        assert result["status"] == "reloaded"
        assert len(calls) == 2

    def test_retry_policy_does_not_retry_rejections(self, monkeypatch):
        from repro.faults import RetryPolicy

        client, calls = self._client_with_script(
            monkeypatch, [ServeError(400, "bad body"), {"status": "reloaded"}]
        )
        with pytest.raises(ServeError) as error:
            client.reload(
                "x", retry=RetryPolicy(max_attempts=3, base_delay_s=0.0)
            )
        assert error.value.status == 400
        assert len(calls) == 1  # permanent: no second attempt

    def test_serve_error_categories(self):
        from repro.faults import PERMANENT, TRANSIENT, classify

        assert classify(ServeError(503, "overloaded")) == TRANSIENT
        assert classify(ServeError(429, "shed")) == TRANSIENT
        assert classify(ServeError(404, "missing")) == PERMANENT
        assert classify(ServeError(400, "bad")) == PERMANENT


# ----------------------------------------------------------------------
# Concurrent QueryEngine searches (the thread-safety audit's contract)
# ----------------------------------------------------------------------


class TestConcurrentSearch:
    def test_parallel_searches_match_serial(self, tiny_pedigree_graph):
        engine = QueryEngine(tiny_pedigree_graph)
        named = [
            e for e in tiny_pedigree_graph
            if e.first("first_name") and e.first("surname")
        ][:12]
        # Misspell some surnames so the simindex query-time cache (the
        # one mutable structure) is exercised concurrently.
        queries = []
        for i, entity in enumerate(named):
            surname = entity.first("surname")
            if i % 2 and len(surname) > 4:
                surname = surname[:2] + surname[3:]
            queries.append(
                Query(first_name=entity.first("first_name"), surname=surname)
            )
        serial = [
            [(m.entity.entity_id, m.score_percent) for m in engine.search(q)]
            for q in queries
        ]
        for _ in range(3):
            with ThreadPoolExecutor(max_workers=6) as pool:
                parallel = list(
                    pool.map(
                        lambda q: [
                            (m.entity.entity_id, m.score_percent)
                            for m in engine.search(q)
                        ],
                        queries,
                    )
                )
            assert parallel == serial


# ----------------------------------------------------------------------
# Snapshot warm start (repro.store)
# ----------------------------------------------------------------------


class TestSnapshotWarmStart:
    """A snapshot-booted server must be indistinguishable from a cold one."""

    @pytest.fixture(scope="class")
    def warm_parts(self, tmp_path_factory, resolved_tiny):
        from repro.store import SnapshotStore

        store = SnapshotStore(tmp_path_factory.mktemp("servestore"))
        store.save(resolved_tiny)
        loaded = store.load(artifacts=("graph", "indexes"))
        return loaded.graph, loaded.keyword_index, loaded.sim_index

    @pytest.fixture()
    def warm_app(self, warm_parts):
        graph, keyword_index, sim_index = warm_parts
        return ServingApp(
            graph, ServeConfig(), keyword_index=keyword_index, sim_index=sim_index
        )

    def test_search_payload_byte_identical(
        self, app, warm_app, tiny_pedigree_graph
    ):
        probe = _named_entity(tiny_pedigree_graph)
        bodies = [
            (
                f'{{"first_name": "{probe.first("first_name")}", '
                f'"surname": "{probe.first("surname")}", "top": 5}}'
            ).encode(),
            b'{"first_name": "jon", "surname": "macdonld", "top": 10}',
            b'{"first_name": "mary", "surname": "mackenzie",'
            b' "year_from": 1860, "year_to": 1900}',
        ]
        for body in bodies:
            cold = app.handle("POST", "/v1/search", body=body)
            warm = warm_app.handle("POST", "/v1/search", body=body)
            assert cold.status == warm.status == 200
            assert cold.body == warm.body

    def test_pedigree_payload_byte_identical(
        self, app, warm_app, tiny_pedigree_graph
    ):
        probe = _named_entity(tiny_pedigree_graph)
        for fmt in ("json", "ascii", "gedcom"):
            path = f"/v1/pedigree/{probe.entity_id}"
            params = {"generations": "2", "format": fmt}
            cold = app.handle("GET", path, params)
            warm = warm_app.handle("GET", path, params)
            assert cold.status == warm.status == 200
            assert cold.body == warm.body

    def test_warm_boot_builds_no_indexes(self, warm_parts, monkeypatch):
        """Booting from a snapshot must not construct K or S at all."""
        from repro.index.keyword import KeywordIndex
        from repro.index.simindex import SimilarityAwareIndex

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("index construction during warm boot")

        monkeypatch.setattr(KeywordIndex, "__init__", forbidden)
        monkeypatch.setattr(SimilarityAwareIndex, "__init__", forbidden)
        graph, keyword_index, sim_index = warm_parts
        warm = ServingApp(
            graph, ServeConfig(), keyword_index=keyword_index, sim_index=sim_index
        )
        assert warm.handle("GET", "/healthz").status == 200


# ----------------------------------------------------------------------
# SLO monitor + Prometheus exposition
# ----------------------------------------------------------------------


class _Clock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestSloMonitor:
    def _monitor(self, metrics=None, **objectives):
        from repro.serve.slo import SloMonitor, SloObjectives

        clock = _Clock()
        return clock, SloMonitor(
            SloObjectives(window_s=30.0, **objectives),
            clock=clock,
            metrics=metrics,
        )

    def test_objective_validation(self):
        from repro.serve.slo import SloMonitor, SloObjectives

        with pytest.raises(ValueError):
            SloObjectives(availability=1.5)
        with pytest.raises(ValueError):
            SloObjectives(latency_deadline_s=0.0)
        with pytest.raises(ValueError):
            SloMonitor(buckets=1)

    def test_healthy_traffic_has_zero_burn(self):
        _, monitor = self._monitor()
        for _ in range(10):
            monitor.record("search", 200, 0.01)
        snap = monitor.snapshot()
        assert snap["availability"] == 1.0
        assert snap["availability_burn_rate"] == 0.0
        assert snap["latency_attainment"] == 1.0
        assert snap["window_requests"] == 10

    def test_burn_event_fires_and_recovers(self):
        metrics = MetricsRegistry()
        clock, monitor = self._monitor(metrics=metrics)
        for _ in range(9):
            monitor.record("search", 200, 0.01)
        monitor.record("search", 500, 0.01)
        snap = monitor.snapshot()
        assert snap["availability"] == pytest.approx(0.9)
        assert snap["availability_burn_rate"] > 1.0
        burn = [e for e in monitor.events if e["kind"] == "burn"]
        assert burn[-1]["objective"] == "availability"
        assert burn[-1]["breached"] is True
        # Errors age out of the rolling window: burn clears, with a
        # recovery event on the crossing back under 1.0.
        clock.now += 31.0
        monitor.record("search", 200, 0.01)
        assert monitor.snapshot()["availability"] == 1.0
        burn = [e for e in monitor.events if e["kind"] == "burn"]
        assert burn[-1]["breached"] is False
        assert metrics.counter_value("serve.slo.events") == len(monitor.events)

    def test_latency_objective_skips_ineligible_endpoints(self):
        _, monitor = self._monitor(latency_deadline_s=0.1)
        monitor.record("healthz", 200, 5.0, latency_eligible=False)
        assert monitor.snapshot()["latency_attainment"] == 1.0
        monitor.record("search", 200, 5.0)
        snap = monitor.snapshot()
        assert snap["latency_attainment"] == 0.0
        assert snap["latency_burn_rate"] > 1.0
        assert snap["availability"] == 1.0  # slow but not erroring

    def test_health_transitions_become_events(self):
        _, monitor = self._monitor()
        monitor.note_health("ok")  # no transition, no event
        assert not monitor.events
        monitor.note_health("degraded")
        monitor.note_health("degraded")  # steady state, still one event
        monitor.note_health("ok")
        health = [e for e in monitor.events if e["kind"] == "health"]
        assert [(e["from"], e["to"]) for e in health] == [
            ("ok", "degraded"), ("degraded", "ok"),
        ]

    def test_publish_writes_gauges(self):
        registry = MetricsRegistry()
        _, monitor = self._monitor()
        monitor.record("search", 200, 0.01)
        monitor.note_health("degraded")
        monitor.publish(registry)
        gauges = registry.as_dict()["gauges"]
        assert gauges["serve.slo.availability"] == 1.0
        assert gauges["serve.slo.degraded"] == 1.0
        for name in ("availability_burn_rate", "latency_attainment",
                     "latency_burn_rate"):
            assert f"serve.slo.{name}" in gauges


class TestPromAndSloRoutes:
    def test_healthz_carries_slo_snapshot(self, app):
        payload = app.handle("GET", "/healthz").json()
        slo = payload["slo"]
        assert slo["health"] == "ok"
        assert slo["objectives"]["availability"] == 0.999
        assert slo["objectives"]["latency_deadline_s"] == 0.5
        assert "availability_burn_rate" in slo
        assert "latency_burn_rate" in slo
        assert isinstance(slo["events"], list)

    def test_metricz_prom_parses_with_checker(self, app, tiny_pedigree_graph):
        from repro.obs.prom import check_exposition

        probe = _named_entity(tiny_pedigree_graph)
        body = (
            f'{{"first_name": "{probe.first("first_name")}", '
            f'"surname": "{probe.first("surname")}"}}'
        ).encode()
        app.handle("GET", "/healthz")
        app.handle("POST", "/v1/search", body=body)
        response = app.handle("GET", "/metricz", {"format": "prom"})
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        families = check_exposition(response.body.decode())
        # Latency histogram with the shared quantile companion family.
        search = families["snaps_serve_search_latency_seconds"]
        assert search["type"] == "histogram"
        assert "snaps_serve_search_latency_seconds_quantile" in families
        # SLO gauges, process gauges, and the identity info series.
        for family in (
            "snaps_serve_slo_availability",
            "snaps_serve_slo_latency_burn_rate",
            "snaps_serve_slo_degraded",
            "snaps_process_rss_bytes",
            "snaps_process_open_fds",
            "snaps_serve_requests_total",
        ):
            assert family in families, family
        (sample,) = families["snaps_info"]["samples"]
        assert sample[1]["service"] == "snaps-serve"

    def test_slo_degrades_with_breaker(self, tiny_pedigree_graph):
        """A tripping breaker flips health; the SLO monitor records the
        degraded-mode entry as an event and the degraded gauge goes 1."""
        config = ServeConfig(breaker_threshold=2, breaker_reset_s=60.0)
        app = ServingApp(tiny_pedigree_graph, config)

        def explode(query, top_m=10):
            raise RuntimeError("backend down")

        app.engine.search = explode
        body = b'{"first_name": "mary", "surname": "macdonald"}'
        for _ in range(3):
            assert app.handle("POST", "/v1/search", body=body).status >= 500
        payload = app.handle("GET", "/healthz").json()
        assert payload["status"] != "ok"
        assert payload["slo"]["health"] != "ok"
        kinds = {e["kind"] for e in app.slo.events}
        assert "health" in kinds
        app.handle("GET", "/metricz", {"format": "json"})
        assert app.metrics.gauges["serve.slo.degraded"].value == 1.0
        assert app.metrics.counter_value("serve.slo.events") >= 1
