"""Tests for edit-distance comparators."""

import pytest

from repro.similarity.levenshtein import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    levenshtein_similarity,
)


class TestLevenshteinDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("", "abc", 3),
            ("abc", "", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("a", "b", 1),
            ("macdonald", "mcdonald", 1),
            ("smith", "smyth", 1),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    def test_symmetry(self):
        assert levenshtein_distance("john", "jon") == levenshtein_distance(
            "jon", "john"
        )

    def test_triangle_inequality(self):
        words = ("mary", "marry", "maire", "moira")
        for a in words:
            for b in words:
                for c in words:
                    assert levenshtein_distance(a, c) <= levenshtein_distance(
                        a, b
                    ) + levenshtein_distance(b, c)


class TestDamerauLevenshtein:
    def test_transposition_counts_once(self):
        assert damerau_levenshtein_distance("jonh", "john") == 1
        assert levenshtein_distance("jonh", "john") == 2

    @pytest.mark.parametrize(
        "a,b,expected",
        [("", "", 0), ("ca", "ac", 1), ("abc", "abc", 0), ("", "ab", 2)],
    )
    def test_known(self, a, b, expected):
        assert damerau_levenshtein_distance(a, b) == expected

    def test_never_exceeds_levenshtein(self):
        pairs = [("mary", "army"), ("donald", "dnoald"), ("x", "yx")]
        for a, b in pairs:
            assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)


class TestLevenshteinSimilarity:
    def test_identical_is_one(self):
        assert levenshtein_similarity("smith", "smith") == 1.0

    def test_both_empty_is_one(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_disjoint_is_zero(self):
        assert levenshtein_similarity("abc", "xyz") == 0.0

    def test_range(self):
        assert 0.0 < levenshtein_similarity("catherine", "cathrine") < 1.0
