"""Hypothesis property tests for core data structures.

Union-find, TopK, the updatable priority queue, MinHash, and the entity
store are each checked against a trivial reference implementation on
random operation sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.minhash import MinHasher
from repro.utils.heaps import TopK, UpdatablePriorityQueue
from repro.utils.union_find import UnionFind


class TestUnionFindModel:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40
        )
    )
    def test_matches_naive_partition(self, ops):
        uf = UnionFind(range(16))
        # Reference: explicit set partition.
        partition = {i: {i} for i in range(16)}

        def find_set(x):
            for s in set(map(frozenset, partition.values())):
                if x in s:
                    return s
            raise AssertionError

        for a, b in ops:
            uf.union(a, b)
            sa, sb = find_set(a), find_set(b)
            merged = sa | sb
            for member in merged:
                partition[member] = set(merged)
        for a in range(16):
            for b in range(16):
                assert uf.connected(a, b) == (b in partition[a])

    @given(ops=st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)),
                        max_size=30))
    def test_sizes_sum_to_total(self, ops):
        uf = UnionFind(range(11))
        for a, b in ops:
            uf.union(a, b)
        roots = {uf.find(i) for i in range(11)}
        assert sum(uf.size(r) for r in roots) == 11


class TestTopKModel:
    @given(
        items=st.lists(st.tuples(st.floats(0, 1, allow_nan=False),
                                 st.integers()), max_size=50),
        k=st.integers(1, 10),
    )
    def test_matches_sorted_reference(self, items, k):
        top = TopK(k)
        for score, item in items:
            top.push(score, item)
        got_scores = [s for s, _ in top.items()]
        expected = sorted((s for s, _ in items), reverse=True)[:k]
        assert got_scores == expected


class TestPriorityQueueModel:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from("push remove".split()),
                      st.integers(0, 8), st.integers(0, 100)),
            max_size=40,
        )
    )
    def test_pops_in_descending_priority(self, ops):
        q = UpdatablePriorityQueue()
        model = {}
        for op, key, priority in ops:
            if op == "push":
                q.push(key, priority)
                model[key] = priority
            else:
                q.remove(key)
                model.pop(key, None)
        assert len(q) == len(model)
        drained = []
        while q:
            drained.append(q.pop())
        assert sorted(model.items()) == sorted((k, p) for k, p in drained)
        priorities = [p for _, p in drained]
        assert priorities == sorted(priorities, reverse=True)


class TestMinHashEstimate:
    @given(
        a=st.text(alphabet="abcdef", min_size=3, max_size=12),
        b=st.text(alphabet="abcdef", min_size=3, max_size=12),
    )
    @settings(max_examples=40)
    def test_estimate_close_to_true_jaccard(self, a, b):
        from repro.similarity.qgram import bigrams
        from repro.similarity.jaccard import jaccard_similarity

        hasher = MinHasher(n_hashes=512, seed=3)
        estimate = hasher.estimate_jaccard(hasher.signature(a), hasher.signature(b))
        true = jaccard_similarity(bigrams(a), bigrams(b))
        assert abs(estimate - true) < 0.2  # 512 hashes → s.e. ≈ 0.022

    @given(a=st.text(alphabet="abcdef", min_size=2, max_size=12))
    def test_estimate_identity(self, a):
        hasher = MinHasher(n_hashes=64, seed=4)
        sig = hasher.signature(a)
        assert hasher.estimate_jaccard(sig, sig) == 1.0
