"""Tests for the comparator registry and name similarity."""

import pytest

from repro.similarity.registry import (
    ComparatorRegistry,
    default_registry,
    name_similarity,
)


class TestComparatorRegistry:
    def test_registered_comparator_used(self):
        registry = ComparatorRegistry()
        registry.register("x", lambda a, b: 0.42)
        assert registry.compare("x", "foo", "bar") == 0.42

    def test_default_fallback(self):
        registry = ComparatorRegistry(default=lambda a, b: 0.1)
        assert registry.compare("unknown_attr", "a", "b") == 0.1

    def test_missing_values_return_none(self):
        registry = default_registry()
        assert registry.compare("first_name", None, "mary") is None
        assert registry.compare("first_name", "mary", "") is None
        assert registry.compare("first_name", "", "") is None

    def test_gender_exact(self):
        registry = default_registry()
        assert registry.compare("gender", "m", "m") == 1.0
        assert registry.compare("gender", "m", "f") == 0.0

    def test_year_comparator(self):
        registry = default_registry()
        assert registry.compare("event_year", "1880", "1880") == 1.0
        assert registry.compare("event_year", "1880", "1980") == 0.0
        mid = registry.compare("event_year", "1880", "1881")
        assert 0.0 < mid < 1.0

    def test_year_comparator_handles_garbage(self):
        registry = default_registry()
        assert registry.compare("event_year", "abc", "1880") == 0.0

    def test_address_uses_token_overlap(self):
        registry = default_registry()
        full = registry.compare("address", "5 high street portree", "5 high street portree")
        partial = registry.compare("address", "5 high street", "9 high street")
        assert full == 1.0
        assert 0.0 < partial < 1.0


class TestNameSimilarity:
    def test_identical(self):
        assert name_similarity("mary", "mary") == 1.0

    def test_documented_variants_score_high(self):
        assert name_similarity("effie", "euphemia") >= 0.9
        assert name_similarity("maggie", "margaret") >= 0.9
        assert name_similarity("mcdonald", "macdonald") >= 0.9

    def test_unrelated_names_stay_low(self):
        assert name_similarity("mary", "donald") < 0.6

    def test_raw_exact_beats_variant(self):
        assert name_similarity("effie", "effie") > name_similarity("effie", "euphemia")

    def test_symmetry(self):
        assert name_similarity("jessie", "janet") == name_similarity("janet", "jessie")
