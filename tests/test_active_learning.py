"""Tests for the active-learning feedback loop."""

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.core.active_learning import ActiveLearningLoop
from repro.eval import evaluate_linkage


@pytest.fixture(scope="module")
def loop_ctx(tiny_dataset):
    result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
    return tiny_dataset, result


def _truth_oracle(dataset):
    def oracle(rid_a, rid_b):
        return dataset.record(rid_a).person_id == dataset.record(rid_b).person_id

    return oracle


class TestUncertaintySampling:
    def test_pairs_near_threshold(self, loop_ctx):
        dataset, result = loop_ctx
        loop = ActiveLearningLoop(result)
        pairs = loop.uncertain_pairs(k=10)
        assert len(pairs) <= 10
        threshold = loop.config.merge_threshold
        for pair in pairs:
            node = result.graph.nodes[pair]
            similarity = loop._scorer.atomic_similarity(node)
            assert abs(similarity - threshold) < 0.15

    def test_sorted_by_informativeness(self, loop_ctx):
        dataset, result = loop_ctx
        loop = ActiveLearningLoop(result)
        pairs = loop.uncertain_pairs(k=10)
        threshold = loop.config.merge_threshold
        distances = [
            abs(loop._scorer.atomic_similarity(result.graph.nodes[p]) - threshold)
            for p in pairs
        ]
        assert distances == sorted(distances)

    def test_k_validation(self, loop_ctx):
        _, result = loop_ctx
        with pytest.raises(ValueError):
            ActiveLearningLoop(result).uncertain_pairs(k=0)

    def test_answered_pairs_excluded(self, loop_ctx):
        dataset, result = loop_ctx
        loop = ActiveLearningLoop(result)
        first = loop.uncertain_pairs(k=3)
        if not first:
            pytest.skip("no uncertain pairs")
        loop.ask(first, _truth_oracle(dataset))
        second = loop.uncertain_pairs(k=10)
        assert not (set(first) & set(second))


class TestLoop:
    def test_full_loop_improves_or_preserves_quality(self, tiny_dataset):
        result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        truth = tiny_dataset.true_match_pairs("Bp-Bp")
        before = evaluate_linkage(result.matched_pairs("Bp-Bp"), truth).f_star
        loop = ActiveLearningLoop(result)
        outcomes = loop.run(
            _truth_oracle(tiny_dataset), rounds=2, questions_per_round=15
        )
        from repro.data.roles import PARENT_ROLE_GROUPS

        after_pairs = loop.session.store.matched_pairs(
            PARENT_ROLE_GROUPS["Bp"], PARENT_ROLE_GROUPS["Bp"]
        )
        after = evaluate_linkage(after_pairs, truth).f_star
        assert after >= before - 1.0
        assert outcomes, "the loop should have asked something"

    def test_outcome_accounting(self, tiny_dataset):
        result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        loop = ActiveLearningLoop(result)
        pairs = loop.uncertain_pairs(k=8)
        if not pairs:
            pytest.skip("no uncertain pairs")
        outcome = loop.ask(pairs, _truth_oracle(tiny_dataset))
        assert outcome.confirmed + outcome.rejected + outcome.skipped == len(pairs)

    def test_rejections_stick_after_remerge(self, tiny_dataset):
        result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        loop = ActiveLearningLoop(result)
        pairs = loop.uncertain_pairs(k=15)
        outcome = loop.ask(pairs, _truth_oracle(tiny_dataset))
        loop.remerge()
        for rid_a, rid_b in loop.session.rejected:
            assert not loop.session.store.same_entity(rid_a, rid_b)

    def test_oracle_exceptions_do_not_corrupt_session(self, tiny_dataset):
        result = SnapsResolver(SnapsConfig()).resolve(tiny_dataset)
        loop = ActiveLearningLoop(result)
        pairs = loop.uncertain_pairs(k=5)
        if not pairs:
            pytest.skip("no uncertain pairs")

        # An oracle that wrongly confirms everything: impossible pairs are
        # skipped rather than crashing.
        outcome = loop.ask(pairs, lambda a, b: True)
        assert outcome.confirmed + outcome.skipped == len(pairs)
