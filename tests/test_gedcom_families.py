"""Deeper GEDCOM structure tests: family reconstruction correctness."""

import re

import pytest

from repro.pedigree import extract_pedigree, render_gedcom
from repro.pedigree.gedcom import _families
from repro.pedigree.graph import FATHER_OF, MOTHER_OF


@pytest.fixture(scope="module")
def pedigree(tiny_pedigree_graph):
    for entity in tiny_pedigree_graph:
        if (
            len(tiny_pedigree_graph.children(entity.entity_id)) >= 2
            and tiny_pedigree_graph.spouses(entity.entity_id)
        ):
            return extract_pedigree(tiny_pedigree_graph, entity.entity_id, 2)
    pytest.skip("no suitable family")


class TestFamilyReconstruction:
    def test_children_grouped_under_one_family_per_couple(self, pedigree):
        families = _families(pedigree)
        seen_children = set()
        for _, _, children in families:
            for child in children:
                assert child not in seen_children, "child in two families"
                seen_children.add(child)

    def test_family_parents_match_edges(self, pedigree):
        father_of = {
            target: source
            for source, rel, target in pedigree.edges
            if rel == FATHER_OF
        }
        mother_of = {
            target: source
            for source, rel, target in pedigree.edges
            if rel == MOTHER_OF
        }
        for father, mother, children in _families(pedigree):
            for child in children:
                if child in father_of:
                    assert father_of[child] == father
                if child in mother_of:
                    assert mother_of[child] == mother

    def test_gedcom_cross_references_consistent(self, pedigree):
        """Every FAMS/FAMC pointer must reference a FAM record that in
        turn points back at the individual."""
        text = render_gedcom(pedigree)
        # Parse a minimal model of the GEDCOM output.
        indi_blocks: dict[str, list[str]] = {}
        fam_blocks: dict[str, list[str]] = {}
        current = None
        bucket = None
        for line in text.splitlines():
            match = re.match(r"0 (@[IF]\d+@) (INDI|FAM)", line)
            if match:
                current = match.group(1)
                bucket = indi_blocks if match.group(2) == "INDI" else fam_blocks
                bucket[current] = []
            elif line.startswith("0 "):
                current = None
            elif current is not None:
                bucket[current].append(line)
        for indi, lines in indi_blocks.items():
            for line in lines:
                if line.startswith("1 FAMS "):
                    fam = line.split()[-1]
                    members = " ".join(fam_blocks[fam])
                    assert indi in members
                if line.startswith("1 FAMC "):
                    fam = line.split()[-1]
                    assert f"1 CHIL {indi}" in fam_blocks[fam]
        for fam, lines in fam_blocks.items():
            for line in lines:
                if line.startswith(("1 HUSB", "1 WIFE", "1 CHIL")):
                    assert line.split()[-1] in indi_blocks
