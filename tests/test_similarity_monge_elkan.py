"""Tests for Monge-Elkan multi-token name similarity."""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.monge_elkan import monge_elkan_similarity

phrases = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    min_size=0, max_size=4,
).map(" ".join)


class TestMongeElkan:
    def test_token_order_invariant(self):
        assert monge_elkan_similarity("mary ann", "ann mary") == 1.0

    def test_subset_scores_high(self):
        whole = monge_elkan_similarity("margaret kate", "margaret")
        plain = jaro_winkler_similarity("margaret kate", "margaret")
        assert whole > 0.85
        assert whole > plain - 0.1

    def test_single_tokens_equal_inner(self):
        assert monge_elkan_similarity("catherine", "cathrine") == (
            jaro_winkler_similarity("catherine", "cathrine")
        )

    def test_both_empty(self):
        assert monge_elkan_similarity("", "") == 1.0

    def test_one_empty(self):
        assert monge_elkan_similarity("mary", "") == 0.0

    def test_unrelated_low(self):
        assert monge_elkan_similarity("mary ann", "donald hugh") < 0.6

    def test_custom_inner(self):
        exact = lambda a, b: 1.0 if a == b else 0.0
        assert monge_elkan_similarity("mary ann", "mary jane", inner=exact) == 0.5

    @given(a=phrases, b=phrases)
    def test_range_and_symmetry(self, a, b):
        s = monge_elkan_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(monge_elkan_similarity(b, a))

    @given(a=phrases)
    def test_identity(self, a):
        assert monge_elkan_similarity(a, a) == 1.0
