"""Pre-fork serving tier: coalescing, fleet metrics, fork-safe caching.

Unit coverage for the pieces :mod:`repro.serve.prefork` composes —
:class:`~repro.serve.coalesce.SingleFlight` leader/follower semantics,
``merge_metric_snapshots`` fleet aggregation, the snapshot-token cache
binding that survives ``fork`` — plus one live single-worker fleet boot
over a real socket.  The heavier failure drills (kill a worker under
traffic, zero-downtime reload rotation) run in
``python -m repro.serve.prefork_smoke`` via ``make prefork-smoke``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.request

import pytest

from repro.core import SnapsConfig
from repro.obs import MetricsRegistry
from repro.serve import (
    LRUTTLCache,
    MISS,
    PreforkConfig,
    PreforkMaster,
    ServeConfig,
    SingleFlight,
    merge_metric_snapshots,
    proc_private_bytes,
)
from repro.serve.prefork import HEARTBEAT_DIRNAME
from repro.store import SnapshotStore


# ----------------------------------------------------------------------
# SingleFlight
# ----------------------------------------------------------------------


class TestSingleFlight:
    def test_lone_caller_is_leader(self):
        flights = SingleFlight()
        assert flights.do("k", lambda: 42) == 42
        assert flights.stats() == {"leaders": 1, "followers": 0, "timeouts": 0}

    def test_sequential_calls_do_not_coalesce(self):
        flights = SingleFlight()
        assert flights.do("k", lambda: 1) == 1
        assert flights.do("k", lambda: 2) == 2
        assert flights.leaders == 2 and flights.followers == 0

    def _run_concurrent(self, flights, n_followers, leader_fn, follower_fn):
        """Start a leader, let followers pile on, release, collect."""
        release = threading.Event()
        entered = threading.Event()
        outcomes: dict[int, object] = {}

        def gated_leader():
            entered.set()
            release.wait(5.0)
            return leader_fn()

        def run(i, fn):
            try:
                outcomes[i] = flights.do("k", fn)
            except BaseException as exc:  # noqa: BLE001 - test captures
                outcomes[i] = exc

        threads = [threading.Thread(target=run, args=(0, gated_leader))]
        threads[0].start()
        assert entered.wait(5.0)
        for i in range(1, n_followers + 1):
            threads.append(threading.Thread(target=run, args=(i, follower_fn)))
            threads[-1].start()
        # Followers must be parked on the flight before release.
        deadline = time.monotonic() + 5.0
        while flights.followers < n_followers and time.monotonic() < deadline:
            time.sleep(0.005)
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        return outcomes

    def test_concurrent_duplicates_share_the_leader_result(self):
        flights = SingleFlight()
        computed = []

        def compute():
            computed.append(1)
            return {"result": "expensive"}

        outcomes = self._run_concurrent(
            flights, 3, compute, lambda: pytest.fail("follower computed")
        )
        assert computed == [1], "exactly one computation for 4 callers"
        first = outcomes[0]
        assert all(outcomes[i] is first for i in range(4))
        assert flights.leaders == 1 and flights.followers == 3

    def test_leader_error_propagates_to_followers(self):
        flights = SingleFlight()
        boom = ValueError("backend down")

        def explode():
            raise boom

        outcomes = self._run_concurrent(
            flights, 2, explode, lambda: pytest.fail("follower computed")
        )
        assert all(outcomes[i] is boom for i in range(3))

    def test_follower_timeout_computes_independently(self):
        flights = SingleFlight(timeout_s=0.05)
        release = threading.Event()
        entered = threading.Event()

        def wedged():
            entered.set()
            release.wait(5.0)
            return "leader"

        leader = threading.Thread(target=flights.do, args=("k", wedged))
        leader.start()
        assert entered.wait(5.0)
        try:
            assert flights.do("k", lambda: "fallback") == "fallback"
            assert flights.timeouts == 1
        finally:
            release.set()
            leader.join(timeout=5.0)

    def test_counters_mirrored_into_metrics(self):
        metrics = MetricsRegistry()
        flights = SingleFlight(metrics=metrics)
        flights.do("k", lambda: 1)
        assert metrics.counter_value("serve.coalesce.leaders") == 1


# ----------------------------------------------------------------------
# Fleet metrics aggregation
# ----------------------------------------------------------------------

BUCKETS = [0.01, 0.1, 1.0]


def _registry(latencies, requests):
    registry = MetricsRegistry()
    registry.inc("serve.requests", requests)
    registry.set_gauge("serve.cache_size", 10)
    for value in latencies:
        registry.observe("latency", value, BUCKETS)
    return registry.as_dict()


class TestMergeMetricSnapshots:
    def test_counters_and_gauges_sum(self):
        merged = merge_metric_snapshots(
            [_registry([0.05], 3), _registry([0.5], 4)]
        )
        assert merged["counters"]["serve.requests"] == 7
        assert merged["gauges"]["serve.cache_size"] == 20

    def test_histograms_merge_bucketwise(self):
        merged = merge_metric_snapshots(
            [_registry([0.005, 0.05], 2), _registry([0.5, 2.0], 2)]
        )
        blob = merged["histograms"]["latency"]
        assert blob["count"] == 4
        assert blob["sum"] == pytest.approx(2.555)
        assert blob["min"] == 0.005 and blob["max"] == 2.0
        # Quantiles re-derived over the merged buckets, not averaged.
        assert blob["p50"] <= blob["p95"] <= blob["p99"] <= 2.0

    def test_single_snapshot_is_identity_for_counts(self):
        snap = _registry([0.05, 0.5], 5)
        merged = merge_metric_snapshots([snap])
        assert merged["counters"] == snap["counters"]
        assert merged["histograms"]["latency"]["count"] == 2

    def test_bucket_mismatch_raises(self):
        other = MetricsRegistry()
        other.observe("latency", 0.1, [0.5, 5.0])
        with pytest.raises(ValueError, match="bucket mismatch"):
            merge_metric_snapshots([_registry([0.05], 1), other.as_dict()])

    def test_empty_input(self):
        merged = merge_metric_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


def test_proc_private_bytes_self():
    private = proc_private_bytes(os.getpid())
    assert private is not None and private > 0


# ----------------------------------------------------------------------
# Snapshot-token cache binding (the fork-inherited-cache regression)
# ----------------------------------------------------------------------


class TestCacheSnapshotToken:
    def test_rebind_invalidates_entries(self):
        cache = LRUTTLCache(token="snap-a")
        cache.put("k", "old")
        cache.rebind("snap-b")
        assert cache.get("k") is MISS
        assert cache.invalidations == 1

    def test_rebind_same_token_is_noop(self):
        cache = LRUTTLCache(token="snap-a")
        cache.put("k", "v")
        cache.rebind("snap-a")
        assert cache.get("k") == "v"
        assert cache.invalidations == 0

    def test_rebind_keeps_stale_entries_recoverable(self):
        cache = LRUTTLCache(token="snap-a", keep_stale=True)
        cache.put("k", "old")
        cache.rebind("snap-b")
        assert cache.get("k") is MISS
        value, age = cache.get_stale("k")
        assert value == "old" and age >= 0.0

    def test_fork_inherited_cache_never_serves_other_snapshot_fresh(self):
        """A forked child rebinding to a new snapshot must treat every
        inherited entry as stale, even though the inherited epoch
        counter still matches — the regression the token exists for."""
        cache = LRUTTLCache(token="snap-a", keep_stale=True)
        cache.put("k", "pre-reload")
        pid = os.fork()
        if pid == 0:  # child: the rotated post-reload worker
            status = 1
            try:
                cache.rebind("snap-b")
                fresh = cache.get("k")
                stale = cache.get_stale("k")
                ok = (
                    fresh is MISS  # never a fresh hit
                    and stale is not MISS  # degraded path still works
                    and stale[0] == "pre-reload"
                )
                status = 0 if ok else 1
            finally:
                os._exit(status)
        _, wait_status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(wait_status) == 0, (
            "fork-inherited cache served a pre-reload entry as fresh"
        )
        # The parent (old-snapshot worker) is untouched by the child.
        assert cache.get("k") == "pre-reload"


# ----------------------------------------------------------------------
# Live fleet: one worker over a real socket
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def prefork_store(tmp_path_factory, resolved_tiny, tiny_pedigree_graph):
    store_dir = tmp_path_factory.mktemp("prefork-store")
    manifest = SnapshotStore(store_dir).save(
        resolved_tiny, graph=tiny_pedigree_graph, config=SnapsConfig()
    )
    return store_dir, manifest


def test_prefork_config_rejects_zero_workers(tmp_path):
    with pytest.raises(ValueError, match="workers"):
        PreforkMaster(tmp_path, config=PreforkConfig(workers=0))


def test_single_worker_fleet_serves(prefork_store, tiny_pedigree_graph, tmp_path):
    store_dir, manifest = prefork_store
    run_dir = tmp_path / "run"
    master = PreforkMaster(
        store_dir,
        config=PreforkConfig(workers=1, run_dir=run_dir),
        serve_config=ServeConfig(host="127.0.0.1", port=0),
    )
    pid = os.fork()
    if pid == 0:
        try:
            master.start()
        finally:
            os._exit(0)
    try:
        address_file = run_dir / "address.json"
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if address_file.exists() and list(
                (run_dir / HEARTBEAT_DIRNAME).glob("*.hb")
            ):
                break
            time.sleep(0.1)
        else:
            pytest.fail("prefork fleet did not come up")
        address = json.loads(address_file.read_text())
        base = f"http://{address['host']}:{address['port']}"
        with urllib.request.urlopen(base + "/healthz", timeout=30.0) as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        assert health["entities"] == len(tiny_pedigree_graph)
        probe = next(
            e
            for e in tiny_pedigree_graph
            if e.first("first_name") and e.first("surname")
        )
        body = json.dumps(
            {
                "first_name": probe.first("first_name"),
                "surname": probe.first("surname"),
                "top": 3,
            }
        ).encode("utf-8")
        request = urllib.request.Request(
            base + "/v1/search",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            payload = json.loads(response.read())
        assert payload["matches"], "probe search must match"
        with urllib.request.urlopen(
            base + "/metricz?format=json", timeout=30.0
        ) as response:
            metrics = json.loads(response.read())
        assert metrics["counters"].get("serve.requests", 0) >= 2
        assert metrics["gauges"].get("serve.prefork.workers") == 1
    finally:
        os.kill(pid, signal.SIGTERM)
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            done, _ = os.waitpid(pid, os.WNOHANG)
            if done == pid:
                break
            time.sleep(0.1)
        else:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)
