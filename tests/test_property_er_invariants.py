"""Hypothesis property tests on ER invariants.

The entity store must uphold its invariants under arbitrary merge/remove
sequences, and the metrics must satisfy their algebraic identities for
arbitrary confusion counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import EntityStore
from repro.eval.metrics import ConfusionCounts, f_measure, f_star, precision, recall
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


def _dataset(n=10):
    records = [
        Record(i, i, Role.BM, {"first_name": "mary", "surname": "ross",
                               "event_year": str(1870 + (i % 6))}, 1)
        for i in range(1, n + 1)
    ]
    certs = [
        Certificate(i, CertificateType.BIRTH, 1870 + (i % 6), "uig", {Role.BM: i})
        for i in range(1, n + 1)
    ]
    return Dataset("prop", records, certs)


@st.composite
def merge_remove_ops(draw):
    n_ops = draw(st.integers(0, 25))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["merge", "remove"]))
        if kind == "merge":
            a = draw(st.integers(1, 10))
            b = draw(st.integers(1, 10))
            if a != b:
                ops.append(("merge", a, b))
        else:
            ops.append(("remove", draw(st.integers(1, 10)), 0))
    return ops


class TestEntityStoreInvariants:
    @given(ops=merge_remove_ops())
    @settings(max_examples=60)
    def test_partition_invariants(self, ops):
        dataset = _dataset()
        store = EntityStore(dataset)
        for kind, a, b in ops:
            if kind == "merge":
                store.merge(a, b)
            else:
                store.remove_record(a)
        # 1. Every record belongs to exactly one entity.
        seen = {}
        for entity in store.entities():
            for rid in entity.record_ids:
                assert rid not in seen
                seen[rid] = entity.entity_id
        assert set(seen) == set(range(1, 11))
        # 2. Links always stay inside their entity.
        for entity in store.entities():
            for x, y in entity.links:
                assert x in entity.record_ids and y in entity.record_ids
        # 3. Entities are connected by their links (no phantom clusters).
        for entity in store.entities(min_size=2):
            adjacency = {rid: set() for rid in entity.record_ids}
            for x, y in entity.links:
                adjacency[x].add(y)
                adjacency[y].add(x)
            start = next(iter(entity.record_ids))
            reached = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency[node]:
                    if neighbour not in reached:
                        reached.add(neighbour)
                        frontier.append(neighbour)
            assert reached == entity.record_ids
        # 4. Role counts agree with membership.
        for entity in store.entities():
            assert sum(entity.role_counts.values()) == len(entity.record_ids)

    @given(ops=merge_remove_ops())
    @settings(max_examples=30)
    def test_matched_pairs_symmetric_closed(self, ops):
        dataset = _dataset()
        store = EntityStore(dataset)
        for kind, a, b in ops:
            if kind == "merge":
                store.merge(a, b)
            else:
                store.remove_record(a)
        pairs = store.all_matched_pairs()
        for a, b in pairs:
            assert a < b
            assert store.same_entity(a, b)
        # Closure: pairs form disjoint cliques.
        for a, b in pairs:
            for c, d in pairs:
                if b == c:
                    assert (min(a, d), max(a, d)) in pairs or a == d


class TestMetricIdentities:
    @given(tp=st.integers(0, 1000), fp=st.integers(0, 1000), fn=st.integers(0, 1000))
    def test_ranges(self, tp, fp, fn):
        counts = ConfusionCounts(tp, fp, fn)
        for metric in (precision, recall, f_star, f_measure):
            assert 0.0 <= metric(counts) <= 1.0

    @given(tp=st.integers(1, 1000), fp=st.integers(0, 1000), fn=st.integers(0, 1000))
    def test_fstar_transform_identity(self, tp, fp, fn):
        counts = ConfusionCounts(tp, fp, fn)
        f = f_measure(counts)
        assert abs(f_star(counts) - f / (2.0 - f)) < 1e-9

    @given(tp=st.integers(0, 1000), fp=st.integers(0, 1000), fn=st.integers(0, 1000))
    def test_fstar_leq_min_p_r(self, tp, fp, fn):
        counts = ConfusionCounts(tp, fp, fn)
        assert f_star(counts) <= min(precision(counts), recall(counts)) + 1e-12

    @given(tp=st.integers(0, 500), fp=st.integers(0, 500), fn=st.integers(0, 500),
           extra=st.integers(1, 100))
    def test_more_tp_never_hurts(self, tp, fp, fn, extra):
        worse = ConfusionCounts(tp, fp, fn)
        better = ConfusionCounts(tp + extra, fp, fn)
        assert f_star(better) >= f_star(worse)
