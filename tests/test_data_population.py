"""Tests for the demographic population simulator."""

import pytest

from repro.data.population import PopulationConfig, PopulationSimulator
from repro.data.roles import CertificateType, Role


@pytest.fixture(scope="module")
def small_run():
    config = PopulationConfig(
        start_year=1870, end_year=1895, n_founder_couples=20, seed=5
    )
    sim = PopulationSimulator(config)
    dataset = sim.run("test")
    return sim, dataset


class TestConfigValidation:
    def test_bad_year_order(self):
        with pytest.raises(ValueError):
            PopulationConfig(start_year=1900, end_year=1890)

    def test_zero_founders(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_founder_couples=0)

    def test_no_parishes(self):
        with pytest.raises(ValueError):
            PopulationConfig(parishes=())


class TestSimulation:
    def test_deterministic_given_seed(self):
        config = PopulationConfig(
            start_year=1870, end_year=1880, n_founder_couples=10, seed=9
        )
        a = PopulationSimulator(config).run()
        b = PopulationSimulator(config).run()
        assert len(a) == len(b)
        ra = sorted(r.attributes.get("first_name", "") for r in a)
        rb = sorted(r.attributes.get("first_name", "") for r in b)
        assert ra == rb

    def test_emits_all_certificate_types(self, small_run):
        _, dataset = small_run
        stats = dataset.describe()
        assert stats["birth_certs"] > 0
        assert stats["death_certs"] > 0
        assert stats["marriage_certs"] > 0

    def test_birth_certificates_have_three_roles(self, small_run):
        _, dataset = small_run
        for cert in dataset.certificates.values():
            if cert.cert_type is CertificateType.BIRTH:
                assert {Role.BB, Role.BM, Role.BF} <= set(cert.roles)

    def test_ground_truth_consistent_with_simulated_people(self, small_run):
        sim, dataset = small_run
        for record in dataset:
            person = sim.people[record.person_id]
            if record.role in (Role.BM, Role.DM, Role.MB):
                assert person.gender == "f"
            if record.role in (Role.BF, Role.DF, Role.MG):
                assert person.gender == "m"

    def test_mothers_in_childbearing_age(self, small_run):
        sim, dataset = small_run
        for record in dataset.records_with_role([Role.BM]):
            person = sim.people[record.person_id]
            age = record.event_year - person.birth_year
            assert 15 <= age <= 55

    def test_surname_change_at_marriage_exists(self, small_run):
        sim, dataset = small_run
        changed = [
            p for p in sim.people.values()
            if p.gender == "f" and p.spouse_id is not None
            and p.surname != p.maiden_surname
        ]
        assert changed, "some married women should have changed surname"

    def test_no_person_dies_twice(self, small_run):
        _, dataset = small_run
        deceased = [r.person_id for r in dataset.records_with_role([Role.DD])]
        assert len(deceased) == len(set(deceased))

    def test_no_person_born_twice(self, small_run):
        _, dataset = small_run
        born = [r.person_id for r in dataset.records_with_role([Role.BB])]
        assert len(born) == len(set(born))

    def test_death_after_birth(self, small_run):
        sim, _ = small_run
        for person in sim.people.values():
            if person.death_year is not None:
                assert person.death_year >= person.birth_year

    def test_event_years_within_period(self, small_run):
        _, dataset = small_run
        for cert in dataset.certificates.values():
            assert 1870 <= cert.year <= 1895

    def test_infant_deaths_produce_bp_dp_truth(self, small_run):
        _, dataset = small_run
        assert len(dataset.true_match_pairs("Bp-Dp")) > 0

    def test_sibling_births_produce_bp_bp_truth(self, small_run):
        _, dataset = small_run
        assert len(dataset.true_match_pairs("Bp-Bp")) > 0
