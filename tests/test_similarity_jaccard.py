"""Tests for Jaccard/Dice set similarities."""

from repro.similarity.jaccard import dice_similarity, jaccard_similarity, token_jaccard


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity({1}, {2}) == 0.0

    def test_partial_overlap(self):
        assert jaccard_similarity({1, 2}, {2, 3}) == 1 / 3

    def test_both_empty(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_accepts_lists_with_duplicates(self):
        assert jaccard_similarity([1, 1, 2], [1, 2, 2]) == 1.0


class TestTokenJaccard:
    def test_address_overlap(self):
        assert token_jaccard("high street", "high road") == 1 / 3

    def test_case_insensitive(self):
        assert token_jaccard("High Street", "high street") == 1.0

    def test_word_order_irrelevant(self):
        assert token_jaccard("street high", "high street") == 1.0

    def test_empty_strings(self):
        assert token_jaccard("", "") == 1.0


class TestDice:
    def test_partial(self):
        assert dice_similarity({1, 2}, {2, 3}) == 0.5

    def test_dice_geq_jaccard(self):
        a, b = {1, 2, 3}, {2, 3, 4, 5}
        assert dice_similarity(a, b) >= jaccard_similarity(a, b)

    def test_identical(self):
        assert dice_similarity({1}, {1}) == 1.0
