"""Quality regression guard: census evidence must not hurt vital-record
linkage (the extension's core claim, pinned as a test)."""

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.data.synthetic import make_ios_census_dataset, make_ios_dataset
from repro.eval import evaluate_linkage


@pytest.mark.parametrize("role_pair", ["Bp-Bp", "Bp-Dp"])
def test_census_evidence_does_not_degrade_linkage(role_pair):
    plain = make_ios_dataset(scale=0.06, seed=47)
    census = make_ios_census_dataset(scale=0.06, seed=47)
    resolver = SnapsResolver(SnapsConfig())
    f_plain = evaluate_linkage(
        resolver.resolve(plain).matched_pairs(role_pair),
        plain.true_match_pairs(role_pair),
    ).f_star
    f_census = evaluate_linkage(
        resolver.resolve(census).matched_pairs(role_pair),
        census.true_match_pairs(role_pair),
    ).f_star
    assert f_census >= f_plain - 5.0
