"""Tests for the keyword index K and similarity-aware index S."""

import pytest

from repro.index import KeywordIndex, SimilarityAwareIndex


class TestKeywordIndex:
    def test_exact_name_lookup(self, tiny_pedigree_graph):
        index = KeywordIndex(tiny_pedigree_graph)
        entity = next(iter(tiny_pedigree_graph))
        first = entity.first("first_name")
        if first is None:
            pytest.skip("entity without first name")
        assert entity.entity_id in index.lookup("first_name", first)

    def test_lookup_is_case_insensitive(self, tiny_pedigree_graph):
        index = KeywordIndex(tiny_pedigree_graph)
        entity = next(iter(tiny_pedigree_graph))
        first = entity.first("first_name")
        if first is None:
            pytest.skip("entity without first name")
        assert index.lookup("first_name", first.upper()) == index.lookup(
            "first_name", first
        )

    def test_unknown_value_empty(self, tiny_pedigree_graph):
        index = KeywordIndex(tiny_pedigree_graph)
        assert index.lookup("first_name", "zzzznotaname") == set()

    def test_every_value_of_entity_indexed(self, tiny_pedigree_graph):
        """A woman with maiden + married surnames is findable under both."""
        index = KeywordIndex(tiny_pedigree_graph)
        for entity in tiny_pedigree_graph:
            for surname in entity.values.get("surname", ()):
                assert entity.entity_id in index.lookup("surname", surname)

    def test_year_range_lookup(self, tiny_pedigree_graph):
        index = KeywordIndex(tiny_pedigree_graph)
        everyone = index.lookup_year_range(1800, 1999)
        assert len(everyone) == len(tiny_pedigree_graph)
        assert index.lookup_year_range(1700, 1750) == set()

    def test_year_range_validation(self, tiny_pedigree_graph):
        index = KeywordIndex(tiny_pedigree_graph)
        with pytest.raises(ValueError):
            index.lookup_year_range(1900, 1890)

    def test_gender_lookup_partitions(self, tiny_pedigree_graph):
        index = KeywordIndex(tiny_pedigree_graph)
        males = index.lookup_gender("m")
        females = index.lookup_gender("f")
        assert males and females
        assert not males & females

    def test_values_enumerates_sorted(self, tiny_pedigree_graph):
        index = KeywordIndex(tiny_pedigree_graph)
        values = index.values("surname")
        assert values == sorted(values)
        assert len(values) > 0

    def test_n_keys_positive(self, tiny_pedigree_graph):
        assert KeywordIndex(tiny_pedigree_graph).n_keys() > 0


class TestSimilarityAwareIndex:
    @pytest.fixture()
    def index(self):
        return SimilarityAwareIndex(
            ["macdonald", "mcdonald", "macleod", "stewart", "macdonell"],
            threshold=0.5,
        )

    def test_self_match_is_one(self, index):
        matches = dict(index.matches("macdonald"))
        assert matches["macdonald"] == 1.0

    def test_similar_values_found(self, index):
        matches = dict(index.matches("macdonald"))
        assert "mcdonald" in matches
        assert matches["mcdonald"] >= 0.5

    def test_results_sorted_descending(self, index):
        scores = [s for _, s in index.matches("macdonald")]
        assert scores == sorted(scores, reverse=True)

    def test_unseen_value_resolved_and_cached(self, index):
        assert "macdonlad" not in index
        matches = index.matches("macdonlad")  # typo
        assert any(value == "macdonald" for value, _ in matches)
        assert "macdonlad" in index  # cached for next time

    def test_no_shared_bigram_no_match(self, index):
        assert index.matches("zzqq") == []

    def test_threshold_respected(self):
        index = SimilarityAwareIndex(["macdonald", "stewart"], threshold=0.9)
        matches = dict(index.matches("macdonald"))
        assert "stewart" not in matches

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SimilarityAwareIndex(["a"], threshold=0.0)

    def test_precompute_counts(self, index):
        assert index.n_values() == 5
        assert index.n_precomputed_pairs() >= 5  # at least the self-pairs

    def test_lazy_mode(self):
        index = SimilarityAwareIndex(["macdonald", "mcdonald"], precompute=False)
        assert index.n_precomputed_pairs() == 0
        index.matches("macdonald")
        assert index.n_precomputed_pairs() > 0
