"""Tests for the snapshot store: round trips, integrity, incremental ingest."""

from __future__ import annotations

import json

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.data.records import Certificate, Dataset, Record, concat_datasets
from repro.query import Query, QueryEngine
from repro.store import (
    IncrementalResolver,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotSchemaError,
    SnapshotStore,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
)

QUERIES = [
    Query(first_name="john", surname="macdonald"),
    Query(first_name="mary", surname="mackenzie", year_from=1860, year_to=1900),
    Query(first_name="jon", surname="macdonld", parish="portree"),
]


def cluster_sets(entities):
    """Clusters as record-id frozensets (entity ids are run-dependent)."""
    return {frozenset(e.record_ids) for e in entities.entities(min_size=2)}


def top_k(engine, query, k=10):
    return [
        (hit.entity.entity_id, hit.score_percent, hit.attribute_scores)
        for hit in engine.search(query, top_m=k)
    ]


@pytest.fixture(scope="module")
def saved_store(tmp_path_factory, resolved_tiny):
    store = SnapshotStore(tmp_path_factory.mktemp("snapstore"))
    manifest = store.save(resolved_tiny, config=SnapsConfig())
    return store, manifest


class TestRoundTrip:
    def test_clusters_survive_save_load(self, saved_store, resolved_tiny):
        store, _ = saved_store
        loaded = store.load()
        assert {frozenset(c["records"]) for c in loaded.clusters} == cluster_sets(
            resolved_tiny.entities
        )

    def test_dataset_round_trips(self, saved_store, tiny_dataset):
        store, _ = saved_store
        loaded = store.load(artifacts=("dataset",))
        assert len(loaded.dataset) == len(tiny_dataset)
        assert (
            loaded.dataset.content_fingerprint()
            == tiny_dataset.content_fingerprint()
        )

    def test_warm_engine_matches_cold_engine(
        self, saved_store, tiny_pedigree_graph
    ):
        store, _ = saved_store
        loaded = store.load(artifacts=("graph", "indexes"))
        cold = QueryEngine(tiny_pedigree_graph)
        warm = QueryEngine(
            loaded.graph,
            keyword_index=loaded.keyword_index,
            sim_index=loaded.sim_index,
        )
        for query in QUERIES:
            assert top_k(warm, query) == top_k(cold, query)

    def test_graph_summary_round_trips(self, saved_store, resolved_tiny):
        store, _ = saved_store
        loaded = store.load(artifacts=("clusters",))
        assert loaded.graph_summary == {
            "n_atomic": resolved_tiny.n_atomic,
            "n_relational": resolved_tiny.n_relational,
        }

    def test_selective_load_skips_unrequested_groups(self, saved_store):
        store, _ = saved_store
        loaded = store.load(artifacts=("graph",))
        assert loaded.graph is not None
        assert loaded.dataset is None
        assert loaded.keyword_index is None

    def test_unknown_artifact_group_rejected(self, saved_store):
        store, _ = saved_store
        with pytest.raises(ValueError, match="unknown artefact group"):
            store.load(artifacts=("nonsense",))


class TestContentAddressing:
    def test_resave_identical_content_reuses_id(self, saved_store, resolved_tiny):
        store, manifest = saved_store
        again = store.save(resolved_tiny, config=SnapsConfig())
        assert again.snapshot_id == manifest.snapshot_id
        assert store.list_ids().count(manifest.snapshot_id) == 1

    def test_head_points_at_latest(self, saved_store):
        store, manifest = saved_store
        assert store.latest() == store.log()[0].snapshot_id

    def test_verify_reports_clean(self, saved_store):
        store, manifest = saved_store
        assert store.verify(manifest.snapshot_id) == []

    def test_config_fingerprint_round_trip(self):
        config = SnapsConfig(merge_threshold=0.8, use_refinement=False)
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert config_fingerprint(rebuilt) == config_fingerprint(config)

    def test_config_fingerprint_sensitive_to_changes(self):
        assert config_fingerprint(SnapsConfig()) != config_fingerprint(
            SnapsConfig(merge_threshold=0.7)
        )


class TestIntegrity:
    @pytest.fixture()
    def corrupt_store(self, tmp_path, resolved_tiny):
        store = SnapshotStore(tmp_path / "store")
        manifest = store.save(resolved_tiny, config=SnapsConfig())
        return store, manifest

    def test_corrupted_payload_fails_loudly_on_load(self, corrupt_store):
        store, manifest = corrupt_store
        payload = store.path_of(manifest.snapshot_id) / "keyword_index.npz"
        payload.write_bytes(b"\x00garbage" + payload.read_bytes()[8:])
        with pytest.raises(SnapshotIntegrityError, match="corrupt"):
            store.load(artifacts=("indexes",))

    def test_corrupted_payload_detected_by_verify(self, corrupt_store):
        store, manifest = corrupt_store
        payload = store.path_of(manifest.snapshot_id) / "clusters.json"
        payload.write_text(payload.read_text() + " ")
        problems = store.verify(manifest.snapshot_id)
        assert any("checksum mismatch" in p for p in problems)

    def test_missing_payload_fails_loudly(self, corrupt_store):
        store, manifest = corrupt_store
        (store.path_of(manifest.snapshot_id) / "graph.json").unlink()
        with pytest.raises(SnapshotIntegrityError, match="missing"):
            store.load(artifacts=("graph",))

    def test_unknown_schema_version_rejected(self, corrupt_store):
        store, manifest = corrupt_store
        manifest_path = store.path_of(manifest.snapshot_id) / "manifest.json"
        blob = json.loads(manifest_path.read_text())
        blob["schema_version"] = 999
        manifest_path.write_text(json.dumps(blob))
        with pytest.raises(SnapshotSchemaError, match="version"):
            store.load()

    def test_empty_store_raises_actionable_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="empty"):
            SnapshotStore(tmp_path / "nowhere").load()

    def test_unknown_snapshot_id_raises(self, corrupt_store):
        store, _ = corrupt_store
        with pytest.raises(SnapshotError, match="no snapshot"):
            store.load("deadbeef00000000")


def reidentify(dataset, name, rid_base, cid_base, pid_base):
    """Copy ``dataset`` with shifted record/cert/person ids (a delta batch)."""
    rid_map = {rid: rid_base + i for i, rid in enumerate(sorted(dataset.records))}
    cid_map = {
        cid: cid_base + i for i, cid in enumerate(sorted(dataset.certificates))
    }
    records = [
        Record(
            record_id=rid_map[r.record_id],
            cert_id=cid_map[r.cert_id],
            role=r.role,
            attributes=dict(r.attributes),
            person_id=pid_base + r.person_id,
        )
        for r in dataset
    ]
    certificates = [
        Certificate(
            cert_id=cid_map[c.cert_id],
            cert_type=c.cert_type,
            year=c.year,
            parish=c.parish,
            roles={role: rid_map[rid] for role, rid in c.roles.items()},
            children=[rid_map[rid] for rid in c.children],
            others=[rid_map[rid] for rid in c.others],
        )
        for c in dataset.certificates.values()
    ]
    return Dataset(name, records, certificates)


def split_by_certificates(dataset, n_delta):
    """(base, delta) datasets: the last ``n_delta`` certificates form the
    delta batch."""
    cert_ids = sorted(dataset.certificates)
    delta_ids = set(cert_ids[-n_delta:])

    def subset(name, keep):
        certs = [c for cid, c in dataset.certificates.items() if cid in keep]
        rids = {rid for c in certs for rid in c.member_record_ids()}
        return Dataset(name, [r for r in dataset if r.record_id in rids], certs)

    return subset("base", set(cert_ids) - delta_ids), subset("delta", delta_ids)


class TestConcatDatasets:
    def test_concat_disjoint(self, tiny_dataset):
        delta = reidentify(tiny_dataset, "delta", 50000, 40000, 90000)
        combined = concat_datasets(tiny_dataset, delta)
        assert len(combined) == 2 * len(tiny_dataset)
        assert combined.name == f"{tiny_dataset.name}+delta"

    def test_record_id_collision_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="record id"):
            concat_datasets(tiny_dataset, tiny_dataset)

    def test_cert_id_collision_rejected(self, tiny_dataset):
        # Fresh record ids, but certificate ids reuse the base dataset's.
        first_cid = sorted(tiny_dataset.certificates)[0]
        delta = reidentify(
            tiny_dataset, "delta", 50000, cid_base=first_cid, pid_base=90000
        )
        with pytest.raises(ValueError, match="certificate id"):
            concat_datasets(tiny_dataset, delta)


class TestIncrementalIngest:
    def test_ingest_matches_full_reresolve(self, tiny_dataset, tmp_path):
        base_ds, delta_ds = split_by_certificates(tiny_dataset, 10)
        config = SnapsConfig()
        full = SnapsResolver(config).resolve(tiny_dataset)

        store = SnapshotStore(tmp_path / "store")
        base = SnapsResolver(config).resolve(base_ds)
        base_manifest = store.save(base, config=config)

        outcome = IncrementalResolver(store).ingest(delta_ds)
        assert cluster_sets(outcome.linkage.entities) == cluster_sets(
            full.entities
        )
        # lineage: child points at base, log walks back to the root
        assert outcome.manifest.parent == base_manifest.snapshot_id
        chain = store.log()
        assert [m.snapshot_id for m in chain] == [
            outcome.manifest.snapshot_id,
            base_manifest.snapshot_id,
        ]
        # the ingest skipped at least some work
        assert outcome.stats["dirty_pairs"] <= outcome.stats["candidate_pairs"]
        assert outcome.stats["replayed_clusters"] > 0

    def test_ingested_snapshot_serves_identically(self, tiny_dataset, tmp_path):
        from repro.pedigree import build_pedigree_graph

        base_ds, delta_ds = split_by_certificates(tiny_dataset, 6)
        config = SnapsConfig()
        store = SnapshotStore(tmp_path / "store")
        store.save(SnapsResolver(config).resolve(base_ds), config=config)
        IncrementalResolver(store).ingest(delta_ds)

        combined = concat_datasets(base_ds, delta_ds)
        full = SnapsResolver(config).resolve(combined)
        cold = QueryEngine(build_pedigree_graph(combined, full.entities))
        loaded = store.load(artifacts=("graph", "indexes"))
        warm = QueryEngine(
            loaded.graph,
            keyword_index=loaded.keyword_index,
            sim_index=loaded.sim_index,
        )
        # Entity ids are assigned in run order, so they differ between the
        # full re-resolve and the ingest; scores and per-attribute
        # breakdowns must not (sorted to neutralise tie ordering).
        for query in QUERIES:
            assert sorted(
                (score, sorted(scores.items()))
                for _, score, scores in top_k(warm, query)
            ) == sorted(
                (score, sorted(scores.items()))
                for _, score, scores in top_k(cold, query)
            )

    def test_ingest_uses_manifest_config(self, tiny_dataset, tmp_path):
        base_ds, delta_ds = split_by_certificates(tiny_dataset, 6)
        config = SnapsConfig(merge_threshold=0.9, use_refinement=False)
        store = SnapshotStore(tmp_path / "store")
        store.save(SnapsResolver(config).resolve(base_ds), config=config)
        outcome = IncrementalResolver(store).ingest(delta_ds)
        assert outcome.manifest.snaps_config() == config
