"""Failure-injection and edge-case robustness tests.

The resolver and its substrates must handle degenerate inputs — empty
datasets, single certificates, totally corrupted values, missing
attributes — without crashing and with sensible outputs.
"""

import pytest

from repro.core import SnapsConfig, SnapsResolver
from repro.data.corruption import CorruptionConfig, Corruptor
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role
from repro.pedigree import build_pedigree_graph
from repro.query import Query, QueryEngine


def _single_cert_dataset():
    records = [
        Record(1, 1, Role.BB, {"first_name": "john", "surname": "ross",
                               "gender": "m", "event_year": "1870"}, 1),
        Record(2, 1, Role.BM, {"first_name": "mary", "surname": "ross",
                               "event_year": "1870"}, 2),
        Record(3, 1, Role.BF, {"first_name": "angus", "surname": "ross",
                               "event_year": "1870"}, 3),
    ]
    cert = Certificate(1, CertificateType.BIRTH, 1870, "uig",
                       {Role.BB: 1, Role.BM: 2, Role.BF: 3})
    return Dataset("one", records, [cert])


class TestDegenerateDatasets:
    def test_empty_dataset_resolves(self):
        dataset = Dataset("empty", [], [])
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        assert result.n_relational == 0
        assert result.matched_pairs("Bp-Bp") == set()

    def test_single_certificate_no_links(self):
        dataset = _single_cert_dataset()
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        # Nothing to link: all records share one certificate.
        assert result.matched_pairs("Bp-Bp") == set()
        assert len(result.entities) == 3

    def test_pedigree_graph_on_unlinked_data(self):
        dataset = _single_cert_dataset()
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        graph = build_pedigree_graph(dataset, result.entities)
        assert len(graph) == 3
        baby = graph.entity_of_record(1)
        assert len(graph.parents(baby.entity_id)) == 2

    def test_query_engine_on_tiny_graph(self):
        dataset = _single_cert_dataset()
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        graph = build_pedigree_graph(dataset, result.entities)
        engine = QueryEngine(graph)
        hits = engine.search(Query(first_name="john", surname="ross"))
        assert hits
        assert hits[0].entity.first("first_name") == "john"

    def test_records_with_all_names_missing(self):
        records = [
            Record(1, 1, Role.BM, {"event_year": "1870"}, 1),
            Record(2, 2, Role.BM, {"event_year": "1872"}, 1),
        ]
        certs = [
            Certificate(1, CertificateType.BIRTH, 1870, "uig", {Role.BM: 1}),
            Certificate(2, CertificateType.BIRTH, 1872, "uig", {Role.BM: 2}),
        ]
        dataset = Dataset("nameless", records, certs)
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        # Nameless records produce no blocking keys and no links — but no
        # crash either.
        assert result.matched_pairs("Bp-Bp") == set()


class TestHeavyCorruption:
    def test_resolver_survives_maximum_noise(self):
        from repro.data.population import PopulationConfig, PopulationSimulator

        clean = PopulationSimulator(
            PopulationConfig(start_year=1870, end_year=1885,
                             n_founder_couples=10, seed=13)
        ).run()
        shredder = Corruptor(
            CorruptionConfig(
                typo_prob=1.0,
                variant_prob=1.0,
                age_error_prob=1.0,
                missing_probs={"address": 0.9, "occupation": 0.95,
                               "parish": 0.9},
                seed=13,
            )
        )
        noisy = shredder.corrupt_dataset(clean)
        result = SnapsResolver(SnapsConfig()).resolve(noisy)
        # Quality will be poor, but the pipeline must complete and the
        # constraints must still hold.
        from repro.data.roles import Role

        for entity in result.entities.entities(min_size=2):
            assert entity.role_counts.get(Role.BB, 0) <= 1

    def test_precision_degrades_gracefully_with_noise(self):
        """More noise must not crash and should reduce recall."""
        from repro.data.population import PopulationConfig, PopulationSimulator
        from repro.eval import evaluate_linkage

        clean = PopulationSimulator(
            PopulationConfig(start_year=1865, end_year=1895,
                             n_founder_couples=25, seed=17)
        ).run()
        recalls = []
        for typo_prob in (0.02, 0.35):
            noisy = Corruptor(
                CorruptionConfig(typo_prob=typo_prob, seed=17)
            ).corrupt_dataset(clean)
            result = SnapsResolver(SnapsConfig()).resolve(noisy)
            ev = evaluate_linkage(
                result.matched_pairs("Bp-Bp"), noisy.true_match_pairs("Bp-Bp")
            )
            recalls.append(ev.recall)
        assert recalls[1] < recalls[0]


class TestQueryEdgeCases:
    def test_empty_graph_engine(self):
        from repro.pedigree.graph import PedigreeGraph

        engine = QueryEngine(PedigreeGraph())
        hits = engine.search(Query(first_name="mary", surname="ross"))
        assert hits == []

    def test_single_character_names(self, tiny_query_engine):
        hits = tiny_query_engine.search(Query(first_name="m", surname="r"))
        assert isinstance(hits, list)

    def test_very_long_name(self, tiny_query_engine):
        hits = tiny_query_engine.search(
            Query(first_name="m" * 200, surname="x" * 200)
        )
        assert isinstance(hits, list)
