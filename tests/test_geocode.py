"""Tests for the geocoding substrate (gazetteer, parser, geocoder)."""

import pytest

from repro.geocode import (
    Geocoder,
    default_gazetteer,
    geo_address_comparator,
    parse_address,
)
from repro.similarity.geo import haversine_km


class TestParser:
    def test_full_address(self):
        parsed = parse_address("23 high street portree", ["portree"])
        assert parsed.house_number == 23
        assert parsed.street == "high street"
        assert parsed.parish == "portree"

    def test_no_number(self):
        parsed = parse_address("mill lane sleat", ["sleat"])
        assert parsed.house_number is None
        assert parsed.street == "mill lane"
        assert parsed.parish == "sleat"

    def test_unknown_parish_stays_in_street(self):
        parsed = parse_address("5 high street atlantis", ["portree"])
        assert parsed.parish is None
        assert parsed.street == "high street atlantis"

    def test_empty(self):
        parsed = parse_address("   ")
        assert parsed.street == ""
        assert parsed.house_number is None

    def test_number_only(self):
        parsed = parse_address("42", ["portree"])
        assert parsed.house_number == 42
        assert parsed.street == ""

    def test_normalised_round_trip(self):
        parsed = parse_address("7 shore road strath", ["strath"])
        assert parsed.normalised() == "7 shore road strath"

    def test_without_parish_list_heuristic(self):
        parsed = parse_address("7 shore road strath")
        assert parsed.parish == "strath"


class TestGazetteer:
    def test_parish_lookup(self):
        gazetteer = default_gazetteer()
        assert gazetteer.parish_location("portree") is not None
        assert gazetteer.parish_location("PORTREE") is not None
        assert gazetteer.parish_location("atlantis") is None

    def test_street_deterministic(self):
        gazetteer = default_gazetteer()
        a = gazetteer.street_location("high street", "portree")
        b = gazetteer.street_location("high street", "portree")
        assert a == b

    def test_street_near_parish_centre(self):
        gazetteer = default_gazetteer()
        centre = gazetteer.parish_location("portree")
        street = gazetteer.street_location("high street", "portree")
        assert haversine_km(centre, street) < 3.0

    def test_same_street_name_differs_across_parishes(self):
        gazetteer = default_gazetteer()
        a = gazetteer.street_location("high street", "portree")
        b = gazetteer.street_location("high street", "sleat")
        assert haversine_km(a, b) > 3.0

    def test_candidates_cover_all_parishes(self):
        gazetteer = default_gazetteer()
        candidates = gazetteer.candidate_locations("high street")
        assert len(candidates) == len(gazetteer.parishes())

    def test_empty_gazetteer_rejected(self):
        from repro.geocode.gazetteer import Gazetteer

        with pytest.raises(ValueError):
            Gazetteer({})


class TestGeocoder:
    @pytest.fixture()
    def geocoder(self):
        return Geocoder()

    def test_full_address_geocodes(self, geocoder):
        assert geocoder.geocode("23 high street portree") is not None

    def test_ambiguous_street_without_context_is_none(self, geocoder):
        assert geocoder.geocode("23 high street") is None

    def test_context_resolves_ambiguity(self, geocoder):
        point = geocoder.geocode("23 high street", context_parish="portree")
        centre = default_gazetteer().parish_location("portree")
        assert point is not None
        assert haversine_km(point, centre) < 3.0

    def test_unknown_everything_falls_back_to_context(self, geocoder):
        point = geocoder.geocode("", context_parish="sleat")
        assert point == default_gazetteer().parish_location("sleat")

    def test_nothing_at_all(self, geocoder):
        assert geocoder.geocode("") is None

    def test_cache_consistency(self, geocoder):
        a = geocoder.geocode("5 mill lane strath")
        b = geocoder.geocode("5 mill lane strath")
        assert a == b

    def test_coverage(self, geocoder):
        addresses = ["23 high street portree", "7 mill lane sleat", ""]
        assert 0.0 <= geocoder.coverage(addresses) <= 1.0
        assert geocoder.coverage([]) == 1.0


class TestGeoAddressComparator:
    def test_same_address_is_one(self):
        compare = geo_address_comparator()
        assert compare("5 high street portree", "5 high street portree") == 1.0

    def test_same_street_different_number_is_one(self):
        # Street-level geocoding: house numbers share coordinates.
        compare = geo_address_comparator()
        assert compare("5 high street portree", "9 high street portree") == 1.0

    def test_nearby_streets_score_high(self):
        compare = geo_address_comparator()
        close = compare("5 high street portree", "5 mill lane portree")
        far = compare("5 high street portree", "5 mill lane sleat")
        assert close > far

    def test_ungeocodable_falls_back_to_tokens(self):
        compare = geo_address_comparator()
        score = compare("somewhere unknowable", "somewhere unknowable")
        assert score == 1.0

    def test_registry_integration(self):
        from repro.similarity.registry import default_registry

        registry = default_registry()
        registry.register("address", geo_address_comparator())
        score = registry.compare(
            "address", "5 high street portree", "5 mill lane sleat"
        )
        assert score is not None and 0.0 <= score <= 1.0
