"""Tests for temporal/link constraints and PROP-C propagation."""

import pytest

from repro.core.constraints import ConstraintChecker
from repro.core.entities import EntityStore
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


def _dataset():
    """Crafted records exercising each constraint type."""
    records = [
        # Two baby records of the same era (cannot be one person: two births).
        Record(1, 1, Role.BB, {"first_name": "john", "surname": "ross",
                               "gender": "m", "event_year": "1870"}, 1),
        Record(2, 2, Role.BB, {"first_name": "john", "surname": "ross",
                               "gender": "m", "event_year": "1872"}, 2),
        # A deceased man aged 40 in 1890 (born ~1850).
        Record(3, 3, Role.DD, {"first_name": "john", "surname": "ross",
                               "gender": "m", "event_year": "1890",
                               "age": "40"}, 3),
        # A birth mother in 1870.
        Record(4, 1, Role.BM, {"first_name": "ann", "surname": "ross",
                               "event_year": "1870"}, 4),
        # A birth mother in 1872 (same certificate as record 2!).
        Record(5, 2, Role.BM, {"first_name": "ann", "surname": "ross",
                               "event_year": "1872"}, 4),
        # A deceased woman aged 80 in 1875 (born ~1795).
        Record(6, 4, Role.DD, {"first_name": "ann", "surname": "ross",
                               "gender": "f", "event_year": "1875",
                               "age": "80"}, 5),
        # A birth father in 1872 on certificate 2.
        Record(7, 2, Role.BF, {"first_name": "james", "surname": "ross",
                               "event_year": "1872"}, 6),
    ]
    certs = [
        Certificate(1, CertificateType.BIRTH, 1870, "uig",
                    {Role.BB: 1, Role.BM: 4}),
        Certificate(2, CertificateType.BIRTH, 1872, "uig",
                    {Role.BB: 2, Role.BM: 5, Role.BF: 7}),
        Certificate(3, CertificateType.DEATH, 1890, "uig", {Role.DD: 3}),
        Certificate(4, CertificateType.DEATH, 1875, "uig", {Role.DD: 6}),
    ]
    return Dataset("c", records, certs)


@pytest.fixture()
def ctx():
    dataset = _dataset()
    return dataset, EntityStore(dataset), ConstraintChecker()


class TestRecordLevel:
    def test_two_babies_never_corefer(self, ctx):
        dataset, _, checker = ctx
        assert not checker.records_compatible(dataset.record(1), dataset.record(2))

    def test_same_certificate_never_corefer(self, ctx):
        dataset, _, checker = ctx
        assert not checker.records_compatible(dataset.record(2), dataset.record(5))

    def test_gender_mismatch(self, ctx):
        dataset, _, checker = ctx
        assert not checker.records_compatible(dataset.record(1), dataset.record(6))

    def test_temporal_violation(self, ctx):
        dataset, _, checker = ctx
        # Mother in 1870 (born 1815-1855) vs deceased born ~1795.
        assert not checker.records_compatible(dataset.record(4), dataset.record(6))

    def test_plausible_bb_dd_link(self, ctx):
        dataset, _, checker = ctx
        # Baby born 1870 vs a man who died 1890 aged 40 — born ~1850, so
        # ranges 1870 vs 1849-1851 do NOT overlap: rejected.
        assert not checker.records_compatible(dataset.record(1), dataset.record(3))

    def test_mother_roles_corefer(self, ctx):
        dataset, _, checker = ctx
        assert checker.records_compatible(dataset.record(4), dataset.record(5))


class TestEntityLevelPropagation:
    def test_merged_singleton_roles_conflict(self, ctx):
        dataset, store, checker = ctx
        # Record 4 (Bm 1870) could individually link to either Dd record
        # of a compatible woman; once an entity holds one Dd, another Dd
        # is impossible.  Construct: entity {4} + entity {6} blocked
        # already by temporal; use records 4,5 then a death.
        store.merge(4, 5)
        # A second death record for the merged mother-entity:
        assert checker.can_merge(store, dataset.record(4), dataset.record(5))

    def test_cert_disjointness_via_entities(self, ctx):
        dataset, store, checker = ctx
        # Merging 4 and 5 is fine; then record 1 (cert 1) cannot join an
        # entity containing record 4 (also cert 1) — besides roles, the
        # certificate overlap forbids it.
        store.merge(4, 5)
        ea = store.entity_of(4)
        eb = store.entity_of(1)
        assert not checker.entities_compatible(ea, eb)

    def test_propagation_disabled_falls_back_to_records(self, ctx):
        dataset, store, _ = ctx
        lax = ConstraintChecker(propagate=False)
        store.merge(4, 5)
        # Without propagation only record-level checks run.
        assert lax.can_merge(store, dataset.record(4), dataset.record(5))

    def test_entities_compatible_same_entity(self, ctx):
        _, store, checker = ctx
        entity = store.entity_of(1)
        assert checker.entities_compatible(entity, entity)

    def test_birth_interval_narrowing_blocks_late_link(self):
        # A mother seen at births 1861 and 1899: born in [1844, 1846]
        # satisfies neither alone... construct explicit narrowing.
        records = [
            Record(1, 1, Role.BM, {"event_year": "1861"}, 1),
            Record(2, 2, Role.BM, {"event_year": "1899"}, 1),
            Record(3, 3, Role.BB, {"event_year": "1810", "gender": "f"}, 2),
        ]
        certs = [
            Certificate(1, CertificateType.BIRTH, 1861, "uig", {Role.BM: 1}),
            Certificate(2, CertificateType.BIRTH, 1899, "uig", {Role.BM: 2}),
            Certificate(3, CertificateType.BIRTH, 1810, "uig", {Role.BB: 3}),
        ]
        dataset = Dataset("n", records, certs)
        store = EntityStore(dataset)
        checker = ConstraintChecker(temporal_slack_years=0)
        # Individually, Bb(1810) could be the Bm of 1861 (age 51) but the
        # merged entity of both Bm records implies birth in [1844, 1846].
        assert checker.records_compatible(dataset.record(3), dataset.record(1))
        store.merge(1, 2)
        assert not checker.can_merge(store, dataset.record(3), dataset.record(1))

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            ConstraintChecker(temporal_slack_years=-1)
