"""Memmap snapshot tier: raw artefacts, byte parity, fallback loads.

The pre-fork serving tier maps index arrays straight off the snapshot's
raw ``.npy`` tier instead of inflating ``.npz`` copies per process.
That is an optimisation, not a semantics change — so these tests pin
the contract: a memmap-loaded snapshot answers ``/v1/search`` and
``/v1/pedigree`` with responses *byte-identical* to an eager load, and
snapshots written before the raw tier existed (schema v1) still load
with ``memmap=True`` by falling back to the eager codec.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import SnapsConfig
from repro.index import (
    KeywordIndex,
    MemmapKeywordIndex,
    MemmapSimilarityIndex,
)
from repro.serve import ServeConfig, ServingApp
from repro.store import SnapshotStore
from repro.store import codecs


SEARCH_BODIES = [
    {"first_name": "john", "surname": "macdonald", "top": 10},
    {"first_name": "mary", "surname": "mackenzie", "top": 5},
    {"first_name": "jon", "surname": "macdonld", "top": 10},  # misspelled
]


@pytest.fixture(scope="module")
def graph_store(tmp_path_factory, resolved_tiny, tiny_pedigree_graph):
    """One snapshot carrying graph + indexes + the raw memmap tier."""
    store = SnapshotStore(tmp_path_factory.mktemp("memmap-store"))
    manifest = store.save(
        resolved_tiny, graph=tiny_pedigree_graph, config=SnapsConfig()
    )
    return store, manifest


def _app(loaded) -> ServingApp:
    return ServingApp(
        loaded.graph,
        ServeConfig(cache_size=0),
        keyword_index=loaded.keyword_index,
        sim_index=loaded.sim_index,
        manifest=loaded.manifest,
    )


class TestRawTier:
    def test_manifest_records_raw_artifacts(self, graph_store):
        _, manifest = graph_store
        assert manifest.schema_version == 2
        assert manifest.raw_artifacts
        assert any(
            name.endswith(".npy") for name in manifest.raw_artifacts
        )

    def test_raw_files_exist_and_checksum(self, graph_store):
        store, manifest = graph_store
        assert store.verify(manifest.snapshot_id) == []
        directory = store.root / "snapshots" / manifest.snapshot_id
        for name in manifest.raw_artifacts:
            assert (directory / name).exists(), name

    def test_memmap_load_maps_arrays(self, graph_store):
        store, manifest = graph_store
        loaded = store.load(
            manifest.snapshot_id, artifacts=("graph", "indexes"), memmap=True
        )
        assert loaded.memmapped
        assert isinstance(loaded.keyword_index, MemmapKeywordIndex)
        for sub in loaded.sim_index.values():
            assert isinstance(sub, MemmapSimilarityIndex)
        # The posting arrays must actually be memory-mapped, not copies.
        assert any(
            isinstance(getattr(loaded.keyword_index, attr, None), np.memmap)
            for attr in vars(loaded.keyword_index)
        )

    def test_raw_tier_does_not_change_snapshot_id(
        self, graph_store, resolved_tiny, tiny_pedigree_graph, tmp_path
    ):
        """Content address covers the logical artefacts only."""
        _, manifest = graph_store
        again = SnapshotStore(tmp_path / "again").save(
            resolved_tiny, graph=tiny_pedigree_graph, config=SnapsConfig()
        )
        assert again.snapshot_id == manifest.snapshot_id


class TestByteParity:
    @pytest.fixture(scope="class")
    def apps(self, graph_store):
        store, manifest = graph_store
        eager = store.load(manifest.snapshot_id, artifacts=("graph", "indexes"))
        mapped = store.load(
            manifest.snapshot_id, artifacts=("graph", "indexes"), memmap=True
        )
        assert not eager.memmapped and mapped.memmapped
        return _app(eager), _app(mapped)

    @pytest.mark.parametrize("body", SEARCH_BODIES, ids=["hit", "narrow", "fuzzy"])
    def test_search_bytes_identical(self, apps, body):
        eager_app, mapped_app = apps
        raw = json.dumps(body).encode("utf-8")
        eager = eager_app.handle("POST", "/v1/search", {}, raw)
        mapped = mapped_app.handle("POST", "/v1/search", {}, raw)
        assert eager.status == mapped.status == 200
        assert eager.body == mapped.body

    def test_pedigree_bytes_identical(self, apps):
        eager_app, mapped_app = apps
        raw = json.dumps(SEARCH_BODIES[0]).encode("utf-8")
        hits = json.loads(
            eager_app.handle("POST", "/v1/search", {}, raw).body
        )["matches"]
        assert hits, "probe search must match for the pedigree leg"
        root = hits[0]["entity"]["entity_id"]
        path = f"/v1/pedigree/{root}"
        params = {"generations": "3"}
        eager = eager_app.handle("GET", path, params, b"")
        mapped = mapped_app.handle("GET", path, params, b"")
        assert eager.status == mapped.status == 200
        assert eager.body == mapped.body


class TestFallback:
    def test_old_snapshot_without_raw_tier_still_loads(
        self, resolved_tiny, tiny_pedigree_graph, tmp_path
    ):
        """A schema-v1 snapshot (pre raw tier) under ``memmap=True``."""
        store = SnapshotStore(tmp_path / "old-store")
        manifest = store.save(
            resolved_tiny, graph=tiny_pedigree_graph, config=SnapsConfig()
        )
        directory = store.root / "snapshots" / manifest.snapshot_id
        # Rewind the snapshot to the pre-raw-tier layout in place.
        raw_dir = directory / codecs.RAW_DIRNAME
        for path in sorted(raw_dir.glob("*")):
            path.unlink()
        raw_dir.rmdir()
        manifest_path = directory / "manifest.json"
        blob = json.loads(manifest_path.read_text())
        blob.pop("raw_artifacts", None)
        blob["schema_version"] = 1
        manifest_path.write_text(json.dumps(blob))

        loaded = store.load(
            manifest.snapshot_id, artifacts=("graph", "indexes"), memmap=True
        )
        assert not loaded.memmapped
        assert isinstance(loaded.keyword_index, KeywordIndex)
        raw = json.dumps(SEARCH_BODIES[0]).encode("utf-8")
        response = _app(loaded).handle("POST", "/v1/search", {}, raw)
        assert response.status == 200
