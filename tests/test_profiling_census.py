"""Profiling over census roles and multi-role populations."""

import pytest

from repro.data.roles import CENSUS_ROLES, Role
from repro.data.synthetic import make_ios_census_dataset
from repro.eval.profiling import attribute_profile, rank_frequency_series


@pytest.fixture(scope="module")
def census_dataset():
    return make_ios_census_dataset(scale=0.05, seed=53)


class TestCensusProfiling:
    def test_profile_over_census_roles(self, census_dataset):
        profile = attribute_profile(
            census_dataset, "first_name", roles=CENSUS_ROLES
        )
        assert profile.n_records > 0
        assert profile.min_freq >= 1

    def test_age_nearly_complete_in_census(self, census_dataset):
        profile = attribute_profile(census_dataset, "age", roles=CENSUS_ROLES)
        # The corruption model blanks only a few percent of ages.
        assert profile.missing < profile.n_records * 0.1

    def test_rank_frequency_over_all_roles(self, census_dataset):
        series = rank_frequency_series(
            census_dataset, "surname", roles=list(Role), top_k=50
        )
        assert series
        counts = [c for _, c in series]
        assert counts == sorted(counts, reverse=True)

    def test_profile_empty_role_set(self, census_dataset):
        profile = attribute_profile(census_dataset, "first_name", roles=())
        assert profile.n_records == 0
        assert profile.missing == 0
        assert profile.avg_freq == 0.0
