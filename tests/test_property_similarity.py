"""Hypothesis property tests for the similarity substrate.

These are the invariants every comparator must satisfy regardless of
input: range [0, 1], symmetry, identity, and agreement between the
distance and similarity forms.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.jaccard import dice_similarity, jaccard_similarity, token_jaccard
from repro.similarity.levenshtein import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.phonetic import nysiis, soundex
from repro.similarity.qgram import qgram_similarity, qgrams
from repro.similarity.registry import name_similarity

names = st.text(alphabet=string.ascii_lowercase + " '", min_size=0, max_size=20)
words = st.text(alphabet=string.ascii_lowercase, min_size=0, max_size=15)


class TestRangeAndSymmetry:
    @given(a=names, b=names)
    def test_jaro_range_symmetry(self, a, b):
        s = jaro_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == jaro_similarity(b, a)

    @given(a=names, b=names)
    def test_jaro_winkler_range_symmetry(self, a, b):
        s = jaro_winkler_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == jaro_winkler_similarity(b, a)

    @given(a=names, b=names)
    def test_jaro_winkler_geq_jaro(self, a, b):
        assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12

    @given(a=names, b=names)
    def test_levenshtein_similarity_range(self, a, b):
        s = levenshtein_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == levenshtein_similarity(b, a)

    @given(a=names, b=names)
    def test_qgram_range_symmetry(self, a, b):
        s = qgram_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == qgram_similarity(b, a)

    @given(a=names, b=names)
    def test_token_jaccard_range(self, a, b):
        assert 0.0 <= token_jaccard(a, b) <= 1.0

    @given(a=names, b=names)
    def test_name_similarity_range_symmetry(self, a, b):
        s = name_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == name_similarity(b, a)


class TestIdentity:
    @given(a=names)
    def test_self_similarity_is_one(self, a):
        assert jaro_winkler_similarity(a, a) == 1.0
        assert levenshtein_similarity(a, a) == 1.0
        assert qgram_similarity(a, a) == 1.0
        assert name_similarity(a, a) == 1.0

    @given(a=names)
    def test_self_distance_is_zero(self, a):
        assert levenshtein_distance(a, a) == 0
        assert damerau_levenshtein_distance(a, a) == 0


class TestDistanceProperties:
    @given(a=words, b=words)
    def test_levenshtein_bounds(self, a, b):
        d = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(a=words, b=words)
    def test_damerau_leq_levenshtein(self, a, b):
        assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)

    @given(a=words, b=words, c=words)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(a=words, b=words)
    def test_zero_distance_iff_equal(self, a, b):
        assert (levenshtein_distance(a, b) == 0) == (a == b)


class TestSetSimilarities:
    @given(
        a=st.frozensets(st.integers(0, 20), max_size=10),
        b=st.frozensets(st.integers(0, 20), max_size=10),
    )
    def test_jaccard_dice_relationship(self, a, b):
        j = jaccard_similarity(a, b)
        d = dice_similarity(a, b)
        assert 0.0 <= j <= d <= 1.0
        if 0 < j < 1:
            # d = 2j / (1 + j)
            assert abs(d - 2 * j / (1 + j)) < 1e-12


class TestPhonetic:
    @given(a=words)
    def test_soundex_shape(self, a):
        code = soundex(a)
        assert len(code) == 4
        assert code[0].isalpha() or code[0] == "0"
        assert all(c.isdigit() or c.isalpha() for c in code)

    @given(a=words)
    def test_soundex_deterministic(self, a):
        assert soundex(a) == soundex(a)

    @given(a=words)
    def test_nysiis_deterministic_and_upper(self, a):
        code = nysiis(a)
        assert code == nysiis(a)
        assert code == code.upper()


class TestQgrams:
    @given(a=words, q=st.integers(1, 4))
    def test_qgram_count_bound(self, a, q):
        grams = qgrams(a, q=q)
        if len(a) >= q:
            assert len(grams) <= len(a) - q + 1
        for gram in grams:
            assert gram in a
