"""Parallel resolution parity: every worker count is byte-identical to serial.

The parallel substrate (``repro.parallel``) promises that worker count is
an execution detail with no influence on output.  These tests pin that
promise at every layer: vectorised MinHash rows vs scalar signatures,
batch pair scores vs the scorer's uncached paths, entity clusters at the
API level, pedigree bytes at the CLI level, and checkpoint resume across
worker counts.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.lsh import LshBlocker
from repro.blocking.minhash import _MAX_HASH, MinHasher
from repro.cli import main
from repro.core.config import SnapsConfig
from repro.core.dependency_graph import build_dependency_graph
from repro.core.resolver import SnapsResolver
from repro.core.scoring import NameFrequencyIndex, PairScorer
from repro.data.loader import save_dataset_csv
from repro.data.records import Record
from repro.data.roles import Role
from repro.data.synthetic import make_tiny_dataset
from repro.faults import InjectedFault, injected
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    ParallelConfig,
    parallel_graph_and_seeds,
)

np = pytest.importorskip("numpy")

# Unicode-heavy strategy: historical name data carries accents, ligatures
# and the occasional surrogate-free oddity; the vectorised path must agree
# on all of them, including strings too short to produce a single q-gram.
texts = st.text(min_size=0, max_size=24)
short_texts = st.text(
    alphabet=string.ascii_lowercase + "áéîøü 'æ-", min_size=0, max_size=3
)


def clusters_of(result):
    """Canonical cluster representation for equality checks."""
    return sorted(
        tuple(sorted(e.record_ids)) for e in result.entities.entities()
    )


# ----------------------------------------------------------------------
# Vectorised MinHash == scalar MinHash
# ----------------------------------------------------------------------


class TestSignatureMatrixParity:
    @given(values=st.lists(texts, min_size=1, max_size=12))
    @settings(max_examples=60)
    def test_matrix_rows_equal_scalar_signatures(self, values):
        hasher = MinHasher(n_hashes=32, seed=7)
        matrix = hasher.signature_matrix(values)
        assert matrix.shape == (len(values), 32)
        for value, row in zip(values, matrix.tolist()):
            assert tuple(row) == hasher.signature(value)

    @given(values=st.lists(short_texts, min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_gramless_strings_agree_with_scalar(self, values):
        """Empty / sub-q-gram strings hit the sentinel path on both sides."""
        hasher = MinHasher(n_hashes=16, q=2, seed=3)
        matrix = hasher.signature_matrix(values)
        for value, row in zip(values, matrix.tolist()):
            assert tuple(row) == hasher.signature(value)

    def test_matrix_matches_across_instances(self):
        values = ["john smith", "jon smith", "euphemia macdonald", ""]
        a = MinHasher(n_hashes=64, seed=42).signature_matrix(values)
        b = MinHasher(n_hashes=64, seed=42).signature_matrix(values)
        assert (a == b).all()


class TestEmptySignatureSentinel:
    """Regression: the empty-signature sentinel must never co-block with
    a real name.  The sentinel rows are all ``_MAX_HASH + 1`` — strictly
    above any attainable hash — so no LSH band of a real signature can
    equal the corresponding sentinel band."""

    def test_empty_signature_is_cached_sentinel(self):
        hasher = MinHasher(n_hashes=16, q=2, seed=1)
        empty = hasher.signature("")
        assert empty is hasher.signature("")  # one shared sentinel object
        assert all(v > _MAX_HASH for v in empty)
        # Real signatures (qgrams pads, so even 1-char strings gram) stay
        # within the attainable hash range — strictly below the sentinel.
        assert all(v <= _MAX_HASH for v in hasher.signature("x"))

    @given(first=st.text(string.ascii_lowercase, min_size=2, max_size=12))
    @settings(max_examples=40)
    def test_sentinel_never_shares_a_band_with_real_names(self, first):
        blocker = LshBlocker(n_bands=8, rows_per_band=4, seed=9)
        real = blocker.block_keys(
            Record(1, 1, Role.BM, {"first_name": first, "surname": first,
                                   "event_year": "1880"}, 1)
        )
        hasher = blocker._hasher
        sentinel = hasher.signature("")
        r = blocker.rows_per_band
        sentinel_keys = [
            f"{band}:{hash(sentinel[band * r:(band + 1) * r]) & 0xFFFFFFFF:x}"
            for band in range(blocker.n_bands)
        ]
        assert not set(real) & set(sentinel_keys)

    def test_matrix_sentinel_rows_match_scalar_sentinel(self):
        hasher = MinHasher(n_hashes=16, q=2, seed=5)
        matrix = hasher.signature_matrix(["", "a", "real name"])
        assert tuple(matrix[0].tolist()) == hasher.signature("")
        assert tuple(matrix[1].tolist()) == hasher.signature("a")
        assert tuple(matrix[2].tolist()) == hasher.signature("real name")


# ----------------------------------------------------------------------
# Batch pair scoring == PairScorer's uncached paths
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_dataset(seed=3)


class TestBatchScoreParity:
    def test_seeded_scores_equal_uncached_scorer(self, tiny):
        config = SnapsConfig()
        resolver = SnapsResolver(config)
        pairs = resolver.block(tiny)
        serial_graph = build_dependency_graph(tiny, pairs, config, resolver.registry)
        parallel_graph, seeds = parallel_graph_and_seeds(
            tiny, pairs, config, 1, ParallelConfig(workers=1)
        )
        assert set(parallel_graph.nodes) == set(serial_graph.nodes)
        assert seeds.node_scores  # precompute actually produced scores
        scorer = PairScorer(
            tiny, config, resolver.registry, NameFrequencyIndex(tiny)
        )
        for key, node in serial_graph.nodes.items():
            s_a, s_d = seeds.node_scores[key]
            assert s_a == scorer._atomic_similarity_uncached(node)
            assert s_d == scorer._disambiguation_similarity_uncached(node)

    def test_parallel_graph_structure_matches_serial(self, tiny):
        config = SnapsConfig()
        resolver = SnapsResolver(config)
        pairs = resolver.block(tiny)
        serial = build_dependency_graph(tiny, pairs, config, resolver.registry)
        parallel, _ = parallel_graph_and_seeds(
            tiny, pairs, config, 1, ParallelConfig(workers=1)
        )
        assert list(parallel.nodes) == list(serial.nodes)  # insertion order
        assert parallel.n_atomic == serial.n_atomic
        for key, node in serial.nodes.items():
            other = parallel.nodes[key]
            assert other.group == node.group
            assert set(other.atomic) == set(node.atomic)
            for name, atomic in node.atomic.items():
                assert other.atomic[name].key() == atomic.key()
                assert other.atomic[name].similarity == atomic.similarity


# ----------------------------------------------------------------------
# API-level cluster parity (including a genuine process pool)
# ----------------------------------------------------------------------


class TestResolveParity:
    @pytest.fixture(scope="class")
    def serial(self, tiny):
        return SnapsResolver(SnapsConfig()).resolve(
            tiny, parallel=ParallelConfig(workers=0)
        )

    def test_in_process_parallel_matches_serial(self, tiny, serial):
        result = SnapsResolver(SnapsConfig()).resolve(
            tiny, parallel=ParallelConfig(workers=1)
        )
        assert clusters_of(result) == clusters_of(serial)

    def test_real_pool_matches_serial(self, tiny, serial):
        # oversubscribe forces an actual ProcessPoolExecutor even on a
        # single-core machine, exercising fork payload shipping + IPC.
        result = SnapsResolver(SnapsConfig()).resolve(
            tiny, parallel=ParallelConfig(workers=2, oversubscribe=True)
        )
        assert clusters_of(result) == clusters_of(serial)

    def test_output_metrics_match_serial(self, tiny):
        def run(workers):
            metrics = MetricsRegistry()
            SnapsResolver(SnapsConfig()).resolve(
                tiny, metrics=metrics, parallel=ParallelConfig(workers=workers)
            )
            counters = metrics.as_dict()["counters"]
            return {
                name: count
                for name, count in counters.items()
                if name.startswith(("blocking.", "constraints.", "merge.",
                                    "bootstrap.", "resolver."))
            }

        assert run(1) == run(0)

    def test_parallel_run_reports_cache_metrics(self, tiny):
        metrics = MetricsRegistry()
        SnapsResolver(SnapsConfig()).resolve(
            tiny, metrics=metrics, parallel=ParallelConfig(workers=1)
        )
        snapshot = metrics.as_dict()
        assert snapshot["gauges"]["parallel.workers"] == 1
        assert snapshot["counters"]["parallel.chunks"] >= 1
        assert "scoring.sim_cache.hits" in snapshot["counters"]
        assert "scoring.node_cache.hits" in snapshot["counters"]
        assert "scoring.propagate_memo.hits" in snapshot["counters"]
        assert snapshot["gauges"]["scoring.sim_cache.size"] > 0


# ----------------------------------------------------------------------
# CLI end-to-end byte identity + checkpoint compatibility
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def stem(tmp_path_factory):
    root = tmp_path_factory.mktemp("parallel-data")
    stem = root / "tiny"
    save_dataset_csv(make_tiny_dataset(seed=3), stem)
    return stem


@pytest.fixture(scope="module")
def serial_graph_bytes(stem, tmp_path_factory):
    out = tmp_path_factory.mktemp("parallel-serial") / "graph.json"
    assert main([
        "resolve", "--data", str(stem), "--workers", "0", "--out", str(out)
    ]) == 0
    return out.read_bytes()


class TestCliParity:
    # The tiny dataset sits below ParallelConfig.min_records, so auto mode
    # would stay serial — every case passes --workers explicitly.
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_byte_identical_to_serial(
        self, workers, stem, serial_graph_bytes, tmp_path
    ):
        out = tmp_path / "graph.json"
        assert main([
            "resolve", "--data", str(stem),
            "--workers", str(workers), "--out", str(out),
        ]) == 0
        assert out.read_bytes() == serial_graph_bytes

    @pytest.mark.parametrize("resume_workers", ["0", "1"])
    def test_checkpoint_crosses_worker_counts(
        self, resume_workers, stem, serial_graph_bytes, tmp_path
    ):
        """Crash under --workers 4, resume under another count: identical."""
        ckdir, out = tmp_path / "ck", tmp_path / "graph.json"
        with injected("checkpoint.saved.bootstrap:error:times=1"):
            with pytest.raises(InjectedFault):
                main([
                    "resolve", "--data", str(stem), "--workers", "4",
                    "--checkpoint", str(ckdir), "--out", str(out),
                ])
        assert not out.exists()
        assert main([
            "resolve", "--resume", str(ckdir),
            "--workers", resume_workers, "--out", str(out),
        ]) == 0
        assert out.read_bytes() == serial_graph_bytes
