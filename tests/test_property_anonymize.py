"""Hypothesis property tests for the anonymisation subsystem."""

import string

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.anonymize.causes import NOT_KNOWN, CauseOfDeathAnonymiser, age_band
from repro.anonymize.dates import DateShifter
from repro.anonymize.names import NameAnonymiser, cluster_names

name_strategy = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=12)
name_lists = st.lists(name_strategy, min_size=1, max_size=15, unique=True)


class TestClusterProperties:
    @given(names=name_lists)
    @settings(max_examples=40)
    def test_clusters_partition_input(self, names):
        clusters = cluster_names(names)
        flattened = sorted(n for c in clusters for n in c)
        assert flattened == sorted(set(names))

    @given(names=name_lists)
    @settings(max_examples=40)
    def test_no_empty_clusters(self, names):
        assert all(cluster for cluster in cluster_names(names))


class TestNameAnonymiserProperties:
    public = ["karen", "susan", "linda", "donna", "cynthia", "pamela",
              "sharon", "brenda", "diane", "janice"]

    @given(names=name_lists)
    @settings(max_examples=40)
    def test_total_and_injective(self, names):
        anonymiser = NameAnonymiser.fit(names, self.public, seed=1)
        assert set(anonymiser.mapping) == set(names)
        values = list(anonymiser.mapping.values())
        assert len(values) == len(set(values))

    @given(names=name_lists)
    @settings(max_examples=40)
    def test_deterministic(self, names):
        a = NameAnonymiser.fit(names, self.public, seed=5)
        b = NameAnonymiser.fit(names, self.public, seed=5)
        assert a.mapping == b.mapping

    @given(names=name_lists, token=name_strategy)
    @settings(max_examples=40)
    def test_anonymise_never_leaks_sensitive_names(self, names, token):
        assume(token not in self.public)
        anonymiser = NameAnonymiser.fit(names, self.public, seed=2)
        out = anonymiser.anonymise(token)
        # Every output token derives from the public universe (possibly
        # suffixed for uniqueness), never from the sensitive one.
        for output_token in out.split():
            assert not any(output_token == sensitive for sensitive in names) or (
                token in names and False
            ) or output_token not in names


class TestDateShifterProperties:
    @given(offset=st.integers(-50, 50).filter(lambda x: x != 0),
           years=st.lists(st.integers(1700, 2000), min_size=2, max_size=10))
    def test_distances_preserved(self, offset, years):
        shifter = DateShifter(offset=offset)
        shifted = [shifter.shift_year(y) for y in years]
        for (a, b), (sa, sb) in zip(zip(years, years[1:]), zip(shifted, shifted[1:])):
            assert b - a == sb - sa

    @given(seed=st.integers(0, 1000))
    def test_random_offset_in_documented_range(self, seed):
        shifter = DateShifter(seed=seed)
        offset = shifter.shift_year(0)
        assert 5 <= abs(offset) <= 25


class TestCauseAnonymiserProperties:
    @given(
        observations=st.lists(
            st.tuples(
                st.sampled_from(["phthisis", "bronchitis", "old age",
                                 "drowned", "measles", "rare odd cause"]),
                st.sampled_from(["m", "f"]),
                st.one_of(st.none(), st.integers(0, 100)),
            ),
            min_size=1,
            max_size=60,
        ),
        k=st.integers(2, 12),
    )
    @settings(max_examples=40)
    def test_output_is_frequent_or_not_known(self, observations, k):
        anonymiser = CauseOfDeathAnonymiser(k=k).fit(observations)
        frequent = {
            cause
            for causes in anonymiser._frequent.values()
            for cause in causes
        }
        for cause, gender, age in observations:
            out = anonymiser.anonymise(cause, gender, age)
            assert out == NOT_KNOWN or out in frequent

    @given(age=st.integers(0, 120))
    def test_age_band_total(self, age):
        assert age_band(age) in ("young", "middle", "old")
