"""Tests for q-gram extraction and similarity."""

import pytest

from repro.similarity.qgram import bigrams, qgram_similarity, qgrams


class TestQgrams:
    def test_basic_bigrams(self):
        assert qgrams("anna") == {"an", "nn", "na"}

    def test_padded(self):
        grams = qgrams("ab", q=2, padded=True)
        assert "#a" in grams and "b#" in grams

    def test_short_string_yields_itself(self):
        assert qgrams("a", q=2) == {"a"}

    def test_empty(self):
        assert qgrams("", q=2) == set()

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    def test_trigram(self):
        assert qgrams("abcd", q=3) == {"abc", "bcd"}

    def test_bigrams_helper(self):
        assert bigrams("john") == qgrams("john", q=2)


class TestQgramSimilarity:
    def test_identical(self):
        assert qgram_similarity("smith", "smith") == 1.0

    def test_disjoint(self):
        assert qgram_similarity("aaa", "zzz") == 0.0

    def test_overlap_in_range(self):
        assert 0.0 < qgram_similarity("macdonald", "mcdonald") < 1.0

    def test_symmetry(self):
        assert qgram_similarity("abcd", "bcde") == qgram_similarity("bcde", "abcd")

    def test_both_empty(self):
        assert qgram_similarity("", "") == 1.0

    def test_one_empty(self):
        assert qgram_similarity("abc", "") == 0.0
