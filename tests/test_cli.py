"""Tests for the command-line interface (in-process)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def simulated(tmp_path_factory):
    stem = tmp_path_factory.mktemp("cli") / "data"
    code = main(["simulate", "--dataset", "tiny", "--out", str(stem), "--seed", "3"])
    assert code == 0
    return stem


@pytest.fixture(scope="module")
def resolved(simulated, tmp_path_factory):
    graph_path = tmp_path_factory.mktemp("cli-graph") / "graph.json"
    code = main(["resolve", "--data", str(simulated), "--out", str(graph_path)])
    assert code == 0
    return graph_path


class TestSimulate:
    def test_writes_csvs(self, simulated):
        assert simulated.with_suffix(".records.csv").exists()
        assert simulated.with_suffix(".certs.csv").exists()

    def test_census_variant(self, tmp_path):
        stem = tmp_path / "census"
        code = main([
            "simulate", "--dataset", "ios-census", "--scale", "0.03",
            "--out", str(stem),
        ])
        assert code == 0


class TestResolve:
    def test_graph_written(self, resolved):
        assert resolved.exists()

    def test_ablation_flags_accepted(self, simulated, tmp_path):
        out = tmp_path / "g.json"
        code = main([
            "resolve", "--data", str(simulated), "--out", str(out),
            "--no-relational", "--no-refinement",
        ])
        assert code == 0


class TestTelemetry:
    def test_resolve_metrics_out_and_report(self, simulated, tmp_path, capsys):
        import json

        graph = tmp_path / "g.json"
        run = tmp_path / "run.json"
        code = main([
            "resolve", "--data", str(simulated), "--out", str(graph),
            "--metrics-out", str(run),
        ])
        assert code == 0
        report = json.loads(run.read_text())
        assert report["spans"][0]["name"] == "resolve"
        children = [c["name"] for c in report["spans"][0]["children"]]
        assert {"blocking", "graph", "bootstrap", "merge"} <= set(children)
        assert report["metrics"]["counters"]["blocking.candidate_pairs"] > 0
        assert "blocking.block_size" in report["metrics"]["histograms"]
        capsys.readouterr()
        code = main(["report", str(run)])
        out = capsys.readouterr().out
        assert code == 0
        assert "spans" in out and "blocking.candidate_pairs" in out

    def test_resolve_trace_flag(self, simulated, tmp_path, capsys):
        graph = tmp_path / "g.json"
        code = main([
            "-v", "resolve", "--data", str(simulated), "--out", str(graph),
            "--trace",
        ])
        captured = capsys.readouterr()
        # Reset the repro logger: the -v handler captured above holds the
        # test-scoped stderr, which is gone once capsys tears down.
        from repro.obs.logs import configure

        configure(0)
        assert code == 0
        assert "resolve" in captured.err and "counters" in captured.err

    def test_query_metrics_out(self, resolved, tmp_path):
        import json

        run = tmp_path / "q.json"
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald",
            "--metrics-out", str(run),
        ])
        assert code == 0
        report = json.loads(run.read_text())
        assert report["spans"][0]["name"] == "query"
        assert report["metrics"]["counters"]["query.searches"] == 1

    def test_report_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["report", str(bad)]) == 1


class TestQuery:
    def test_query_finds_hits(self, resolved, capsys):
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald", "--top", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "score" in out

    def test_query_no_match_exit_code(self, resolved):
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "zxzx", "--surname", "wvwv",
        ])
        assert code == 1

    def test_geo_flag(self, resolved):
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald",
            "--parish", "portree", "--geo",
        ])
        assert code in (0, 1)

    def test_json_format_matches_served_shape(self, resolved, capsys):
        import json

        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald",
            "--top", "3", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["matches"])
        top = payload["matches"][0]
        assert {"entity", "score_percent", "attribute_scores", "match_kinds"} \
            <= set(top)
        assert top["entity"]["entity_id"] >= 0


class TestPedigree:
    def _any_entity(self, resolved):
        from repro.pedigree import load_pedigree_graph

        graph = load_pedigree_graph(resolved)
        return next(e.entity_id for e in graph if graph.children(e.entity_id))

    @pytest.mark.parametrize("fmt,marker", [
        ("ascii", "==="),
        ("dot", "digraph"),
        ("gedcom", "0 HEAD"),
    ])
    def test_formats(self, resolved, capsys, fmt, marker):
        entity = self._any_entity(resolved)
        code = main([
            "pedigree", "--graph", str(resolved),
            "--entity", str(entity), "--format", fmt,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert marker in out

    def test_json_format(self, resolved, capsys):
        import json

        entity = self._any_entity(resolved)
        code = main([
            "pedigree", "--graph", str(resolved),
            "--entity", str(entity), "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["root_id"] == entity
        assert payload["count"] == len(payload["entities"])

    def test_unknown_entity(self, resolved):
        code = main([
            "pedigree", "--graph", str(resolved), "--entity", "999999",
        ])
        assert code == 1


class TestAnonymise:
    def test_round_trip(self, simulated, tmp_path):
        out = tmp_path / "anon"
        code = main([
            "anonymise", "--data", str(simulated), "--out", str(out),
            "--k", "5",
        ])
        assert code == 0
        assert out.with_suffix(".records.csv").exists()
