"""Tests for the command-line interface (in-process)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def simulated(tmp_path_factory):
    stem = tmp_path_factory.mktemp("cli") / "data"
    code = main(["simulate", "--dataset", "tiny", "--out", str(stem), "--seed", "3"])
    assert code == 0
    return stem


@pytest.fixture(scope="module")
def resolved(simulated, tmp_path_factory):
    graph_path = tmp_path_factory.mktemp("cli-graph") / "graph.json"
    code = main(["resolve", "--data", str(simulated), "--out", str(graph_path)])
    assert code == 0
    return graph_path


class TestSimulate:
    def test_writes_csvs(self, simulated):
        assert simulated.with_suffix(".records.csv").exists()
        assert simulated.with_suffix(".certs.csv").exists()

    def test_census_variant(self, tmp_path):
        stem = tmp_path / "census"
        code = main([
            "simulate", "--dataset", "ios-census", "--scale", "0.03",
            "--out", str(stem),
        ])
        assert code == 0


class TestResolve:
    def test_graph_written(self, resolved):
        assert resolved.exists()

    def test_ablation_flags_accepted(self, simulated, tmp_path):
        out = tmp_path / "g.json"
        code = main([
            "resolve", "--data", str(simulated), "--out", str(out),
            "--no-relational", "--no-refinement",
        ])
        assert code == 0


class TestQuery:
    def test_query_finds_hits(self, resolved, capsys):
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald", "--top", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "score" in out

    def test_query_no_match_exit_code(self, resolved):
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "zxzx", "--surname", "wvwv",
        ])
        assert code == 1

    def test_geo_flag(self, resolved):
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald",
            "--parish", "portree", "--geo",
        ])
        assert code in (0, 1)


class TestPedigree:
    def _any_entity(self, resolved):
        from repro.pedigree import load_pedigree_graph

        graph = load_pedigree_graph(resolved)
        return next(e.entity_id for e in graph if graph.children(e.entity_id))

    @pytest.mark.parametrize("fmt,marker", [
        ("ascii", "==="),
        ("dot", "digraph"),
        ("gedcom", "0 HEAD"),
    ])
    def test_formats(self, resolved, capsys, fmt, marker):
        entity = self._any_entity(resolved)
        code = main([
            "pedigree", "--graph", str(resolved),
            "--entity", str(entity), "--format", fmt,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert marker in out

    def test_unknown_entity(self, resolved):
        code = main([
            "pedigree", "--graph", str(resolved), "--entity", "999999",
        ])
        assert code == 1


class TestAnonymise:
    def test_round_trip(self, simulated, tmp_path):
        out = tmp_path / "anon"
        code = main([
            "anonymise", "--data", str(simulated), "--out", str(out),
            "--k", "5",
        ])
        assert code == 0
        assert out.with_suffix(".records.csv").exists()
