"""Tests for the command-line interface (in-process)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def simulated(tmp_path_factory):
    stem = tmp_path_factory.mktemp("cli") / "data"
    code = main(["simulate", "--dataset", "tiny", "--out", str(stem), "--seed", "3"])
    assert code == 0
    return stem


@pytest.fixture(scope="module")
def resolved(simulated, tmp_path_factory):
    graph_path = tmp_path_factory.mktemp("cli-graph") / "graph.json"
    code = main(["resolve", "--data", str(simulated), "--out", str(graph_path)])
    assert code == 0
    return graph_path


class TestSimulate:
    def test_writes_csvs(self, simulated):
        assert simulated.with_suffix(".records.csv").exists()
        assert simulated.with_suffix(".certs.csv").exists()

    def test_census_variant(self, tmp_path):
        stem = tmp_path / "census"
        code = main([
            "simulate", "--dataset", "ios-census", "--scale", "0.03",
            "--out", str(stem),
        ])
        assert code == 0


class TestResolve:
    def test_graph_written(self, resolved):
        assert resolved.exists()

    def test_ablation_flags_accepted(self, simulated, tmp_path):
        out = tmp_path / "g.json"
        code = main([
            "resolve", "--data", str(simulated), "--out", str(out),
            "--no-relational", "--no-refinement",
        ])
        assert code == 0


class TestTelemetry:
    def test_resolve_metrics_out_and_report(self, simulated, tmp_path, capsys):
        import json

        graph = tmp_path / "g.json"
        run = tmp_path / "run.json"
        code = main([
            "resolve", "--data", str(simulated), "--out", str(graph),
            "--metrics-out", str(run),
        ])
        assert code == 0
        report = json.loads(run.read_text())
        assert report["spans"][0]["name"] == "resolve"
        children = [c["name"] for c in report["spans"][0]["children"]]
        assert {"blocking", "graph", "bootstrap", "merge"} <= set(children)
        assert report["metrics"]["counters"]["blocking.candidate_pairs"] > 0
        assert "blocking.block_size" in report["metrics"]["histograms"]
        capsys.readouterr()
        code = main(["report", str(run)])
        out = capsys.readouterr().out
        assert code == 0
        assert "spans" in out and "blocking.candidate_pairs" in out

    def test_resolve_trace_flag(self, simulated, tmp_path, capsys):
        graph = tmp_path / "g.json"
        code = main([
            "-v", "resolve", "--data", str(simulated), "--out", str(graph),
            "--trace",
        ])
        captured = capsys.readouterr()
        # Reset the repro logger: the -v handler captured above holds the
        # test-scoped stderr, which is gone once capsys tears down.
        from repro.obs.logs import configure

        configure(0)
        assert code == 0
        assert "resolve" in captured.err and "counters" in captured.err

    def test_query_metrics_out(self, resolved, tmp_path):
        import json

        run = tmp_path / "q.json"
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald",
            "--metrics-out", str(run),
        ])
        assert code == 0
        report = json.loads(run.read_text())
        assert report["spans"][0]["name"] == "query"
        assert report["metrics"]["counters"]["query.searches"] == 1

    def test_report_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["report", str(bad)]) == 1

    def test_resolve_profile_lands_in_report(self, simulated, tmp_path):
        import json

        graph = tmp_path / "g.json"
        run = tmp_path / "run.json"
        collapsed = tmp_path / "profile.txt"
        code = main([
            "resolve", "--data", str(simulated), "--out", str(graph),
            "--metrics-out", str(run),
            "--profile", "--profile-out", str(collapsed),
        ])
        assert code == 0
        profile = json.loads(run.read_text())["profile"]
        assert profile["samples"] >= 0 and profile["interval_s"] > 0
        assert collapsed.exists()
        for line in collapsed.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) > 0

    def test_report_format_prom(self, simulated, tmp_path, capsys):
        from repro.obs.prom import check_exposition

        graph = tmp_path / "g.json"
        run = tmp_path / "run.json"
        assert main([
            "resolve", "--data", str(simulated), "--out", str(graph),
            "--metrics-out", str(run),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(run), "--format", "prom"]) == 0
        text = capsys.readouterr().out
        families = check_exposition(text)
        assert "snaps_blocking_candidate_pairs_total" in families
        assert families["snaps_blocking_block_size"]["type"] == "histogram"


class TestQuery:
    def test_query_finds_hits(self, resolved, capsys):
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald", "--top", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "score" in out

    def test_query_no_match_exit_code(self, resolved):
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "zxzx", "--surname", "wvwv",
        ])
        assert code == 1

    def test_geo_flag(self, resolved):
        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald",
            "--parish", "portree", "--geo",
        ])
        assert code in (0, 1)

    def test_json_format_matches_served_shape(self, resolved, capsys):
        import json

        code = main([
            "query", "--graph", str(resolved),
            "--first-name", "mary", "--surname", "macdonald",
            "--top", "3", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["matches"])
        top = payload["matches"][0]
        assert {"entity", "score_percent", "attribute_scores", "match_kinds"} \
            <= set(top)
        assert top["entity"]["entity_id"] >= 0


class TestPedigree:
    def _any_entity(self, resolved):
        from repro.pedigree import load_pedigree_graph

        graph = load_pedigree_graph(resolved)
        return next(e.entity_id for e in graph if graph.children(e.entity_id))

    @pytest.mark.parametrize("fmt,marker", [
        ("ascii", "==="),
        ("dot", "digraph"),
        ("gedcom", "0 HEAD"),
    ])
    def test_formats(self, resolved, capsys, fmt, marker):
        entity = self._any_entity(resolved)
        code = main([
            "pedigree", "--graph", str(resolved),
            "--entity", str(entity), "--format", fmt,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert marker in out

    def test_json_format(self, resolved, capsys):
        import json

        entity = self._any_entity(resolved)
        code = main([
            "pedigree", "--graph", str(resolved),
            "--entity", str(entity), "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["root_id"] == entity
        assert payload["count"] == len(payload["entities"])

    def test_unknown_entity(self, resolved):
        code = main([
            "pedigree", "--graph", str(resolved), "--entity", "999999",
        ])
        assert code == 1


class TestAnonymise:
    def test_round_trip(self, simulated, tmp_path):
        out = tmp_path / "anon"
        code = main([
            "anonymise", "--data", str(simulated), "--out", str(out),
            "--k", "5",
        ])
        assert code == 0
        assert out.with_suffix(".records.csv").exists()


class TestSnapshotCommands:
    @pytest.fixture(scope="class")
    def snapshot_store(self, simulated, tmp_path_factory):
        store = tmp_path_factory.mktemp("cli-store") / "store"
        code = main([
            "resolve", "--data", str(simulated), "--snapshot-out", str(store),
        ])
        assert code == 0
        return store

    def test_resolve_requires_some_output(self, simulated, capsys):
        code = main(["resolve", "--data", str(simulated)])
        assert code == 2
        assert "--snapshot-out" in capsys.readouterr().err

    def test_resolve_out_creates_parent_dirs(self, simulated, tmp_path):
        out = tmp_path / "deep" / "nested" / "graph.json"
        run = tmp_path / "also" / "missing" / "run.json"
        code = main([
            "resolve", "--data", str(simulated),
            "--out", str(out), "--metrics-out", str(run),
        ])
        assert code == 0
        assert out.exists() and run.exists()

    def test_store_layout(self, snapshot_store):
        assert (snapshot_store / "HEAD").exists()
        head = (snapshot_store / "HEAD").read_text().strip()
        assert (snapshot_store / "snapshots" / head / "manifest.json").exists()

    def test_snapshot_verify_ok(self, snapshot_store, capsys):
        code = main(["snapshot", "verify", "--store", str(snapshot_store)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_snapshot_log_and_inspect(self, snapshot_store, capsys):
        assert main(["snapshot", "log", "--store", str(snapshot_store)]) == 0
        log_out = capsys.readouterr().out
        assert "HEAD" in log_out and "parent" in log_out
        assert main(["snapshot", "inspect", "--store", str(snapshot_store)]) == 0
        inspect_out = capsys.readouterr().out
        assert "config fingerprint" in inspect_out
        assert "keyword_index.npz" in inspect_out

    def test_query_from_snapshot_matches_graph(
        self, snapshot_store, resolved, capsys
    ):
        assert main([
            "query", "--snapshot", str(snapshot_store),
            "--first-name", "john", "--surname", "macdonald",
        ]) == 0
        from_snapshot = capsys.readouterr().out
        assert main([
            "query", "--graph", str(resolved),
            "--first-name", "john", "--surname", "macdonald",
        ]) == 0
        from_graph = capsys.readouterr().out
        assert from_snapshot == from_graph

    def test_pedigree_from_snapshot(self, snapshot_store, capsys):
        code = main([
            "pedigree", "--snapshot", str(snapshot_store),
            "--entity", "16", "--generations", "1",
        ])
        assert code == 0

    def test_graph_and_snapshot_mutually_exclusive(self, snapshot_store, resolved):
        with pytest.raises(SystemExit):
            main([
                "query", "--graph", str(resolved),
                "--snapshot", str(snapshot_store),
                "--first-name", "a", "--surname", "b",
            ])

    def test_verify_detects_corruption(self, snapshot_store, capsys):
        head = (snapshot_store / "HEAD").read_text().strip()
        payload = snapshot_store / "snapshots" / head / "clusters.json"
        original = payload.read_text()
        try:
            payload.write_text(original + " ")
            code = main(["snapshot", "verify", "--store", str(snapshot_store)])
            assert code == 1
            assert "checksum mismatch" in capsys.readouterr().out
        finally:
            payload.write_text(original)

    def test_ingest_colliding_delta_fails_cleanly(
        self, snapshot_store, simulated, capsys
    ):
        code = main([
            "snapshot", "ingest", "--store", str(snapshot_store),
            "--data", str(simulated),
        ])
        assert code == 1
        assert "snapshot error" in capsys.readouterr().err

    def test_ingest_extends_lineage(self, snapshot_store, tmp_path, capsys):
        from repro.data.loader import load_dataset_csv, save_dataset_csv
        from tests.test_store import reidentify

        base = load_dataset_csv(
            snapshot_store / "snapshots"
            / (snapshot_store / "HEAD").read_text().strip() / "dataset"
        )
        delta = reidentify(base, "delta", 500000, 400000, 900000)
        # a small delta: keep only the first 4 certificates' records
        keep_certs = sorted(delta.certificates)[:4]
        from repro.data.records import Dataset

        certs = [delta.certificates[cid] for cid in keep_certs]
        rids = {rid for c in certs for rid in c.member_record_ids()}
        small = Dataset(
            "delta", [r for r in delta if r.record_id in rids], certs
        )
        stem = tmp_path / "delta"
        save_dataset_csv(small, stem)
        code = main([
            "snapshot", "ingest", "--store", str(snapshot_store),
            "--data", str(stem),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ingested" in out and "parent" in out
        assert main(["snapshot", "log", "--store", str(snapshot_store)]) == 0
        assert capsys.readouterr().out.count("snapshot ") >= 2
