"""Tests for the four baseline ER systems."""

import pytest

from repro.baselines import (
    AttrSimLinker,
    DepGraphLinker,
    RelClusterLinker,
    SupervisedLinker,
)
from repro.core import SnapsConfig
from repro.eval import evaluate_linkage


@pytest.fixture(scope="module")
def truth(tiny_dataset):
    return {rp: tiny_dataset.true_match_pairs(rp) for rp in ("Bp-Bp", "Bp-Dp")}


class TestAttrSim:
    @pytest.fixture(scope="class")
    def result(self, tiny_dataset):
        return AttrSimLinker().link(tiny_dataset)

    def test_produces_matches(self, result, truth):
        assert result.matched_pairs("Bp-Bp")

    def test_transitive_closure(self, result):
        """Components are closed: any two records in one component of the
        same role pair appear as a matched pair."""
        groups = result.components.groups()
        multi = [g for g in groups.values() if len(g) >= 3]
        if not multi:
            pytest.skip("no component of size 3+")
        pairs = result.matched_pairs("Bp-Bp")
        from repro.data.roles import Role

        for members in multi[:5]:
            parents = [
                rid for rid in members
                if result.dataset.record(rid).role in (Role.BM, Role.BF)
            ]
            for i, a in enumerate(parents):
                for b in parents[i + 1 :]:
                    ra, rb = result.dataset.record(a), result.dataset.record(b)
                    if ra.gender == rb.gender:
                        assert tuple(sorted((a, b))) in pairs

    def test_reasonable_recall(self, result, truth):
        ev = evaluate_linkage(result.matched_pairs("Bp-Bp"), truth["Bp-Bp"])
        assert ev.recall > 60.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AttrSimLinker(threshold=1.5)

    def test_timings_recorded(self, result):
        assert {"blocking", "comparison", "classification"} <= set(
            result.timings.times
        )


class TestDepGraph:
    def test_config_switches(self):
        linker = DepGraphLinker()
        assert linker.config.use_propagation
        assert not linker.config.use_ambiguity
        assert not linker.config.use_relational
        assert not linker.config.use_refinement

    def test_custom_thresholds_preserved(self):
        linker = DepGraphLinker(SnapsConfig(merge_threshold=0.9))
        assert linker.config.merge_threshold == 0.9
        assert not linker.config.use_ambiguity

    def test_runs_and_links(self, tiny_dataset, truth):
        result = DepGraphLinker().link(tiny_dataset)
        ev = evaluate_linkage(result.matched_pairs("Bp-Bp"), truth["Bp-Bp"])
        assert ev.recall > 30.0


class TestRelCluster:
    @pytest.fixture(scope="class")
    def result(self, tiny_dataset):
        return RelClusterLinker().link(tiny_dataset)

    def test_produces_clusters(self, result):
        assert result.merges > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RelClusterLinker(alpha=1.5)
        with pytest.raises(ValueError):
            RelClusterLinker(threshold=-0.1)

    def test_constraints_respected(self, result, tiny_dataset):
        from repro.data.roles import Role

        for entity in result.entities.entities(min_size=2):
            assert entity.role_counts.get(Role.BB, 0) <= 1
            assert entity.role_counts.get(Role.DD, 0) <= 1

    def test_quality_nontrivial(self, result, truth):
        ev = evaluate_linkage(result.matched_pairs("Bp-Bp"), truth["Bp-Bp"])
        assert ev.f_star > 20.0


class TestSupervised:
    @pytest.fixture(scope="class")
    def outcomes(self, tiny_dataset):
        return SupervisedLinker(seed=1).run(tiny_dataset, "Bp-Bp")

    def test_all_classifier_regime_combinations(self, outcomes):
        combos = {(o.classifier_name, o.regime) for o in outcomes}
        assert len(combos) == 8

    def test_predictions_restricted_to_role_pair(self, outcomes, tiny_dataset):
        from repro.data.roles import Role

        parents = {Role.BM, Role.BF, Role.DM, Role.DF}
        for outcome in outcomes:
            for a, b in list(outcome.predicted_pairs)[:50]:
                assert tiny_dataset.record(a).role in parents
                assert tiny_dataset.record(b).role in parents

    def test_quality_decent_per_role_pair(self, outcomes, truth):
        best = max(
            evaluate_linkage(o.predicted_pairs, truth["Bp-Bp"]).f_star
            for o in outcomes
            if o.regime == "per_role_pair"
        )
        assert best > 60.0

    def test_train_fraction_validation(self):
        with pytest.raises(ValueError):
            SupervisedLinker(train_fraction=0.0)

    def test_timings_present(self, outcomes):
        for outcome in outcomes:
            assert "train" in outcome.timings.times
            assert "predict" in outcome.timings.times
