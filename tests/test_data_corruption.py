"""Tests for the transcription-noise model."""

import pytest

from repro.data.corruption import CorruptionConfig, Corruptor
from repro.data.records import Record
from repro.data.roles import Role
from repro.data.synthetic import make_tiny_dataset
from repro.data.population import PopulationConfig, PopulationSimulator


def _record(**attrs):
    base = {"first_name": "catherine", "surname": "macdonald",
            "event_year": "1880", "age": "30",
            "occupation": "crofter", "address": "5 high street portree"}
    base.update(attrs)
    return Record(1, 1, Role.DD, base, 7)


class TestConfigValidation:
    def test_bad_probability(self):
        with pytest.raises(ValueError):
            CorruptionConfig(typo_prob=1.5)

    def test_bad_missing_prob(self):
        with pytest.raises(ValueError):
            CorruptionConfig(missing_probs={"x": -0.1})


class TestCorruptor:
    def test_ground_truth_preserved(self):
        corruptor = Corruptor(CorruptionConfig(seed=1))
        record = _record()
        corrupted = corruptor.corrupt_record(record)
        assert corrupted.person_id == record.person_id
        assert corrupted.record_id == record.record_id
        assert corrupted.role == record.role

    def test_deterministic_given_seed(self):
        clean = PopulationSimulator(
            PopulationConfig(start_year=1870, end_year=1880,
                             n_founder_couples=10, seed=2)
        ).run()
        a = Corruptor(CorruptionConfig(seed=3)).corrupt_dataset(clean)
        b = Corruptor(CorruptionConfig(seed=3)).corrupt_dataset(clean)
        for record in a:
            assert record.attributes == b.record(record.record_id).attributes

    def test_missing_values_injected_at_roughly_configured_rate(self):
        config = CorruptionConfig(
            typo_prob=0.0, variant_prob=0.0,
            missing_probs={"occupation": 0.5}, seed=4,
        )
        corruptor = Corruptor(config)
        missing = sum(
            1 for i in range(1000)
            if corruptor.corrupt_record(_record()).get("occupation") is None
        )
        assert 400 < missing < 600

    def test_zero_noise_is_identity(self):
        config = CorruptionConfig(
            typo_prob=0.0, variant_prob=0.0, age_error_prob=0.0,
            missing_probs={}, seed=1,
        )
        record = _record()
        assert Corruptor(config).corrupt_record(record).attributes == record.attributes

    def test_typos_change_single_characters(self):
        config = CorruptionConfig(
            typo_prob=1.0, variant_prob=0.0, age_error_prob=0.0,
            missing_probs={}, seed=5,
        )
        corruptor = Corruptor(config)
        from repro.similarity.levenshtein import damerau_levenshtein_distance
        for _ in range(50):
            corrupted = corruptor.corrupt_record(_record())
            name = corrupted.get("first_name")
            assert name is not None
            assert damerau_levenshtein_distance(name, "catherine") <= 2

    def test_variants_come_from_dictionary(self):
        from repro.data.names import NAME_VARIANTS
        config = CorruptionConfig(
            typo_prob=0.0, variant_prob=1.0, age_error_prob=0.0,
            missing_probs={}, seed=6,
        )
        corruptor = Corruptor(config)
        seen = {
            corruptor.corrupt_record(_record()).get("first_name")
            for _ in range(30)
        }
        allowed = set(NAME_VARIANTS["catherine"]) | {"catherine"}
        assert seen <= allowed

    def test_age_perturbation_is_one_year(self):
        config = CorruptionConfig(
            typo_prob=0.0, variant_prob=0.0, age_error_prob=1.0,
            missing_probs={}, seed=7,
        )
        corruptor = Corruptor(config)
        ages = {int(corruptor.corrupt_record(_record()).get("age")) for _ in range(20)}
        assert ages <= {29, 31}

    def test_corrupt_dataset_keeps_structure(self):
        dataset = make_tiny_dataset()
        corrupted = Corruptor(CorruptionConfig(seed=8)).corrupt_dataset(dataset)
        assert len(corrupted) == len(dataset)
        assert corrupted.certificates.keys() == dataset.certificates.keys()
