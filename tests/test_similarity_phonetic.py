"""Tests for Soundex and NYSIIS phonetic encodings."""

import pytest

from repro.similarity.phonetic import nysiis, soundex


class TestSoundex:
    @pytest.mark.parametrize(
        "name,code",
        [
            ("robert", "R163"),
            ("rupert", "R163"),
            ("ashcraft", "A261"),
            ("tymczak", "T522"),
            ("pfister", "P236"),
            ("honeyman", "H555"),
        ],
    )
    def test_reference_codes(self, name, code):
        assert soundex(name) == code

    def test_sound_alikes_collide(self):
        assert soundex("macdonald") == soundex("mcdonald")
        assert soundex("smith") == soundex("smyth")

    def test_padding(self):
        assert soundex("lee") == "L000"

    def test_empty_input(self):
        assert soundex("") == "0000"

    def test_non_alpha_only(self):
        assert soundex("123") == "0000"

    def test_case_insensitive(self):
        assert soundex("Campbell") == soundex("campbell")

    def test_custom_length(self):
        assert len(soundex("montgomery", length=6)) == 6


class TestNysiis:
    def test_mac_mc_collide(self):
        assert nysiis("macdonald") == nysiis("mcdonald")

    def test_deterministic(self):
        assert nysiis("catherine") == nysiis("catherine")

    def test_empty(self):
        assert nysiis("") == ""

    def test_distinct_names_distinct_codes(self):
        assert nysiis("campbell") != nysiis("stewart")

    def test_returns_upper(self):
        code = nysiis("brown")
        assert code == code.upper()
