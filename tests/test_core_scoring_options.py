"""Tests for the optional scoring features: temporal decay and geocoded
address comparison."""

import pytest

from repro.core.config import SnapsConfig
from repro.core.dependency_graph import AtomicNode, RelationalNode
from repro.core.scoring import PairScorer
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


def _two_mothers(year_b: int, address_b: str = "9 glen road uig"):
    records = [
        Record(1, 1, Role.BM, {"first_name": "mary", "surname": "ross",
                               "address": "5 high street uig",
                               "event_year": "1870"}, 1),
        Record(2, 2, Role.BM, {"first_name": "mary", "surname": "ross",
                               "address": address_b,
                               "event_year": str(year_b)}, 1),
    ]
    certs = [
        Certificate(1, CertificateType.BIRTH, 1870, "uig", {Role.BM: 1}),
        Certificate(2, CertificateType.BIRTH, year_b, "uig", {Role.BM: 2}),
    ]
    return Dataset("decay", records, certs)


def _node_with_names():
    node = RelationalNode(1, 2, (1, 2))
    node.atomic["first_name"] = AtomicNode("first_name", "mary", "mary", 1.0)
    node.atomic["surname"] = AtomicNode("surname", "ross", "ross", 1.0)
    return node


class TestTemporalDecay:
    def test_decay_softens_old_address_disagreement(self):
        dataset = _two_mothers(1890)  # 20-year gap, address changed
        node = _node_with_names()
        plain = PairScorer(dataset, SnapsConfig()).atomic_similarity(node)
        decayed = PairScorer(
            dataset, SnapsConfig(temporal_decay_half_life=10.0)
        ).atomic_similarity(node)
        assert decayed > plain

    def test_no_decay_for_small_gap(self):
        dataset = _two_mothers(1871)  # 1-year gap
        node = _node_with_names()
        plain = PairScorer(dataset, SnapsConfig()).atomic_similarity(node)
        decayed = PairScorer(
            dataset, SnapsConfig(temporal_decay_half_life=10.0)
        ).atomic_similarity(node)
        assert decayed == pytest.approx(plain, abs=0.02)

    def test_must_attributes_never_decay(self):
        # Disagreeing first names stay fatal regardless of gap.
        dataset = _two_mothers(1890)
        dataset.record(2).attributes["first_name"] = "flora"
        node = RelationalNode(1, 2, (1, 2))
        node.atomic["surname"] = AtomicNode("surname", "ross", "ross", 1.0)
        scorer = PairScorer(dataset, SnapsConfig(temporal_decay_half_life=5.0))
        # Must category contributes 0 with full weight.
        assert scorer.atomic_similarity(node) < 0.6

    def test_matched_extra_attribute_unaffected(self):
        dataset = _two_mothers(1890, address_b="5 high street uig")
        node = _node_with_names()
        node.atomic["address"] = AtomicNode(
            "address", "5 high street uig", "5 high street uig", 1.0
        )
        plain = PairScorer(dataset, SnapsConfig()).atomic_similarity(node)
        decayed = PairScorer(
            dataset, SnapsConfig(temporal_decay_half_life=10.0)
        ).atomic_similarity(node)
        assert decayed == pytest.approx(plain)

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            SnapsConfig(temporal_decay_half_life=0.0)

    def test_resolver_runs_with_decay(self, tiny_dataset):
        from repro.core import SnapsResolver

        result = SnapsResolver(
            SnapsConfig(temporal_decay_half_life=10.0)
        ).resolve(tiny_dataset)
        assert result.matched_pairs("Bp-Bp")


class TestGeocodedAddressConfig:
    def test_resolver_registers_geo_comparator(self):
        from repro.core import SnapsResolver

        resolver = SnapsResolver(SnapsConfig(use_geocoded_addresses=True))
        score = resolver.registry.compare(
            "address", "5 high street portree", "9 high street portree"
        )
        assert score == 1.0  # same street geocodes to the same point

    def test_default_keeps_token_comparator(self):
        from repro.core import SnapsResolver

        resolver = SnapsResolver(SnapsConfig())
        score = resolver.registry.compare(
            "address", "5 high street portree", "9 high street portree"
        )
        assert score < 1.0  # token overlap sees the differing number

    def test_resolver_runs_with_geocoding(self, tiny_dataset):
        from repro.core import SnapsResolver

        result = SnapsResolver(
            SnapsConfig(use_geocoded_addresses=True)
        ).resolve(tiny_dataset)
        assert result.matched_pairs("Bp-Bp")
