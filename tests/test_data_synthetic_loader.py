"""Tests for dataset builders, CSV round trips, and name normalisation."""

import pytest

from repro.data.loader import load_dataset_csv, save_dataset_csv
from repro.data.normalize import canonical_name, canonical_name_phrase
from repro.data.synthetic import make_bhic_dataset, make_ios_dataset, make_tiny_dataset


class TestSyntheticBuilders:
    def test_tiny_dataset_reproducible(self):
        a = make_tiny_dataset(seed=3)
        b = make_tiny_dataset(seed=3)
        assert len(a) == len(b)

    def test_scale_grows_dataset(self):
        small = make_ios_dataset(scale=0.05, seed=1)
        larger = make_ios_dataset(scale=0.15, seed=1)
        assert len(larger) > len(small)

    def test_bhic_window_grows_dataset(self):
        short = make_bhic_dataset(1920, 1935, scale=0.05)
        long = make_bhic_dataset(1900, 1935, scale=0.05)
        assert len(long) > len(short)

    def test_missing_values_present(self):
        dataset = make_ios_dataset(scale=0.05)
        n_missing_occ = sum(1 for r in dataset if r.get("occupation") is None)
        assert n_missing_occ > len(dataset) * 0.3

    def test_has_ground_truth_links(self):
        dataset = make_tiny_dataset()
        assert dataset.true_match_pairs("Bp-Bp")


class TestCsvRoundTrip:
    def test_round_trip_identical(self, tmp_path, tiny_dataset):
        stem = tmp_path / "tiny"
        save_dataset_csv(tiny_dataset, stem)
        loaded = load_dataset_csv(stem, name=tiny_dataset.name)
        assert len(loaded) == len(tiny_dataset)
        for record in tiny_dataset:
            other = loaded.record(record.record_id)
            assert other.role == record.role
            assert other.person_id == record.person_id
            # Attributes match modulo empty-string removal.
            original = {k: v for k, v in record.attributes.items() if v != ""}
            assert other.attributes == original

    def test_round_trip_certificates(self, tmp_path, tiny_dataset):
        stem = tmp_path / "tiny"
        save_dataset_csv(tiny_dataset, stem)
        loaded = load_dataset_csv(stem)
        for cert in tiny_dataset.certificates.values():
            other = loaded.certificates[cert.cert_id]
            assert other.cert_type == cert.cert_type
            assert other.year == cert.year
            assert other.roles == cert.roles

    def test_truth_preserved(self, tmp_path, tiny_dataset):
        stem = tmp_path / "t"
        save_dataset_csv(tiny_dataset, stem)
        loaded = load_dataset_csv(stem)
        assert loaded.true_match_pairs("Bp-Bp") == tiny_dataset.true_match_pairs("Bp-Bp")


class TestNormalize:
    @pytest.mark.parametrize(
        "variant,canonical",
        [
            ("effie", "euphemia"),
            ("maggie", "margaret"),
            ("wm", "william"),
            ("mcdonald", "macdonald"),
            ("m'leod", "macleod"),
        ],
    )
    def test_variant_mapping(self, variant, canonical):
        assert canonical_name(variant) == canonical

    def test_unknown_name_unchanged(self):
        assert canonical_name("zebedee") == "zebedee"

    def test_mac_names_not_double_prefixed(self):
        assert canonical_name("macdonald") == "macdonald"

    def test_phrase_normalises_tokens(self):
        assert canonical_name_phrase("mary effie") == "mary euphemia"

    def test_case_and_whitespace(self):
        assert canonical_name("  Effie ") == "euphemia"
