"""Tests for linkage metrics and dataset profiling."""

import pytest

from repro.eval import (
    ConfusionCounts,
    attribute_profile,
    confusion_counts,
    evaluate_linkage,
    f_measure,
    f_star,
    precision,
    rank_frequency_series,
    recall,
)


class TestConfusion:
    def test_counts(self):
        predicted = {(1, 2), (3, 4), (5, 6)}
        truth = {(1, 2), (7, 8)}
        counts = confusion_counts(predicted, truth)
        assert (counts.tp, counts.fp, counts.fn) == (1, 2, 1)

    def test_empty_sets(self):
        counts = confusion_counts(set(), set())
        assert (counts.tp, counts.fp, counts.fn) == (0, 0, 0)


class TestMetrics:
    def test_perfect_linkage(self):
        counts = ConfusionCounts(tp=10, fp=0, fn=0)
        assert precision(counts) == recall(counts) == f_star(counts) == 1.0

    def test_known_values(self):
        counts = ConfusionCounts(tp=6, fp=2, fn=4)
        assert precision(counts) == 0.75
        assert recall(counts) == 0.6
        assert f_star(counts) == 0.5

    def test_fstar_below_min_of_p_r(self):
        counts = ConfusionCounts(tp=6, fp=2, fn=4)
        assert f_star(counts) <= min(precision(counts), recall(counts))

    def test_fstar_monotone_transform_of_f(self):
        a = ConfusionCounts(tp=6, fp=2, fn=4)
        b = ConfusionCounts(tp=8, fp=2, fn=4)
        assert (f_star(a) < f_star(b)) == (f_measure(a) < f_measure(b))

    def test_fstar_equals_f_over_two_minus_f(self):
        counts = ConfusionCounts(tp=6, fp=2, fn=4)
        f = f_measure(counts)
        assert f_star(counts) == pytest.approx(f / (2 - f))

    def test_degenerate_conventions(self):
        empty = ConfusionCounts(tp=0, fp=0, fn=0)
        assert precision(empty) == recall(empty) == f_star(empty) == 1.0
        assert f_measure(ConfusionCounts(0, 0, 0)) == 1.0

    def test_evaluate_linkage_percentages(self):
        ev = evaluate_linkage({(1, 2)}, {(1, 2), (3, 4)}, "Bp-Bp")
        assert ev.precision == 100.0
        assert ev.recall == 50.0
        assert ev.f_star == 50.0
        assert ev.row()["role_pair"] == "Bp-Bp"


class TestProfiling:
    def test_attribute_profile_counts(self, tiny_dataset):
        from repro.data.roles import Role

        profile = attribute_profile(tiny_dataset, "occupation", roles=(Role.DD,))
        n_deceased = len(tiny_dataset.records_with_role([Role.DD]))
        assert profile.missing <= n_deceased
        assert profile.missing > 0  # occupation is mostly missing by design

    def test_profile_min_avg_max_ordering(self, tiny_dataset):
        profile = attribute_profile(tiny_dataset, "first_name")
        assert profile.min_freq <= profile.avg_freq <= profile.max_freq

    def test_rank_frequency_sorted(self, tiny_dataset):
        series = rank_frequency_series(tiny_dataset, "first_name", top_k=20)
        counts = [c for _, c in series]
        assert counts == sorted(counts, reverse=True)
        assert len(series) <= 20

    def test_rank_frequency_skewed(self, tiny_dataset):
        from repro.data.roles import Role

        series = rank_frequency_series(
            tiny_dataset, "surname", roles=list(Role), top_k=100
        )
        if len(series) >= 10:
            assert series[0][1] > series[-1][1]

    def test_profile_row_shape(self, tiny_dataset):
        row = attribute_profile(tiny_dataset, "surname").row()
        assert set(row) == {"attribute", "missing", "min", "avg", "max"}
