"""Tests for Record, Certificate, and Dataset containers."""

import pytest

from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role


def _birth_cert(cert_id=1, year=1870, baby_id=1, mother_id=2, father_id=3,
                person_offset=100):
    records = [
        Record(baby_id, cert_id, Role.BB,
               {"first_name": "john", "surname": "macleod", "gender": "m",
                "event_year": str(year)}, person_offset + 1),
        Record(mother_id, cert_id, Role.BM,
               {"first_name": "mary", "surname": "macleod",
                "event_year": str(year)}, person_offset + 2),
        Record(father_id, cert_id, Role.BF,
               {"first_name": "donald", "surname": "macleod",
                "event_year": str(year), "occupation": "crofter"},
               person_offset + 3),
    ]
    cert = Certificate(cert_id, CertificateType.BIRTH, year, "portree",
                       {Role.BB: baby_id, Role.BM: mother_id, Role.BF: father_id})
    return records, cert


class TestRecord:
    def test_get_returns_none_for_missing(self):
        record = Record(1, 1, Role.BB, {"first_name": ""}, 1)
        assert record.get("first_name") is None
        assert record.get("surname") is None

    def test_event_year(self):
        record = Record(1, 1, Role.BB, {"event_year": "1870"}, 1)
        assert record.event_year == 1870

    def test_event_year_missing_raises(self):
        record = Record(1, 1, Role.BB, {}, 1)
        with pytest.raises(ValueError):
            record.event_year

    def test_gender_from_role(self):
        record = Record(1, 1, Role.BM, {"event_year": "1870"}, 1)
        assert record.gender == "f"

    def test_age_parsing(self):
        record = Record(1, 1, Role.DD, {"age": "42", "event_year": "1890"}, 1)
        assert record.age == 42
        assert record.birth_range() == (1847, 1849)

    def test_equality_by_record_id(self):
        a = Record(5, 1, Role.BB, {}, 1)
        b = Record(5, 2, Role.DD, {}, 9)
        assert a == b and hash(a) == hash(b)


class TestCertificate:
    def test_birth_relationships(self):
        records, cert = _birth_cert()
        triples = cert.relationships()
        assert (2, "Mof", 1) in triples
        assert (3, "Fof", 1) in triples
        assert (2, "Sof", 3) in triples

    def test_death_relationships(self):
        cert = Certificate(1, CertificateType.DEATH, 1890, "strath",
                           {Role.DD: 1, Role.DM: 2, Role.DS: 4})
        triples = cert.relationships()
        assert (2, "Mof", 1) in triples
        assert (4, "Sof", 1) in triples
        # No father on this certificate.
        assert all("Fof" != rel for _, rel, _ in triples)

    def test_marriage_relationships(self):
        cert = Certificate(1, CertificateType.MARRIAGE, 1880, "sleat",
                           {Role.MB: 1, Role.MG: 2})
        assert cert.relationships() == [(1, "Sof", 2)]

    def test_record_id_lookup(self):
        _, cert = _birth_cert()
        assert cert.record_id(Role.BB) == 1
        assert cert.record_id(Role.DS) is None


class TestDataset:
    def test_construction_and_len(self):
        records, cert = _birth_cert()
        dataset = Dataset("t", records, [cert])
        assert len(dataset) == 3
        assert dataset.n_people() == 3

    def test_validation_rejects_dangling_reference(self):
        records, cert = _birth_cert()
        cert.roles[Role.DS] = 999
        with pytest.raises(ValueError):
            Dataset("t", records, [cert])

    def test_validation_rejects_role_mismatch(self):
        records, cert = _birth_cert()
        cert.roles[Role.BB], cert.roles[Role.BM] = cert.roles[Role.BM], cert.roles[Role.BB]
        with pytest.raises(ValueError):
            Dataset("t", records, [cert])

    def test_records_with_role(self):
        records, cert = _birth_cert()
        dataset = Dataset("t", records, [cert])
        assert [r.role for r in dataset.records_with_role([Role.BM])] == [Role.BM]

    def test_true_match_pairs_same_person_across_certs(self):
        records1, cert1 = _birth_cert(cert_id=1, baby_id=1, mother_id=2, father_id=3)
        records2, cert2 = _birth_cert(cert_id=2, year=1872, baby_id=4, mother_id=5,
                                      father_id=6, person_offset=200)
        # Make the two mothers the same person.
        records2[1].person_id = records1[1].person_id
        dataset = Dataset("t", records1 + records2, [cert1, cert2])
        assert dataset.true_match_pairs("Bp-Bp") == {(2, 5)}
        assert dataset.true_match_pairs("Bp-Dp") == set()

    def test_describe_counts(self, tiny_dataset):
        stats = tiny_dataset.describe()
        assert stats["records"] == len(tiny_dataset)
        assert (
            stats["birth_certs"] + stats["death_certs"] + stats["marriage_certs"]
            == stats["certificates"]
        )

    def test_certificate_of(self, tiny_dataset):
        record = next(iter(tiny_dataset))
        cert = tiny_dataset.certificate_of(record)
        assert cert.roles[record.role] == record.record_id
