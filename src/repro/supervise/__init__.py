"""Supervised worker execution shared by every multiprocess path.

Chunk pools (``repro.parallel``), shard fan-out (``repro.shard``), and
streaming ingest (``repro.stream``) all run pure tasks in worker
processes; this package gives them one substrate for liveness
(heartbeats + per-task deadlines), crash recovery (pool rebuild +
resubmit of incomplete tasks, byte-identical output), and poison-task
quarantine with durable JSONL evidence.  The planned pre-fork serving
tier reuses the same substrate for worker liveness.
"""

from repro.supervise.config import SuperviseConfig
from repro.supervise.executor import SupervisedExecutor, run_supervised
from repro.supervise.heartbeat import (
    HeartbeatWriter,
    clear_heartbeats,
    read_heartbeats,
)
from repro.supervise.quarantine import (
    TaskQuarantinedError,
    default_quarantine_dir,
    inputs_digest,
    write_quarantine_record,
)

__all__ = [
    "HeartbeatWriter",
    "SuperviseConfig",
    "SupervisedExecutor",
    "TaskQuarantinedError",
    "clear_heartbeats",
    "default_quarantine_dir",
    "inputs_digest",
    "read_heartbeats",
    "run_supervised",
    "write_quarantine_record",
]
