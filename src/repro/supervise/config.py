"""Supervision knobs shared by every multiprocess execution path.

The config is frozen so it can ride inside :class:`repro.parallel.config.
ParallelConfig` (itself frozen and hashable).  Like ``ParallelConfig``,
supervision settings are an *execution* detail: they never enter config
fingerprints, so the same dataset resolved with different timeouts or
retry budgets still lands on the same content-addressed snapshot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["SuperviseConfig"]

ENV_TIMEOUT = "SNAPS_TASK_TIMEOUT"
ENV_RETRIES = "SNAPS_TASK_RETRIES"
ENV_QUARANTINE = "SNAPS_QUARANTINE_DIR"


@dataclass(frozen=True)
class SuperviseConfig:
    """How the supervisor watches, retries, and quarantines worker tasks.

    ``task_timeout_s``
        Hard per-task deadline measured from the worker-side start of
        the attempt (heartbeat ``started`` stamp).  ``None`` disables
        hang detection; crash recovery and retries still apply.

    ``max_task_retries``
        Re-execution budget *per task* beyond the first attempt.  A task
        still failing after ``1 + max_task_retries`` charged attempts is
        quarantined.

    ``quarantine_dir``
        Where poison-task artifacts (``tasks.jsonl``) land.  ``None``
        defaults to ``<tmp>/snaps-quarantine`` at write time.

    ``on_quarantine``
        ``"abort"`` (default) raises ``TaskQuarantinedError`` naming the
        shard/chunk and the artifact; ``"skip"`` records the artifact
        and yields ``None`` for that task so callers that can degrade
        (a future serving tier) keep going.  The resolve paths force
        ``"abort"`` — a silently missing chunk would break the
        byte-identical-output guarantee.

    ``heartbeat_interval_s`` / ``poll_interval_s``
        Worker heartbeat touch cadence and supervisor wait granularity.
    """

    task_timeout_s: float | None = None
    max_task_retries: int = 2
    quarantine_dir: str | None = None
    on_quarantine: str = "abort"
    heartbeat_interval_s: float = 0.2
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.on_quarantine not in ("abort", "skip"):
            raise ValueError(
                f"on_quarantine must be 'abort' or 'skip', "
                f"got {self.on_quarantine!r}"
            )
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")

    @property
    def attempt_budget(self) -> int:
        """Total attempts a task may consume before quarantine."""
        return 1 + self.max_task_retries

    @classmethod
    def from_env(cls, environ: dict | None = None) -> "SuperviseConfig":
        """Defaults overlaid with ``SNAPS_TASK_*``/``SNAPS_QUARANTINE_DIR``."""
        env = os.environ if environ is None else environ
        config = cls()
        timeout = env.get(ENV_TIMEOUT, "").strip()
        if timeout:
            config = replace(config, task_timeout_s=float(timeout) or None)
        retries = env.get(ENV_RETRIES, "").strip()
        if retries:
            config = replace(config, max_task_retries=int(retries))
        quarantine = env.get(ENV_QUARANTINE, "").strip()
        if quarantine:
            config = replace(config, quarantine_dir=quarantine)
        return config
