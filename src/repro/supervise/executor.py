"""Supervised pool execution: deadlines, crash recovery, quarantine.

:class:`SupervisedExecutor` wraps a ``ProcessPoolExecutor`` (built by a
caller-supplied factory so chunk and shard runners keep their own fork/
spawn setup) and guarantees:

**Liveness.**  Every task attempt announces itself through a heartbeat
file (:mod:`repro.supervise.heartbeat`) before running.  A supervisor
loop polls the futures *and* the heartbeats; an attempt older than
``task_timeout_s`` is killed with SIGKILL, which breaks the pool and
routes recovery through the same path as a crash.

**Bounded deterministic re-execution.**  Tasks are pure functions of
their chunk/shard inputs, so re-running one is always safe.  When the
pool breaks (``BrokenProcessPool``/``EOFError``) the executor charges an
attempt to the *suspects* — the tasks whose heartbeats were still
``running`` — rebuilds the pool, and resubmits only the incomplete
tasks.  Completed results are never discarded and are returned strictly
in submission order, so output is byte-identical to serial no matter
where a worker died.  An ordinary exception raised *inside* a live
worker charges only that task and resubmits it in place (transient) or
quarantines it immediately (permanent/data) — no pool rebuild.

**Quarantine.**  A task still failing after ``1 + max_task_retries``
charged attempts is quarantined with a JSONL artifact
(:mod:`repro.supervise.quarantine`); the run aborts with an actionable
error naming the chunk/shard, or degrades per the ``skip`` policy.

**Deterministic chaos.**  Each attempt fires the injection site
``supervise.task.<label>.t<index>.a<attempt>``.  The attempt number in
the site name is what makes crash-once-then-recover reproducible:
rebuilt workers fork with fresh injector counters, but the retried
attempt runs under ``.a1``, which an ``.a0`` spec no longer matches.

Attribution is deliberately conservative: if the crashed worker died
before writing its heartbeat, every incomplete task is charged one
attempt for that break.  Over-charging an innocent task costs at most
its retry budget; under-charging a poison task would loop forever.
"""

from __future__ import annotations

import os
import signal
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from typing import Callable

from repro.faults import fire
from repro.faults.taxonomy import TRANSIENT, classify
from repro.supervise.config import SuperviseConfig
from repro.supervise.heartbeat import (
    RUNNING,
    HeartbeatWriter,
    clear_heartbeats,
    read_heartbeats,
)
from repro.supervise.quarantine import (
    TaskQuarantinedError,
    write_quarantine_record,
)

__all__ = ["SupervisedExecutor", "run_supervised"]

#: Exceptions that mean "the pool is dead", as opposed to "the task
#: raised": recovery rebuilds the pool and resubmits incomplete work.
_POOL_DEATH = (BrokenExecutor, EOFError)


def run_supervised(fn: Callable, task: object, meta: dict) -> object:
    """Worker-side shim: heartbeat + chaos site around the real task.

    Module-level so it pickles by reference for both fork and spawn
    pools.  ``meta`` carries the attempt identity assigned by the
    supervisor; the heartbeat is best-effort and adds one file write
    plus a touch thread per attempt.
    """
    hb_dir = meta.get("hb_dir")
    if hb_dir is None:
        fire(meta["site"])
        return fn(task)
    with HeartbeatWriter(
        hb_dir,
        index=meta["index"],
        label=meta["label"],
        attempt=meta["attempt"],
        interval_s=meta.get("hb_interval", 0.2),
    ):
        fire(meta["site"])
        return fn(task)


class _PoolBroken(Exception):
    """Internal: the pool died; ``suspects`` are charged an attempt."""

    def __init__(self, reason: str, suspects: list[int], hung: bool = False):
        super().__init__(reason)
        self.reason = reason
        self.suspects = suspects
        self.hung = hung


class SupervisedExecutor:
    """Run pure tasks on a rebuildable pool under supervision."""

    def __init__(
        self,
        pool_factory: Callable[[], object],
        config: SuperviseConfig | None = None,
        *,
        metrics=None,
        label: str = "task",
        task_name: Callable[[object, int], str] | None = None,
    ) -> None:
        self.pool_factory = pool_factory
        self.config = config if config is not None else SuperviseConfig.from_env()
        self.metrics = metrics
        self.label = label
        self.task_name = task_name or (lambda task, index: f"task {index}")
        self.restarts = 0
        self._pool = None
        self._hb_dir: str | None = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._shutdown_pool()
        if self._hb_dir is not None:
            clear_heartbeats(self._hb_dir)
            try:
                os.rmdir(self._hb_dir)
            except OSError:
                pass
            self._hb_dir = None

    def __enter__(self) -> "SupervisedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self.pool_factory()
        return self._pool

    def _shutdown_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = dict(getattr(pool, "_processes", None) or {})
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        # Discarded generations get no grace: a worker forked while
        # another thread held a lock (fork + threads) can deadlock
        # before ever serving a task, and concurrent.futures' atexit
        # hook would then join it forever, hanging interpreter exit.
        # Every result this pool owed has already been returned or
        # charged, so killing is always safe here.
        for pid in processes:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass

    def _rebuild_pool(self) -> None:
        self._shutdown_pool()
        if self._hb_dir is not None:
            clear_heartbeats(self._hb_dir)  # dead generation's evidence
        self.restarts += 1
        self._inc("supervise.restarts")

    def _inc(self, name: str, value: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value)

    # -- the supervised map --------------------------------------------

    def map(self, fn: Callable, tasks: list, label: str | None = None) -> list:
        """Run ``fn`` over ``tasks``; results in submission order.

        Quarantined tasks under the ``skip`` policy yield ``None`` at
        their position; under ``abort`` (the default) the first
        quarantine raises :class:`TaskQuarantinedError`.
        """
        if not tasks:
            return []
        label = label or self.label
        if self._hb_dir is None:
            self._hb_dir = tempfile.mkdtemp(prefix="snaps-heartbeats-")
        results: dict[int, object] = {}
        charged = [0] * len(tasks)
        errors: list[list[str]] = [[] for _ in tasks]
        skipped: set[int] = set()
        while len(results) < len(tasks):
            try:
                self._round(fn, tasks, label, results, charged, errors, skipped)
            except _PoolBroken as broken:
                for index in broken.suspects:
                    self._charge(
                        index,
                        tasks,
                        label,
                        charged,
                        errors,
                        f"pool broken while attempt {charged[index]} was "
                        f"running: {broken.reason}",
                        results=results,
                        skipped=skipped,
                        hung=broken.hung,
                    )
                self._rebuild_pool()
        return [results[index] for index in range(len(tasks))]

    def _meta(self, label: str, index: int, attempt: int) -> dict:
        return {
            "site": f"supervise.task.{label}.t{index}.a{attempt}",
            "index": index,
            "label": label,
            "attempt": attempt,
            "hb_dir": self._hb_dir,
            "hb_interval": self.config.heartbeat_interval_s,
        }

    def _round(
        self,
        fn: Callable,
        tasks: list,
        label: str,
        results: dict[int, object],
        charged: list[int],
        errors: list[list[str]],
        skipped: set[int],
    ) -> None:
        """One pool generation: submit incomplete tasks, drain or break."""
        pool = self._ensure_pool()
        futures: dict[Future, int] = {}

        def submit(index: int) -> None:
            meta = self._meta(label, index, charged[index])
            futures[pool.submit(run_supervised, fn, tasks[index], meta)] = index

        incomplete = [i for i in range(len(tasks)) if i not in results]
        try:
            for index in incomplete:
                submit(index)
        except _POOL_DEATH as exc:
            raise _PoolBroken(
                f"{type(exc).__name__}: {exc}", self._suspects(set(incomplete))
            ) from None
        while futures:
            done, _ = wait(
                set(futures),
                timeout=self.config.poll_interval_s,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                index = futures.pop(future)
                exc = future.exception()
                if exc is None:
                    results[index] = future.result()
                    self._inc("supervise.tasks")
                    continue
                if isinstance(exc, _POOL_DEATH):
                    pending = set(futures.values()) | {index}
                    raise _PoolBroken(
                        f"{type(exc).__name__}: {exc}", self._suspects(pending)
                    ) from None
                # The task raised inside a live worker: charge it alone.
                detail = "".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ).strip()
                self._charge(
                    index,
                    tasks,
                    label,
                    charged,
                    errors,
                    detail,
                    results=results,
                    skipped=skipped,
                    category=classify(exc),
                )
                if index not in results:
                    self._inc("supervise.retries")
                    try:
                        submit(index)
                    except _POOL_DEATH as pool_exc:
                        pending = set(futures.values()) | {index}
                        raise _PoolBroken(
                            f"{type(pool_exc).__name__}: {pool_exc}",
                            self._suspects(pending),
                        ) from None
            self._watch_heartbeats(set(futures.values()))

    # -- failure accounting --------------------------------------------

    def _charge(
        self,
        index: int,
        tasks: list,
        label: str,
        charged: list[int],
        errors: list[list[str]],
        message: str,
        *,
        results: dict[int, object],
        skipped: set[int],
        category: str = TRANSIENT,
        hung: bool = False,
    ) -> None:
        """Record a failed attempt; quarantine when the budget is spent."""
        charged[index] += 1
        errors[index].append(message)
        if hung:
            self._inc("supervise.hung_tasks")
        retryable = category == TRANSIENT
        if retryable and charged[index] < self.config.attempt_budget:
            return
        name = self.task_name(tasks[index], index)
        artifact = write_quarantine_record(
            self.config.quarantine_dir,
            label=label,
            task_name=name,
            index=index,
            task=tasks[index],
            errors=errors[index],
        )
        self._inc("supervise.quarantined_tasks")
        if self.config.on_quarantine == "abort":
            raise TaskQuarantinedError(
                label=label,
                task_name=name,
                attempts=charged[index],
                artifact=artifact,
                last_error=message.splitlines()[-1] if message else "unknown",
            )
        results[index] = None  # degrade: the caller sees a poisoned slot
        skipped.add(index)

    def _suspects(self, incomplete: set[int]) -> list[int]:
        """Which incomplete tasks were running when the pool broke.

        Falls back to *all* incomplete tasks when the heartbeats name
        nobody (worker died before its first write) — conservative, but
        bounded by each task's retry budget.
        """
        beats = read_heartbeats(self._hb_dir) if self._hb_dir else []
        running = sorted(
            {
                int(beat["index"])
                for beat in beats
                if beat.get("state") == RUNNING
                and int(beat.get("index", -1)) in incomplete
            }
        )
        return running if running else sorted(incomplete)

    # -- liveness ------------------------------------------------------

    def _watch_heartbeats(self, incomplete: set[int]) -> None:
        """Gauge heartbeat age; SIGKILL attempts past their deadline."""
        if self._hb_dir is None:
            return
        beats = read_heartbeats(self._hb_dir)
        now = time.time()
        running = [
            beat
            for beat in beats
            if beat.get("state") == RUNNING
            and int(beat.get("index", -1)) in incomplete
        ]
        if self.metrics is not None and running:
            age = max(now - float(beat["mtime"]) for beat in running)
            self.metrics.set_gauge("supervise.heartbeat_age_seconds", age)
        deadline = self.config.task_timeout_s
        if not deadline:
            return
        hung = [
            beat for beat in running if now - float(beat["started"]) > deadline
        ]
        if not hung:
            return
        pool_pids = set(getattr(self._pool, "_processes", None) or ())
        for beat in hung:
            pid = int(beat["pid"])
            if pool_pids and pid not in pool_pids:
                continue  # stale evidence: never kill a non-worker pid
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
        raise _PoolBroken(
            f"task deadline exceeded ({deadline:g}s)",
            sorted({int(beat["index"]) for beat in hung}),
            hung=True,
        )
