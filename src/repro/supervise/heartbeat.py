"""Worker heartbeats: mtime-touched files the supervisor can read.

Each worker process writes one file, ``<dir>/<pid>.hb``, at the start of
every task attempt.  The JSON body identifies the attempt::

    {"pid": 1234, "index": 3, "label": "score", "attempt": 0,
     "started": 1723111111.5, "state": "running"}

A daemon thread then touches the file's *mtime* every interval while the
task runs — touching is one ``os.utime`` call, so a busy worker pays
almost nothing.  The supervisor derives everything from the files:

- hung-task detection from ``now - started`` versus the deadline (the
  ``started`` stamp, not the mtime — a task that keeps touching while
  overrunning its deadline is still hung);
- the ``supervise.heartbeat_age_seconds`` gauge from ``now - mtime``;
- crash attribution from which entries were ``running`` when the pool
  broke — a worker that dies abruptly leaves its file in ``running``,
  which is exactly the evidence wanted.

Files survive their writer by design; the supervisor clears the
directory when it rebuilds the pool so stale evidence never implicates
the next generation of workers.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

__all__ = ["HeartbeatWriter", "clear_heartbeats", "read_heartbeats"]

HB_SUFFIX = ".hb"

RUNNING = "running"
IDLE = "idle"


class HeartbeatWriter:
    """Worker-side context manager: announce an attempt, touch while alive."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        index: int,
        label: str,
        attempt: int,
        interval_s: float = 0.2,
    ) -> None:
        self.path = Path(directory) / f"{os.getpid()}{HB_SUFFIX}"
        self.interval_s = max(0.01, float(interval_s))
        self._body = {
            "pid": os.getpid(),
            "index": int(index),
            "label": label,
            "attempt": int(attempt),
            "started": time.time(),
            "state": RUNNING,
        }
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _write(self) -> None:
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._body), encoding="utf-8")
        os.replace(tmp, self.path)

    def _touch_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                os.utime(self.path)
            except OSError:
                return  # directory vanished (supervisor cleanup): stop quietly

    def __enter__(self) -> "HeartbeatWriter":
        try:
            self._write()
        except OSError:
            return self  # heartbeats are best-effort: never fail the task
        self._thread = threading.Thread(
            target=self._touch_loop, name="snaps-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
        self._body["state"] = IDLE
        try:
            self._write()
        except OSError:
            pass


def read_heartbeats(directory: str | os.PathLike) -> list[dict]:
    """Parse every heartbeat in ``directory``, adding ``mtime`` per entry.

    Torn or vanished files (a worker mid-replace, a crash mid-write) are
    skipped: heartbeats are advisory evidence, not a ledger.
    """
    beats: list[dict] = []
    root = Path(directory)
    try:
        entries = sorted(root.glob(f"*{HB_SUFFIX}"))
    except OSError:
        return beats
    for path in entries:
        try:
            body = json.loads(path.read_text(encoding="utf-8"))
            body["mtime"] = path.stat().st_mtime
        except (OSError, ValueError):
            continue
        beats.append(body)
    return beats


def clear_heartbeats(directory: str | os.PathLike) -> None:
    """Drop all heartbeat files — called when the pool is rebuilt."""
    root = Path(directory)
    try:
        entries = list(root.glob(f"*{HB_SUFFIX}")) + list(root.glob("*.tmp"))
    except OSError:
        return
    for path in entries:
        try:
            path.unlink()
        except OSError:
            pass
