"""Poison-task quarantine: durable evidence plus an actionable abort.

A task that exhausts its attempt budget (or fails with a non-retryable
category) is *quarantined*: one JSON line is appended to
``<quarantine_dir>/tasks.jsonl`` holding everything needed to reproduce
the failure offline —

- the task fingerprint (label, task name such as ``chunk 3``/``shard 1``,
  index, attempts consumed, and the task's own config fingerprint when
  it carries one);
- a digest of the pickled task inputs, so the exact same chunk can be
  recognised across runs without storing the (possibly large) inputs;
- the error from every charged attempt, tracebacks included.

The run then aborts with :class:`TaskQuarantinedError` (a ``data`` fault:
the input is implicated, not the code) naming the shard/chunk and the
artifact path — or, under the ``skip`` policy, degrades by yielding
``None`` for the poisoned slot.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path

from repro.faults.taxonomy import DATA, DataFault

__all__ = [
    "TaskQuarantinedError",
    "default_quarantine_dir",
    "inputs_digest",
    "write_quarantine_record",
]

ARTIFACT_NAME = "tasks.jsonl"


class TaskQuarantinedError(DataFault):
    """A task failed every allowed attempt and was isolated."""

    category = DATA

    def __init__(
        self,
        *,
        label: str,
        task_name: str,
        attempts: int,
        artifact: str,
        last_error: str,
    ):
        super().__init__(
            f"{label} task ({task_name}) quarantined after {attempts} "
            f"attempt(s); last error: {last_error}; evidence appended to "
            f"{artifact}; inspect the artifact to fix or exclude the "
            f"offending input, or raise --task-retries if the failures "
            f"look environmental"
        )
        self.label = label
        self.task_name = task_name
        self.attempts = attempts
        self.artifact = artifact


def default_quarantine_dir() -> str:
    return os.path.join(tempfile.gettempdir(), "snaps-quarantine")


def inputs_digest(task: object) -> str:
    """Stable digest of a task's inputs (pickle bytes, repr fallback)."""
    try:
        payload = pickle.dumps(task, protocol=4)
    except Exception:
        payload = repr(task).encode("utf-8", "replace")
    return hashlib.sha256(payload).hexdigest()


def write_quarantine_record(
    quarantine_dir: str | os.PathLike | None,
    *,
    label: str,
    task_name: str,
    index: int,
    task: object,
    errors: list[str],
) -> str:
    """Append one quarantine line; return the artifact path."""
    root = Path(quarantine_dir) if quarantine_dir else Path(default_quarantine_dir())
    root.mkdir(parents=True, exist_ok=True)
    artifact = root / ARTIFACT_NAME
    fingerprint = None
    if isinstance(task, dict):
        fingerprint = task.get("fingerprint")
    record = {
        "at": time.time(),
        "label": label,
        "task": task_name,
        "index": index,
        "attempts": len(errors),
        "config_fingerprint": fingerprint,
        "inputs_sha256": inputs_digest(task),
        "errors": errors,
    }
    with open(artifact, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return str(artifact)
