"""Online query processing and ranking (paper Section 7).

``QueryEngine`` wraps a pedigree graph with the keyword and similarity
indices and answers :class:`Query` objects — mandatory first name and
surname, optional record type, gender, year range, and parish — with a
ranked list of matching entities, each carrying per-attribute match
scores and an overall percentage like the paper's Figure 6 result table.
"""

from repro.query.engine import Query, QueryEngine, RankedMatch

__all__ = ["Query", "QueryEngine", "RankedMatch"]
