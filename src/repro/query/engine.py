"""Accumulator-based query processing and ranking.

The paper's Section 7 pipeline:

1. retrieve from the keyword index ``K`` and similarity index ``S`` all
   entities matching the query's first name and/or surname, exactly or
   approximately, and seed the accumulator ``M`` with the summed name
   match scores (entities without any name match never enter ``M``);
2. for each optional query value (gender, year range, parish) retrieve
   the matching entity ids from ``K`` and *increase* the scores of
   entities already in ``M`` — no new entities are added;
3. rank by the weighted match score
   ``s_r = Σ_a w_a · sim(q_a, o_a)`` and return the top ``m`` entities,
   scores normalised to a percentage of the achievable maximum.

Thread safety (audited for the ``repro.serve`` subsystem): after
``__init__`` builds the indexes, :meth:`QueryEngine.search` touches only
per-call local state (the accumulator, the top-k heap), the read-only
:class:`~repro.index.keyword.KeywordIndex`, the internally locked
:class:`~repro.index.simindex.SimilarityAwareIndex` query cache, and the
thread-safe :class:`~repro.obs.metrics.MetricsRegistry` — so concurrent
``search()`` calls on one engine are safe **provided the engine's
``trace`` is the default disabled one**.  An *enabled*
:class:`~repro.obs.trace.Trace` keeps a span stack that must not be
shared across threads; give each thread (or request) its own trace, as
the serving layer does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.data.roles import Role
from repro.faults import fire
from repro.index.keyword import KeywordIndex
from repro.index.simindex import SimilarityAwareIndex
from repro.obs.logs import get_logger
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry
from repro.obs.trace import Trace
from repro.pedigree.graph import PedigreeEntity, PedigreeGraph
from repro.utils.heaps import TopK

__all__ = ["Query", "QueryEngine", "RankedMatch"]

logger = get_logger("query.engine")

# Match-score weights per query attribute (names dominate, as discussed
# in Section 7; locations are weakest because users often guess them).
DEFAULT_WEIGHTS: dict[str, float] = {
    "first_name": 0.3,
    "surname": 0.3,
    "gender": 0.1,
    "year": 0.2,
    "parish": 0.1,
}


@dataclass(frozen=True)
class Query:
    """One search request as entered on the web form (Figure 5)."""

    first_name: str
    surname: str
    record_type: str | None = None       # "birth" | "death" | None
    gender: str | None = None            # "m" | "f" | None
    year_from: int | None = None
    year_to: int | None = None
    parish: str | None = None

    def __post_init__(self) -> None:
        if not self.first_name or not self.surname:
            raise ValueError("first name and surname are mandatory query fields")
        if self.record_type not in (None, "birth", "death"):
            raise ValueError(f"record_type must be birth/death, got {self.record_type}")
        if self.gender not in (None, "m", "f"):
            raise ValueError(f"gender must be m/f, got {self.gender}")
        if (
            self.year_from is not None
            and self.year_to is not None
            and self.year_to < self.year_from
        ):
            raise ValueError("empty year range")


@dataclass
class RankedMatch:
    """One ranked query result with per-attribute match breakdown."""

    entity: PedigreeEntity
    score_percent: float
    attribute_scores: dict[str, float] = field(default_factory=dict)
    # Which name values matched and whether exactly ("exact") or
    # approximately ("approx") — the colour coding of Figure 6.
    match_kinds: dict[str, str] = field(default_factory=dict)


class QueryEngine:
    """Search front-end over a pedigree graph."""

    def __init__(
        self,
        graph: PedigreeGraph,
        similarity_threshold: float = 0.5,
        weights: dict[str, float] | None = None,
        use_geographic_distance: bool = False,
        geo_half_distance_km: float = 10.0,
        trace: Trace | None = None,
        metrics: MetricsRegistry | None = None,
        keyword_index: KeywordIndex | None = None,
        sim_index: dict[str, SimilarityAwareIndex] | None = None,
    ) -> None:
        """``use_geographic_distance`` switches parish scoring from string
        similarity to geodesic distance against the gazetteer (the paper's
        future-work geographic query refinement): a query for "portree"
        then also surfaces people registered in nearby Snizort at a
        distance-discounted score, while far-away parishes score near 0
        even if their names are string-similar.

        ``trace``/``metrics`` instrument every :meth:`search`: one span
        per stage (accumulate, refine — with a nested ``parish_match``
        span — and rank), a per-query latency histogram, and search/hit
        counters.  Both default to off with no per-query cost.

        ``keyword_index``/``sim_index`` warm-start the engine from
        prebuilt indexes (a ``repro.store`` snapshot) instead of paying
        the K/S construction cost here; when given they must have been
        built from ``graph`` (``similarity_threshold`` is then ignored —
        a prebuilt S index carries its own threshold)."""
        self.graph = graph
        self.weights = dict(weights or DEFAULT_WEIGHTS)
        self.use_geographic_distance = use_geographic_distance
        self.geo_half_distance_km = geo_half_distance_km
        self.trace = trace if trace is not None else Trace.disabled()
        self.metrics = metrics
        self.keyword_index = (
            keyword_index if keyword_index is not None else KeywordIndex(graph)
        )
        if sim_index is not None:
            self.sim_index = dict(sim_index)
        else:
            self.sim_index = {
                attribute: SimilarityAwareIndex(
                    self.keyword_index.values(attribute),
                    threshold=similarity_threshold,
                )
                for attribute in ("first_name", "surname", "parish")
            }

    def _parish_matches(self, query_parish: str) -> list[tuple[str, float]]:
        """(indexed parish, score) pairs for the query's parish value.

        String mode uses the similarity-aware index; geographic mode
        scores every indexed parish by its gazetteer distance to the
        query parish (falling back to string similarity when either
        parish is not in the gazetteer).
        """
        if not self.use_geographic_distance:
            return self.sim_index["parish"].matches(query_parish)
        from repro.data.names import PARISH_COORDINATES
        from repro.similarity.geo import geo_similarity

        origin = PARISH_COORDINATES.get(query_parish.lower())
        if origin is None:
            return self.sim_index["parish"].matches(query_parish)
        scored = []
        for parish in self.keyword_index.values("parish"):
            point = PARISH_COORDINATES.get(parish)
            if point is None:
                continue
            score = geo_similarity(
                origin, point, half_distance_km=self.geo_half_distance_km
            )
            if score > 0.05:
                scored.append((parish, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    # ------------------------------------------------------------------

    def _name_accumulator(self, query: Query) -> dict[int, dict[str, float]]:
        """Step 1: accumulator M seeded by exact/approximate name matches.

        Returns entity id → {attribute: best similarity}.
        """
        accumulator: dict[int, dict[str, float]] = {}
        for attribute, value in (
            ("first_name", query.first_name),
            ("surname", query.surname),
        ):
            for matched_value, similarity in self.sim_index[attribute].matches(value):
                for entity_id in self.keyword_index.lookup(attribute, matched_value):
                    scores = accumulator.setdefault(entity_id, {})
                    if similarity > scores.get(attribute, 0.0):
                        scores[attribute] = similarity
        return accumulator

    def _refine(self, query: Query, accumulator: dict[int, dict[str, float]]) -> None:
        """Step 2: raise scores of entities matching the optional values."""
        if query.gender is not None:
            matching = self.keyword_index.lookup_gender(query.gender)
            for entity_id, scores in accumulator.items():
                if entity_id in matching:
                    scores["gender"] = 1.0
        if query.year_from is not None or query.year_to is not None:
            lo = query.year_from if query.year_from is not None else 0
            hi = query.year_to if query.year_to is not None else 9999
            matching = self.keyword_index.lookup_year_range(lo, hi)
            for entity_id, scores in accumulator.items():
                if entity_id in matching:
                    scores["year"] = 1.0
        if query.parish is not None:
            with self.trace.span("parish_match"):
                parish_matches = self._parish_matches(query.parish)
            for matched_value, similarity in parish_matches:
                for entity_id in self.keyword_index.lookup("parish", matched_value):
                    scores = accumulator.get(entity_id)
                    if scores is not None and similarity > scores.get("parish", 0.0):
                        scores["parish"] = similarity

    def _record_type_filter(self, query: Query, entity: PedigreeEntity) -> bool:
        """Keep entities that have a record of the searched certificate
        type (searching birth records requires a Bb record, etc.)."""
        if query.record_type is None:
            return True
        wanted = Role.BB if query.record_type == "birth" else Role.DD
        return wanted in entity.roles

    # ------------------------------------------------------------------

    def search(self, query: Query, top_m: int = 10) -> list[RankedMatch]:
        """Rank entities against ``query``; return the best ``top_m``.

        Scores are normalised so 100% means an exact match on every QID
        value the user provided.
        """
        start = time.perf_counter()
        fire("query.search")
        with self.trace.span("query"):
            with self.trace.span("accumulate"):
                accumulator = self._name_accumulator(query)
            with self.trace.span("refine"):
                self._refine(query, accumulator)
            with self.trace.span("rank"):
                provided = ["first_name", "surname"]
                if query.gender is not None:
                    provided.append("gender")
                if query.year_from is not None or query.year_to is not None:
                    provided.append("year")
                if query.parish is not None:
                    provided.append("parish")
                max_score = sum(self.weights[a] for a in provided)
                top: TopK[tuple[int, dict[str, float]]] = TopK(top_m)
                for entity_id, scores in accumulator.items():
                    entity = self.graph.entity(entity_id)
                    if not self._record_type_filter(query, entity):
                        continue
                    score = sum(
                        self.weights[attribute] * scores.get(attribute, 0.0)
                        for attribute in provided
                    )
                    top.push(score, (entity_id, scores))
                results: list[RankedMatch] = []
                for score, (entity_id, scores) in top.items():
                    entity = self.graph.entity(entity_id)
                    kinds = {}
                    for attribute in ("first_name", "surname", "parish"):
                        if attribute in scores:
                            kinds[attribute] = (
                                "exact" if scores[attribute] >= 0.9999 else "approx"
                            )
                    results.append(
                        RankedMatch(
                            entity=entity,
                            score_percent=round(100.0 * score / max_score, 2),
                            attribute_scores=dict(scores),
                            match_kinds=kinds,
                        )
                    )
        if self.metrics is not None:
            self.metrics.inc("query.searches")
            self.metrics.inc("query.candidates", len(accumulator))
            self.metrics.inc("query.hits", len(results))
            self.metrics.observe(
                "query.latency_seconds",
                time.perf_counter() - start,
                LATENCY_BUCKETS_S,
            )
        logger.debug(
            "query %s/%s: %d accumulator entries, %d hits",
            query.first_name,
            query.surname,
            len(accumulator),
            len(results),
        )
        return results
