"""Submission-ordered execution of shard tasks over a process pool.

Mirrors :class:`repro.parallel.pool.ChunkRunner`'s contract — results
come back in task order, so pool scheduling never influences the merge —
but ships a *different payload per task* (each shard's own records and
pairs) instead of one shared payload.  Telemetry propagation is the
PR-6 pattern: each task carries the parent's serialised
:class:`~repro.obs.trace.TraceContext` plus a ``collect`` flag; workers
answer with a detached span and a metrics-delta registry, grafted under
the shard's wait span and merged into the parent registry — one span
tree and one registry across all shard processes.

Pool execution is supervised (:mod:`repro.supervise`): shard attempts
heartbeat, hung shards are killed at the task deadline, a crashed
worker rebuilds the pool and resubmits only unresolved shards, and a
shard failing its retry budget is quarantined with an artifact naming
it.  Shard tasks are pure functions of their partition, so recovery
keeps the merge byte-identical to serial.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry
from repro.obs.trace import Trace
from repro.parallel.config import available_cpus
from repro.shard import worker
from repro.supervise import SupervisedExecutor, SuperviseConfig

__all__ = ["ShardRunner"]


class ShardRunner:
    """Runs shard tasks in-process or across a supervised process pool."""

    def __init__(
        self,
        workers: int,
        trace: Trace | None = None,
        metrics: MetricsRegistry | None = None,
        oversubscribe: bool = False,
        supervise: SuperviseConfig | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"ShardRunner needs workers >= 1, got {workers}")
        self.workers = workers
        # Like ParallelConfig: never oversubscribe a CPU-bound pool,
        # except in tests that need the real pool on a small machine.
        self.pool_workers = (
            workers if oversubscribe else min(workers, available_cpus())
        )
        self.trace = trace if trace is not None else Trace.disabled()
        self.metrics = metrics
        # A skipped shard would drop its clusters from the merge, so the
        # resolve path always aborts on quarantine.
        supervise = supervise if supervise is not None else SuperviseConfig.from_env()
        if supervise.on_quarantine != "abort":
            supervise = replace(supervise, on_quarantine="abort")
        self.supervise = supervise

    def run(self, tasks: list[dict], label: str = "shard.resolve") -> list[dict]:
        """Resolve every task; results return in submission order."""
        ctx = self.trace.context(label=label)
        ctx_dict = ctx.to_dict() if ctx is not None else None
        collect = self.metrics is not None
        if ctx_dict is not None or collect:
            tasks = [
                {**task, "ctx": ctx_dict, "collect": collect} for task in tasks
            ]
        results: list[dict] = []
        if self.pool_workers == 1 or len(tasks) == 1:
            for task in tasks:
                with self.trace.span(f"shard.s{task['shard']}") as wait:
                    result = worker.resolve_shard_task(task)
                self._absorb(result, wait)
                results.append(result)
            return results

        if "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-fork platforms
            mp_context = multiprocessing.get_context()

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=min(self.pool_workers, len(tasks)),
                mp_context=mp_context,
            )

        with SupervisedExecutor(
            make_pool,
            self.supervise,
            metrics=self.metrics,
            label="shard",
            task_name=lambda task, index: f"shard {task['shard']}",
        ) as executor:
            outputs = executor.map(worker.resolve_shard_task, tasks, "shard")
        for task, result in zip(tasks, outputs):
            # The wait happened inside the supervisor; the near-zero span
            # keeps the per-shard wait node for worker-span grafting.
            with self.trace.span(f"shard.s{task['shard']}") as wait:
                pass
            self._absorb(result, wait)
            results.append(result)
        return results

    def _absorb(self, result: dict, wait_span) -> None:
        """Merge one shard result's telemetry into the parent's."""
        node = result.pop("span", None)
        if node is not None:
            self.trace.attach(node, parent=wait_span)
        wmetrics = result.pop("wmetrics", None)
        if self.metrics is not None:
            if wmetrics is not None:
                self.metrics.merge(wmetrics)
            self.metrics.inc("shard.resolved")
            self.metrics.observe(
                "shard.resolve_seconds", result["elapsed"], LATENCY_BUCKETS_S
            )
