"""Sharded resolution orchestrator: block → partition → fan out → merge.

``resolve_sharded`` produces output byte-identical to
``SnapsResolver.resolve`` run serially, for any shard count:

* **Blocking runs once, globally** — shard workers never block, so the
  candidate pair list (and its order) is exactly the serial one.  When a
  PR-4 checkpointer is supplied, a completed blocking phase is restored
  from it; shard count is an execution detail outside the config
  fingerprint, so checkpoints resume across shard counts.
* **Components stay whole** — the partitioner assigns closure components
  atomically, and each shard's pair list is an order-preserving
  subsequence of the global list.  Bootstrap group order and the
  iterative-merge priority sort both restrict cleanly to a shard, and
  scoring/constraints consult only endpoint entities plus the shipped
  global frequency index — so each shard reproduces precisely the
  merges serial resolution performs inside its components.
* **The merge is a replay** — per-shard cluster links are replayed into
  a fresh store over the full dataset in shard order; link sets are
  canonical, so the final clustering (and everything serialized from it)
  is a pure function of the per-shard outputs.
* **Boundary pairs run last, in-parent** — components a reused plan
  splits across shards are pulled out whole and resolved against the
  merged store, where their records are still singletons.  Every pair is
  resolved exactly once: in its shard xor in the boundary pass.

|N_A| accounting is the union of per-shard atomic-key sets (atomic nodes
deduplicate globally by (attribute, value, value) key) plus the boundary
pass's registry; |N_R| is the global pair count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SnapsConfig
from repro.core.entities import EntityStore
from repro.core.refinement import RefinementStats
from repro.core.resolver import LinkageResult, SnapsResolver
from repro.core.scoring import NameFrequencyIndex
from repro.data.records import Dataset
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace
from repro.parallel.config import available_cpus
from repro.shard.boundary import split_pairs
from repro.shard.partition import ShardPlan, build_shard_plan
from repro.shard.runner import ShardRunner
from repro.shard.worker import make_shard_task
from repro.store.manifest import config_fingerprint, config_to_dict
from repro.utils.timer import Stopwatch

__all__ = ["ShardedResolution", "resolve_sharded"]

logger = get_logger("shard.resolve")


@dataclass
class _GraphStats:
    """Stand-in for the dependency graph in a sharded LinkageResult.

    The global graph is never materialised (that is the point); only its
    cardinalities survive the fan-out, and they are all downstream
    consumers (summaries, snapshot payloads) ever read.
    """

    n_atomic: int
    n_relational: int


@dataclass
class ShardedResolution:
    """Outcome of one sharded resolve."""

    result: LinkageResult
    plan: ShardPlan
    pairs: list
    shard_stats: list[dict]
    n_boundary_pairs: int


def resolve_sharded(
    dataset: Dataset,
    config: SnapsConfig | None = None,
    *,
    n_shards: int,
    workers: int | None = None,
    trace: Trace | None = None,
    metrics: MetricsRegistry | None = None,
    checkpoint=None,
    parallel=None,
    plan: ShardPlan | None = None,
    oversubscribe: bool = False,
) -> ShardedResolution:
    """Resolve ``dataset`` across ``n_shards`` isolated shard processes.

    ``workers`` caps the shard pool (default: one process per shard, up
    to the CPU count).  ``parallel`` only accelerates the global blocking
    phase; shard resolution itself is serial within each worker.
    ``plan`` substitutes a precomputed partition (incremental ingest
    reuses a parent snapshot's); components the plan no longer keeps
    whole are routed to the boundary pass automatically.
    """
    config = config if config is not None else SnapsConfig()
    trace = trace if trace is not None else Trace.disabled()
    resolver = SnapsResolver(config)
    timings = Stopwatch()
    with trace.span("resolve_sharded"):
        completed = checkpoint.completed_prefix() if checkpoint is not None else ()
        if "blocking" in completed:
            pairs = checkpoint.load_pairs()
            logger.info("blocking restored from checkpoint (%d pairs)", len(pairs))
        else:
            with trace.span("blocking"), timings.phase("blocking"):
                pairs = resolver.block(
                    dataset, metrics=metrics, parallel=parallel, trace=trace
                )
            if checkpoint is not None:
                checkpoint.save_pairs(pairs)
                checkpoint.check_stop("blocking")
        with trace.span("partition"), timings.phase("partition"):
            if plan is None:
                plan = build_shard_plan(dataset, pairs, n_shards)
            shard_pairs, boundary = split_pairs(dataset, pairs, plan)
        logger.info(
            "partitioned %d pairs into %d shards (%d boundary), plan %s",
            len(pairs),
            plan.n_shards,
            len(boundary),
            plan.fingerprint,
        )
        frequency_index = NameFrequencyIndex(dataset)
        frequencies = frequency_index.counts()
        config_blob = config_to_dict(config)
        fingerprint = config_fingerprint(config)
        tasks = []
        for shard, pair_list in enumerate(shard_pairs):
            if not pair_list:
                continue
            # Ownership comes from the routed pairs, not the plan: a
            # reused plan may route never-seen records into a shard
            # alongside their component.
            owned = {pair.rid_a for pair in pair_list}
            owned.update(pair.rid_b for pair in pair_list)
            tasks.append(
                make_shard_task(
                    shard,
                    dataset,
                    owned,
                    pair_list,
                    config_blob,
                    fingerprint,
                    frequencies,
                )
            )
        runner = ShardRunner(
            workers if workers is not None else max(1, min(plan.n_shards, available_cpus())),
            trace=trace,
            metrics=metrics,
            oversubscribe=oversubscribe
            or (parallel is not None and parallel.oversubscribe),
            supervise=parallel.supervise if parallel is not None else None,
        )
        with timings.phase("shard_resolve"):
            results = runner.run(tasks)
        with trace.span("merge"), timings.phase("merge"):
            store = EntityStore(dataset)
            atomic_keys: set = set()
            bootstrap_merges = 0
            iterative_merges = 0
            refinement = RefinementStats()
            shard_stats: list[dict] = []
            for result in results:
                for cluster in result["clusters"]:
                    for rid_a, rid_b in cluster["links"]:
                        store.merge(rid_a, rid_b)
                atomic_keys.update(tuple(key) for key in result["atomic_keys"])
                bootstrap_merges += result["bootstrap_merges"]
                iterative_merges += result["iterative_merges"]
                refinement.records_removed += result["refinement"]["records_removed"]
                refinement.bridges_cut += result["refinement"]["bridges_cut"]
                refinement.clusters_examined += result["refinement"][
                    "clusters_examined"
                ]
                shard_stats.append(
                    {
                        "shard": result["shard"],
                        **result["stats"],
                        "elapsed": round(result["elapsed"], 4),
                    }
                )
        if boundary:
            with trace.span("boundary"), timings.phase("boundary"):
                boundary_result = resolver.resolve(
                    dataset,
                    trace=trace,
                    metrics=metrics,
                    pairs=boundary,
                    store=store,
                    frequency_index=frequency_index,
                )
            store = boundary_result.entities
            atomic_keys |= boundary_result.graph._atomic_registry
            bootstrap_merges += boundary_result.bootstrap_merges
            iterative_merges += boundary_result.iterative_merges
    if metrics is not None:
        metrics.inc("shard.resolves")
        metrics.inc("shard.boundary_pairs", len(boundary))
        metrics.set_gauge("shard.n_shards", plan.n_shards)
    linkage = LinkageResult(
        dataset=dataset,
        entities=store,
        graph=_GraphStats(len(atomic_keys), len(pairs)),  # type: ignore[arg-type]
        timings=timings,
        bootstrap_merges=bootstrap_merges,
        iterative_merges=iterative_merges,
        refinement=refinement,
        metrics=metrics,
        trace=trace if trace.enabled else None,
    )
    return ShardedResolution(
        result=linkage,
        plan=plan,
        pairs=pairs,
        shard_stats=shard_stats,
        n_boundary_pairs=len(boundary),
    )
