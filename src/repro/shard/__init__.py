"""Sharded offline resolution: partition → isolated resolve → merge.

The candidate graph is the resolver's only cross-record coupling: merges
happen exclusively along candidate pairs, and pair scoring consults only
the two endpoint entities plus a global name-frequency index.  Records
therefore split into independent *closure components* (connected
components of the candidate graph, closed over certificate-pair groups),
and each component can be resolved in a separate process with zero
shared state.  This package turns that observation into a subsystem:

* :mod:`repro.shard.partition` — deterministic closure components and a
  size-balancing packer producing a :class:`~repro.shard.partition.ShardPlan`;
* :mod:`repro.shard.boundary` — splits the global pair list into
  per-shard lists plus the cross-shard *boundary* set (components a plan
  does not keep whole), such that every pair is resolved exactly once;
* :mod:`repro.shard.worker` — the per-shard process entry point: builds
  a shard-local dataset, resolves it serially, ships clusters home;
* :mod:`repro.shard.runner` — submission-ordered process-pool execution
  with PR-6 trace/metrics propagation (one span tree across shards);
* :mod:`repro.shard.resolve` — the orchestrator: global blocking, plan,
  fan-out, deterministic merge, boundary pass.  Output is byte-identical
  to the serial resolver for any shard count.
"""

from repro.shard.boundary import split_pairs
from repro.shard.partition import ShardPlan, build_shard_plan, closure_components
from repro.shard.resolve import ShardedResolution, resolve_sharded

__all__ = [
    "ShardPlan",
    "ShardedResolution",
    "build_shard_plan",
    "closure_components",
    "resolve_sharded",
    "split_pairs",
]
