"""Cross-shard boundary extraction: every pair resolved exactly once.

Given a pair list and a :class:`~repro.shard.partition.ShardPlan`,
:func:`split_pairs` routes each closure component either

* **in-shard** — all of the plan's records for the component live on one
  shard, so the component's pairs go to that shard's list; or
* **boundary** — the component's records span shards (possible when a
  plan built against older evidence is reused, e.g. incremental ingest),
  or contain records the plan has never seen.  *All* of the component's
  pairs are pulled into the boundary set, which the orchestrator
  resolves in the parent process against the merged per-shard clusters —
  where those records are still singletons, exactly as the serial
  resolver would first see them.

Both per-shard lists and the boundary list preserve the global pair
order (they are order-preserving subsequences), which is what keeps
group iteration — and therefore merge order — identical to serial.
"""

from __future__ import annotations

from typing import Iterable

from repro.data.records import Dataset
from repro.shard.partition import ShardPlan, closure_union_find

__all__ = ["split_pairs"]

# Sentinel component target for pairs routed to the boundary pass.
BOUNDARY = -1


def split_pairs(
    dataset: Dataset, pairs: list, plan: ShardPlan
) -> tuple[list[list], list]:
    """Split ``pairs`` into per-shard lists plus the boundary list.

    Returns ``(shard_pairs, boundary_pairs)`` where ``shard_pairs[i]``
    holds shard ``i``'s pairs in global order.  Every input pair lands in
    exactly one output list (in-shard xor boundary).
    """
    uf = closure_union_find(dataset, pairs)
    members = uf.groups()
    target: dict[int, int] = {}
    for root, component in members.items():
        shards = {
            plan.shard_of[rid] for rid in component if rid in plan.shard_of
        }
        target[root] = shards.pop() if len(shards) == 1 else BOUNDARY
    shard_pairs: list[list] = [[] for _ in range(plan.n_shards)]
    boundary: list = []
    for pair in pairs:
        shard = target[uf.find(pair.rid_a)]
        if shard == BOUNDARY:
            boundary.append(pair)
        else:
            shard_pairs[shard].append(pair)
    return shard_pairs, boundary
