"""Deterministic partitioning of the candidate graph into shards.

A *closure component* is a connected component of the union-find over

* the two endpoints of every candidate pair, and
* all pairs sharing a certificate-pair group key (node groups are the
  unit bootstrap/merging operate on, so group mates must land together).

This is the same closure :class:`repro.store.incremental.IncrementalResolver`
uses for its dirty-set computation.  Because merges only ever happen
along candidate pairs, a component's resolution is independent of every
other component's — which is what makes per-shard resolution exact, not
approximate.

The packer assigns whole components to shards with a deterministic
greedy bin-packing (largest component first, ties by smallest record id,
always into the currently lightest shard).  The resulting
:class:`ShardPlan` carries a content fingerprint so snapshot sidecars
can detect partition drift.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from repro.data.records import Dataset
from repro.utils.union_find import UnionFind

__all__ = ["ShardPlan", "build_shard_plan", "closure_components", "closure_union_find"]


def closure_union_find(dataset: Dataset, pairs: Iterable) -> UnionFind:
    """Union-find over pair endpoints, closed over certificate-pair groups."""
    uf: UnionFind[int] = UnionFind()
    group_anchor: dict[tuple[int, int], int] = {}
    for pair in pairs:
        uf.union(pair.rid_a, pair.rid_b)
        record_a = dataset.record(pair.rid_a)
        record_b = dataset.record(pair.rid_b)
        group = (
            min(record_a.cert_id, record_b.cert_id),
            max(record_a.cert_id, record_b.cert_id),
        )
        anchor = group_anchor.setdefault(group, pair.rid_a)
        uf.union(anchor, pair.rid_a)
    return uf


def closure_components(dataset: Dataset, pairs: Iterable) -> list[list[int]]:
    """Closure components as sorted record-id lists, ordered by smallest id.

    Only records that appear in some candidate pair are covered; records
    with no pairs need no resolution (they stay singletons everywhere).
    """
    uf = closure_union_find(dataset, pairs)
    components = [sorted(members) for members in uf.groups().values()]
    components.sort(key=lambda component: component[0])
    return components


class ShardPlan:
    """A deterministic assignment of records to ``n_shards`` shards.

    ``shard_records[i]`` is the sorted list of record ids shard ``i``
    owns; ``shard_of`` is the inverse map.  Only records appearing in
    candidate pairs are covered.  ``fingerprint`` is a content address
    of the whole assignment — two plans with the same fingerprint
    partition the same records identically.
    """

    def __init__(self, n_shards: int, shard_records: Iterable[Iterable[int]]) -> None:
        if n_shards < 1:
            raise ValueError(f"need n_shards >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.shard_records: list[list[int]] = [
            sorted(records) for records in shard_records
        ]
        if len(self.shard_records) != n_shards:
            raise ValueError(
                f"plan lists {len(self.shard_records)} shards, expected {n_shards}"
            )
        self.shard_of: dict[int, int] = {}
        for index, records in enumerate(self.shard_records):
            for rid in records:
                if rid in self.shard_of:
                    raise ValueError(f"record {rid} assigned to two shards")
                self.shard_of[rid] = index
        self.fingerprint = self._fingerprint()

    def _fingerprint(self) -> str:
        payload = json.dumps(
            {"n_shards": self.n_shards, "shards": self.shard_records},
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def covered_records(self) -> int:
        """Number of records the plan assigns to some shard."""
        return len(self.shard_of)

    def to_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "fingerprint": self.fingerprint,
            "shards": self.shard_records,
        }

    @classmethod
    def from_dict(cls, blob: dict) -> "ShardPlan":
        plan = cls(int(blob["n_shards"]), blob["shards"])
        stored = blob.get("fingerprint")
        if stored is not None and stored != plan.fingerprint:
            raise ValueError(
                f"shard plan fingerprint mismatch (stored {stored}, "
                f"recomputed {plan.fingerprint})"
            )
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(records) for records in self.shard_records]
        return f"ShardPlan(n_shards={self.n_shards}, sizes={sizes})"


def build_shard_plan(dataset: Dataset, pairs: Iterable, n_shards: int) -> ShardPlan:
    """Partition the closure components of ``pairs`` into ``n_shards``.

    Deterministic greedy packing: components in (size desc, smallest
    record id) order, each into the currently least-loaded shard (ties
    broken by shard index).  Every component stays whole, so the
    resulting plan has an empty boundary set.
    """
    components = closure_components(dataset, pairs)
    order = sorted(
        range(len(components)),
        key=lambda i: (-len(components[i]), components[i][0]),
    )
    loads = [0] * n_shards
    bins: list[list[int]] = [[] for _ in range(n_shards)]
    for i in order:
        shard = min(range(n_shards), key=lambda j: (loads[j], j))
        bins[shard].extend(components[i])
        loads[shard] += len(components[i])
    return ShardPlan(n_shards, bins)
