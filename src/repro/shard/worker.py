"""Per-shard worker: resolve one shard's records in an isolated process.

Unlike :mod:`repro.parallel.worker` — whose processes share one dataset
payload and score chunks of a shared candidate graph — a shard worker
receives *only its shard's slice*: the shard's records (plus the
passenger records needed to close their certificates), the shard's
candidate pairs, the resolver configuration, and the **global**
name-frequency counts (Eq. 2 scores against full-population
frequencies, never shard-local ones).  It runs the complete serial
resolution pipeline over that slice and ships home the resulting
clusters, the atomic-node key set (for exact |N_A| accounting), and
telemetry.

Every task carries the parent's config fingerprint, verified against
the config the task itself shipped — a worker must fail loudly rather
than resolve under a configuration drifted from the orchestrator's.
"""

from __future__ import annotations

import time

from repro.blocking.candidates import CandidatePair
from repro.core.resolver import SnapsResolver
from repro.core.scoring import NameFrequencyIndex
from repro.data.records import Dataset
from repro.faults import fire
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import context_span
from repro.store.manifest import config_fingerprint, config_from_dict

__all__ = ["make_shard_task", "resolve_shard_task"]


def make_shard_task(
    shard: int,
    dataset: Dataset,
    record_ids: set[int],
    pairs: list,
    config_blob: dict,
    fingerprint: str,
    frequencies: dict,
) -> dict:
    """Build one shard task from the global dataset.

    The shard dataset is the owned records plus the *passengers*: every
    member record of a certificate an owned record sits on (``Dataset``
    validation requires certificate closure).  Passengers have no pairs
    in this shard — their own pairs live with their home component — so
    they stay singletons and never influence the shard's clusters.
    Records and certificates keep the global dataset's iteration order,
    making shard group order a restriction of the serial group order.
    """
    cert_ids = {dataset.records[rid].cert_id for rid in record_ids}
    include = set(record_ids)
    for cert_id in cert_ids:
        include.update(dataset.certificates[cert_id].member_record_ids())
    records = [record for record in dataset if record.record_id in include]
    certificates = [
        cert for cert in dataset.certificates.values() if cert.cert_id in cert_ids
    ]
    return {
        "shard": shard,
        "name": f"{dataset.name}@shard{shard}",
        "records": records,
        "certificates": certificates,
        "owned": len(record_ids),
        "pairs": [(pair.rid_a, pair.rid_b) for pair in pairs],
        "config": config_blob,
        "fingerprint": fingerprint,
        "frequencies": frequencies,
    }


def resolve_shard_task(task: dict) -> dict:
    """Resolve one shard task; returns clusters + accounting + telemetry."""
    start = time.perf_counter()
    fire("shard.resolve.worker")
    config = config_from_dict(task["config"])
    actual = config_fingerprint(config)
    if actual != task["fingerprint"]:
        raise RuntimeError(
            f"shard {task['shard']}: config fingerprint {actual!r} does not "
            f"match task fingerprint {task['fingerprint']!r}"
        )
    dataset = Dataset(task["name"], task["records"], task["certificates"])
    pairs = [CandidatePair(a, b) for a, b in task["pairs"]]
    frequency_index = NameFrequencyIndex.from_counts(task["frequencies"])
    metrics = MetricsRegistry() if task.get("collect") else None
    result = SnapsResolver(config).resolve(
        dataset,
        pairs=pairs,
        metrics=metrics,
        frequency_index=frequency_index,
    )
    clusters = [
        {
            "records": sorted(entity.record_ids),
            "links": sorted(list(link) for link in entity.links),
        }
        for entity in sorted(
            result.entities.entities(min_size=2),
            key=lambda entity: min(entity.record_ids),
        )
    ]
    elapsed = time.perf_counter() - start
    out = {
        "shard": task["shard"],
        "clusters": clusters,
        "atomic_keys": sorted(result.graph._atomic_registry),
        "bootstrap_merges": result.bootstrap_merges,
        "iterative_merges": result.iterative_merges,
        "refinement": {
            "records_removed": result.refinement.records_removed,
            "bridges_cut": result.refinement.bridges_cut,
            "clusters_examined": result.refinement.clusters_examined,
        },
        "stats": {
            "records": task["owned"],
            "passengers": len(dataset) - task["owned"],
            "pairs": len(pairs),
            "clusters": len(clusters),
        },
        "elapsed": elapsed,
    }
    ctx = task.get("ctx")
    if ctx is not None:
        span = context_span(
            ctx,
            f"shard.resolve.s{task['shard']}",
            shard=task["shard"],
            records=len(dataset),
            pairs=len(pairs),
        )
        span.elapsed = elapsed
        out["span"] = span.as_dict()
    if metrics is not None:
        out["wmetrics"] = metrics
    return out
