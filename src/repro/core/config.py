"""Configuration of the SNAPS resolver.

Defaults are the paper's published parameter values (Section 10,
"Implementation and Parameter Settings"), found there by a parameter
sensitivity analysis:

====================  ======  =========================================
``bootstrap_threshold``  0.95  minimum group-average similarity to merge
                               during bootstrapping (``t_b``)
``merge_threshold``      0.85  minimum group-average similarity to merge
                               during iterative merging (``t_m``)
``atomic_threshold``     0.90  minimum QID value-pair similarity for an
                               atomic node to enter the graph (``t_a``)
``gamma``                0.60  weight of atomic vs disambiguation
                               similarity in Equation (3) (``γ``)
``bridge_node_limit``      15  cluster size above which bridges split the
                               cluster (``t_n``)
``density_threshold``    0.30  minimum cluster density before the
                               loosest record is removed (``t_d``)
====================  ======  =========================================

The ``use_*`` switches implement the Table 3 ablation: each disables one
of the paper's four novel techniques.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.schema import Schema, default_schema

__all__ = ["SnapsConfig"]


@dataclass
class SnapsConfig:
    """All knobs of the offline ER pipeline; defaults follow the paper."""

    # Thresholds (paper notation in parentheses).
    bootstrap_threshold: float = 0.95   # t_b
    merge_threshold: float = 0.85       # t_m
    atomic_threshold: float = 0.90      # t_a
    gamma: float = 0.60                 # γ in Eq. (3)
    density_threshold: float = 0.30     # t_d
    bridge_node_limit: int = 15         # t_n
    temporal_slack_years: int = 2

    # Ablation switches (Table 3).
    use_propagation: bool = True        # PROP-A + PROP-C
    use_ambiguity: bool = True          # AMB (γ < 1)
    use_relational: bool = True         # REL (iterative node dropping)
    use_refinement: bool = True         # REF (bridge/density refinement)

    # Merge-gate policy.  Groups with two or more supporting nodes are
    # gated on their mean *atomic* similarity (relationship evidence
    # substitutes for disambiguation evidence); a lone node is gated on
    # the *combined* similarity of Eq. (3) when this flag is set, so an
    # ambiguous (common-name) pair without family support cannot merge.
    # See DESIGN.md "Deviations".
    gate_on_combined: bool = True
    # Temporal decay of Extra-attribute disagreement (temporal record
    # linkage, Li et al. 2011 / Hu et al. 2017, both cited by the paper):
    # an address mismatch between records 20 years apart is much weaker
    # negative evidence than between records 1 year apart, because people
    # move.  When set, a present-but-dissimilar Extra attribute's zero
    # contribution is down-weighted by 0.5^(gap / half_life); None
    # disables decay (the paper's behaviour).
    temporal_decay_half_life: float | None = None
    # Compare addresses by geocoded geodesic distance instead of token
    # overlap (the paper does this for the IOS data, Section 10; it needs
    # a usable gazetteer, which KIL/BHIC lack there and synthetic KIL
    # mimics by worse address quality).
    use_geocoded_addresses: bool = False
    # Nodes whose atomic similarity falls below this floor are dropped
    # from a group by REL even when the group average passes ``t_m`` —
    # a strong group must not drag a clearly-dissimilar pair (e.g. a
    # sibling node) into the merge.
    node_floor: float = 0.55

    # Blocking parameters (MinHash LSH, Section 4.1).
    lsh_bands: int = 16
    lsh_rows_per_band: int = 4
    lsh_seed: int = 42
    # Union the LSH blocker with a composite phonetic key so sound-alike
    # respellings that share few bigrams still become candidates.
    use_phonetic_blocking: bool = True
    # Additionally union per-attribute phonetic blocking (one key per name
    # attribute).  Raises pair completeness from ~93% to ~98% and final
    # recall by ~3 points, at ~3x candidate pairs and runtime — see
    # benchmarks/bench_ablation_blocking.py for the measured trade-off.
    use_per_attribute_phonetic_blocking: bool = False

    # Attribute schema (Must/Core/Extra categories + weights, Eq. (1)).
    schema: Schema = field(default_factory=default_schema)

    def __post_init__(self) -> None:
        for name in (
            "bootstrap_threshold",
            "merge_threshold",
            "atomic_threshold",
            "gamma",
            "density_threshold",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.bridge_node_limit < 3:
            raise ValueError("bridge_node_limit must be at least 3")
        if self.temporal_decay_half_life is not None and self.temporal_decay_half_life <= 0:
            raise ValueError("temporal_decay_half_life must be positive or None")
        if self.temporal_slack_years < 0:
            raise ValueError("temporal_slack_years cannot be negative")

    @property
    def effective_gamma(self) -> float:
        """γ actually used: 1.0 (pure atomic similarity) when AMB is off."""
        return self.gamma if self.use_ambiguity else 1.0
