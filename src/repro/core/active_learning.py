"""Active learning over linkage decisions (paper future work, Section 12:
"Such feedback can then be employed within an active learning based
framework to improve the quality of generated links").

The loop is uncertainty sampling over the dependency graph's relational
nodes: the most *informative* pairs to show a domain expert are the ones
the similarity model is least sure about — gate similarity close to the
merge threshold ``t_m``.  Expert answers flow into a
:class:`~repro.core.feedback.FeedbackSession` (must-/cannot-links), and
the merging step can be re-run with the feedback-aware checker.

``ActiveLearningLoop.run`` drives the whole cycle against any oracle
callable; tests and benches use a ground-truth oracle to quantify the
quality gained per expert question.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import SnapsConfig
from repro.core.feedback import FeedbackSession
from repro.core.merging import iterative_merge
from repro.core.resolver import LinkageResult
from repro.core.scoring import PairScorer

__all__ = ["ActiveLearningLoop", "QueryOutcome"]

Oracle = Callable[[int, int], bool]


@dataclass
class QueryOutcome:
    """One expert interaction round."""

    asked: list[tuple[int, int]]
    confirmed: int = 0
    rejected: int = 0
    skipped: int = 0
    merges_after: int = 0


class ActiveLearningLoop:
    """Uncertainty-sampling feedback loop over a resolved dataset."""

    def __init__(
        self,
        result: LinkageResult,
        config: SnapsConfig | None = None,
    ) -> None:
        self.result = result
        self.config = config or SnapsConfig()
        self.session = FeedbackSession(result.dataset, result.entities)
        self._scorer = PairScorer(result.dataset, self.config)

    # ------------------------------------------------------------------

    def uncertain_pairs(self, k: int = 10) -> list[tuple[int, int]]:
        """The ``k`` record pairs whose similarity sits closest to the
        merge threshold — the expert's answer changes the decision.

        Only unresolved disagreements qualify: unmerged nodes just below
        the threshold (potential missed links) and merged nodes just
        above it (potential wrong links).  Pairs with existing feedback
        are excluded.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        threshold = self.config.merge_threshold
        scored: list[tuple[float, tuple[int, int]]] = []
        answered = self.session.confirmed | self.session.rejected
        for node in self.result.graph:
            key = node.key()
            if key in answered:
                continue
            similarity = self._scorer.atomic_similarity(node)
            distance = abs(similarity - threshold)
            if distance < 0.15:
                scored.append((distance, key))
        scored.sort()
        return [key for _, key in scored[:k]]

    def ask(self, pairs: list[tuple[int, int]], oracle: Oracle) -> QueryOutcome:
        """Put ``pairs`` to the oracle and apply the answers as feedback.

        Confirmations that violate hard constraints are skipped (the
        oracle may be a fallible human; biology wins).
        """
        outcome = QueryOutcome(asked=list(pairs))
        for rid_a, rid_b in pairs:
            try:
                if oracle(rid_a, rid_b):
                    if not self.session.store.same_entity(rid_a, rid_b):
                        self.session.confirm(rid_a, rid_b)
                    else:
                        self.session.confirmed.add(
                            (min(rid_a, rid_b), max(rid_a, rid_b))
                        )
                    outcome.confirmed += 1
                else:
                    self.session.reject(rid_a, rid_b)
                    outcome.rejected += 1
            except ValueError:
                outcome.skipped += 1
        return outcome

    def remerge(self) -> int:
        """Re-run iterative merging under the accumulated feedback.

        Confirmed links have already merged; this pass lets the new
        positive evidence propagate (PROP-A over the enlarged entities)
        while the feedback-aware checker enforces every cannot-link.
        Returns the number of additional node merges.
        """
        checker = self.session.checker()
        return iterative_merge(
            self.result.graph,
            self.session.store,
            self._scorer,
            checker,
            self.config,
        )

    def run(
        self,
        oracle: Oracle,
        rounds: int = 3,
        questions_per_round: int = 10,
    ) -> list[QueryOutcome]:
        """Full loop: select → ask → remerge, for ``rounds`` rounds."""
        outcomes = []
        for _ in range(rounds):
            pairs = self.uncertain_pairs(questions_per_round)
            if not pairs:
                break
            outcome = self.ask(pairs, oracle)
            outcome.merges_after = self.remerge()
            outcomes.append(outcome)
        return outcomes
