"""Dynamic cluster refinement (REF): bridge/density error detection.

Paper Section 4.2.5, following Randall et al.: loosely connected record
clusters (chains) are more likely to contain wrong links than densely
connected ones (cliques).  After bootstrapping and after merging:

* a cluster of at least three records whose link-graph *density* falls
  below ``t_d`` loses its lowest-degree record (the most weakly attached
  one), repeatedly until the density recovers or the cluster shrinks to
  a pair;
* a cluster with more than ``t_n`` records is split at its *bridges*
  (edges whose removal disconnects the graph).

Unmerged records return to singleton status and can be re-linked
correctly in a later iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SnapsConfig
from repro.core.entities import Entity, EntityStore

__all__ = ["find_bridges", "refine_clusters", "RefinementStats"]


@dataclass
class RefinementStats:
    """What one refinement pass did."""

    records_removed: int = 0
    bridges_cut: int = 0
    clusters_examined: int = 0


def find_bridges(entity: Entity) -> list[tuple[int, int]]:
    """Bridges of the entity's link graph (Tarjan's algorithm, iterative).

    A bridge is an edge whose removal disconnects the graph.
    """
    # Canonical iteration order: the bridge list (and the split entities
    # derived from it) must not depend on set internals, or a run resumed
    # from a checkpoint could diverge from the uninterrupted one.
    adjacency: dict[int, list[int]] = {rid: [] for rid in sorted(entity.record_ids)}
    for a, b in sorted(entity.links):
        adjacency[a].append(b)
        adjacency[b].append(a)
    disc: dict[int, int] = {}
    low: dict[int, int] = {}
    bridges: list[tuple[int, int]] = []
    counter = 0
    for root in adjacency:
        if root in disc:
            continue
        # Iterative DFS: stack holds (node, parent, neighbour-iterator).
        stack = [(root, None, iter(adjacency[root]))]
        disc[root] = low[root] = counter
        counter += 1
        while stack:
            node, parent, neighbours = stack[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in disc:
                    disc[neighbour] = low[neighbour] = counter
                    counter += 1
                    stack.append((neighbour, node, iter(adjacency[neighbour])))
                    advanced = True
                    break
                if neighbour != parent:
                    low[node] = min(low[node], disc[neighbour])
            if not advanced:
                stack.pop()
                if stack:
                    parent_node = stack[-1][0]
                    low[parent_node] = min(low[parent_node], low[node])
                    if low[node] > disc[parent_node]:
                        bridges.append(tuple(sorted((parent_node, node))))  # type: ignore[arg-type]
    return bridges


def refine_clusters(store: EntityStore, config: SnapsConfig) -> RefinementStats:
    """One refinement pass over all clusters of three or more records.

    Split-off sub-clusters are re-examined in the same pass (a split can
    expose a still-too-sparse component).
    """
    stats = RefinementStats()
    pending = [e.entity_id for e in store.entities(min_size=3)]
    processed: set[int] = set()
    while pending:
        entity_id = pending.pop()
        if entity_id in processed:
            continue
        processed.add(entity_id)
        entity = store.get_entity(entity_id)
        if entity is None or len(entity) < 3:
            continue
        stats.clusters_examined += 1
        if len(entity) > config.bridge_node_limit:
            bridges = find_bridges(entity)
            if bridges:
                stats.bridges_cut += len(bridges)
                created = store.remove_links(entity, bridges)
                pending.extend(e.entity_id for e in created if len(e) >= 3)
                continue
        while len(entity) >= 3 and entity.density() < config.density_threshold:
            # Tie-break equal degrees by record id (determinism).
            loosest = min(
                entity.record_ids, key=lambda rid: (entity.degree(rid), rid)
            )
            created = store.remove_record(loosest)
            stats.records_removed += 1
            survivors = [e for e in created if len(e) >= 2]
            if not survivors:
                break
            entity = max(survivors, key=len)
            # Any other split-off components deserve their own examination.
            pending.extend(
                e.entity_id
                for e in created
                if e is not entity and len(e) >= 3
            )
    return stats
