"""Temporal and link constraints with global propagation (PROP-C).

Paper Section 4.2.2: relationships observed at different points in time
cannot be compared directly, but their *characteristics* constrain links:

* **temporal constraints** — each role implies a plausible birth-year
  range given the certificate year (e.g. a birth mother is 15–55 years
  older than her baby); every record a cluster accumulates narrows the
  cluster's feasible birth-year interval, and a merge requiring an empty
  interval is rejected;
* **link constraints** — a person has exactly one birth and one death
  record (one-to-one), cannot appear twice on the same certificate, and
  two roles can only co-refer when biologically linkable
  (:data:`repro.data.roles.LINKABLE_ROLE_PAIRS`).

*Propagation* means the constraints are evaluated against the **entities**
records currently belong to — every previously accepted link tightens what
future links are admissible.  With PROP-C disabled (ablation), only the
two original records are checked, so earlier decisions exert no negative
evidence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.entities import Entity, EntityStore
from repro.data.records import Record
from repro.data.roles import CENSUS_ROLES, SINGLETON_ROLES
from repro.blocking.candidates import roles_linkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["ConstraintChecker"]


class ConstraintChecker:
    """Validates whether two records (or their entities) may co-refer.

    ``metrics``, when given, counts every :meth:`can_merge` rejection
    split by level (``constraints.rejected_record_level`` /
    ``constraints.rejected_entity_level``) — the PROP-C negative-evidence
    volume the telemetry reports surface.
    """

    def __init__(
        self,
        temporal_slack_years: int = 2,
        propagate: bool = True,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if temporal_slack_years < 0:
            raise ValueError("slack cannot be negative")
        self.slack = temporal_slack_years
        self.propagate = propagate
        self.metrics = metrics
        # (rid_a, rid_b) -> rejection level, precomputed by the parallel
        # pipeline under the both-entities-are-singletons assumption:
        # 0 = mergeable, 1 = record-level reject, 2 = entity-level reject.
        self._pair_validity: dict[tuple[int, int], int] | None = None
        # Entity-level verdict memo, active alongside the seeded table.
        # (entity_id, size) identifies an entity state exactly — ids are
        # never reused, and every membership change either grows the
        # entity or replaces it with a fresh id — so a verdict computed
        # once holds for every record pair meeting in the same states.
        self._entity_memo: dict[tuple[int, int, int, int], bool] = {}

    def seed_pair_validity(self, table: dict[tuple[int, int], int]) -> None:
        """Install precomputed singleton-state :meth:`can_merge` outcomes.

        Level 1 (record-level) entries are valid forever — record checks
        never depend on merge state.  Levels 0 and 2 encode the verdict
        for *singleton* entities, so :meth:`can_merge` only consults them
        while both records still sit in single-record entities.
        """
        self._pair_validity = table

    # ------------------------------------------------------------------
    # Record-level checks (always applied)
    # ------------------------------------------------------------------

    def records_compatible(self, a: Record, b: Record) -> bool:
        """Constraints between the two raw records only."""
        if self._pair_validity is not None:
            rid_a, rid_b = a.record_id, b.record_id
            key = (rid_a, rid_b) if rid_a < rid_b else (rid_b, rid_a)
            level = self._pair_validity.get(key)
            if level is not None:
                return level != 1
        if a.cert_id == b.cert_id:
            return False
        if not roles_linkable(a.role, b.role):
            return False
        if (
            a.role in CENSUS_ROLES
            and b.role in CENSUS_ROLES
            and a.event_year == b.event_year
        ):
            # Two households of the same census never share a person.
            return False
        if a.role in SINGLETON_ROLES and a.role is b.role:
            return False
        gender_a, gender_b = a.gender, b.gender
        if gender_a is not None and gender_b is not None and gender_a != gender_b:
            return False
        lo_a, hi_a = a.birth_range()
        lo_b, hi_b = b.birth_range()
        return lo_a - self.slack <= hi_b and lo_b - self.slack <= hi_a

    # ------------------------------------------------------------------
    # Entity-level checks (PROP-C)
    # ------------------------------------------------------------------

    def entities_compatible(self, ea: Entity, eb: Entity) -> bool:
        """Constraints between two whole clusters.

        Checks certificate disjointness, combined singleton-role counts,
        gender consensus, the intersection of birth-year intervals, and
        pairwise role linkability across the clusters.
        """
        if self._pair_validity is not None:
            key = (
                ea.entity_id,
                len(ea.record_ids),
                eb.entity_id,
                len(eb.record_ids),
            )
            verdict = self._entity_memo.get(key)
            if verdict is None:
                verdict = self._entity_memo[key] = self._entities_compatible(
                    ea, eb
                )
            return verdict
        return self._entities_compatible(ea, eb)

    def _entities_compatible(self, ea: Entity, eb: Entity) -> bool:
        if ea.entity_id == eb.entity_id:
            return True
        if ea.cert_ids & eb.cert_ids:
            return False
        for role in SINGLETON_ROLES:
            if ea.role_counts.get(role, 0) + eb.role_counts.get(role, 0) > 1:
                return False
        if (
            ea.gender is not None
            and eb.gender is not None
            and ea.gender != eb.gender
        ):
            return False
        if (
            ea.birth_lo - self.slack > eb.birth_hi
            or eb.birth_lo - self.slack > ea.birth_hi
        ):
            return False
        if ea.census_years & eb.census_years:
            # A person appears in exactly one household per census year.
            return False
        for role_a in ea.role_counts:
            for role_b in eb.role_counts:
                if not roles_linkable(role_a, role_b):
                    return False
        return True

    def can_merge(self, store: EntityStore, a: Record, b: Record) -> bool:
        """Full validation of merging the entities of ``a`` and ``b``.

        With propagation enabled this is the PROP-C behaviour: the check
        runs between the records' *current entities*, so every earlier
        link contributes negative evidence.  Without propagation only the
        two records themselves are checked (Table 3 ablation).
        """
        if self._pair_validity is not None:
            rid_a, rid_b = a.record_id, b.record_id
            key = (rid_a, rid_b) if rid_a < rid_b else (rid_b, rid_a)
            level = self._pair_validity.get(key)
            if level is not None and (
                level == 1
                or (
                    len(store.entity_of(rid_a).record_ids) == 1
                    and len(store.entity_of(rid_b).record_ids) == 1
                )
            ):
                if level == 0:
                    return True
                if self.metrics is not None:
                    self.metrics.inc(
                        "constraints.rejected_record_level"
                        if level == 1
                        else "constraints.rejected_entity_level"
                    )
                return False
        if not self.records_compatible(a, b):
            if self.metrics is not None:
                self.metrics.inc("constraints.rejected_record_level")
            return False
        if not self.propagate:
            return True
        ea = store.entity_of(a.record_id)
        eb = store.entity_of(b.record_id)
        if not self.entities_compatible(ea, eb):
            if self.metrics is not None:
                self.metrics.inc("constraints.rejected_entity_level")
            return False
        return True
