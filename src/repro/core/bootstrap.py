"""Bootstrapping: merge the very-high-confidence node groups first.

Paper Section 4.2.6: "merge only nodes in groups (leaving the singletons),
where the average atomic similarities of all nodes in a group must be at
least the bootstrap threshold t_b = 0.95".  Groups carry more relationship
evidence than individual nodes, so only multi-node groups qualify at this
stage; constraints are still validated (a group can be near-identical yet
biologically impossible).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import SnapsConfig
from repro.core.constraints import ConstraintChecker
from repro.core.dependency_graph import DependencyGraph
from repro.core.entities import EntityStore
from repro.core.scoring import PairScorer
from repro.obs.metrics import SIMILARITY_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["bootstrap_merge"]


def bootstrap_merge(
    graph: DependencyGraph,
    store: EntityStore,
    scorer: PairScorer,
    checker: ConstraintChecker,
    config: SnapsConfig,
    metrics: "MetricsRegistry | None" = None,
) -> int:
    """Merge all qualifying groups; return the number of nodes merged.

    A group qualifies when it has at least two alive nodes, every node
    passes constraint validation, and the mean atomic similarity (Eq. 1)
    reaches ``t_b``.  Without REL (ablation) the behaviour is unchanged —
    bootstrapping never drops individual nodes in the paper either.

    ``metrics`` receives the group mean-similarity distribution
    (``similarity.bootstrap_group_mean``) and merge counters — the means
    are computed anyway, so observing them costs one histogram insert.

    Under parallel resolution both hot calls below resolve from seeded
    caches: ``scorer.atomic_similarity`` reads the node-score table and
    ``checker.records_compatible``/``can_merge`` read the precomputed
    pair-validity verdicts — same numbers, same decisions, no recompute.
    """
    if metrics is not None:
        mean_histogram = metrics.histogram(
            "similarity.bootstrap_group_mean", SIMILARITY_BUCKETS
        )
    merged_nodes = 0
    for group in graph.groups.values():
        nodes = graph.alive_group_nodes(group)
        if len(nodes) < 2:
            continue
        mean_atomic = sum(scorer.atomic_similarity(n) for n in nodes) / len(nodes)
        if metrics is not None:
            mean_histogram.observe(mean_atomic)
        if mean_atomic < config.bootstrap_threshold:
            continue
        # Validate every node before touching the store: bootstrap merges
        # a group atomically or not at all.
        records = [graph.records_of(node) for node in nodes]
        if not all(checker.records_compatible(a, b) for a, b in records):
            continue
        for node, (a, b) in zip(nodes, records):
            if not checker.can_merge(store, a, b):
                continue  # an earlier merge in this group may conflict
            store.merge(node.rid_a, node.rid_b)
            node.merged = True
            merged_nodes += 1
    if metrics is not None:
        metrics.inc("bootstrap.nodes_merged", merged_nodes)
    return merged_nodes
