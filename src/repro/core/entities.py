"""Entity store: record clusters with their internal link structure.

An *entity* is a cluster of records believed to refer to one real-world
person (paper Section 3).  Unlike a plain union-find, the store keeps the
individual merge links inside each cluster because the refinement step
(REF, Section 4.2.5) reasons about the cluster's *graph shape* — density
and bridges — and unmerges records, which requires recomputing connected
components after link removal.

The store also maintains per-entity aggregates used by constraint checking
(PROP-C): the intersection of plausible birth-year ranges, role counts,
gender consensus, and the set of source certificates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.data.records import Dataset, Record
from repro.data.roles import CENSUS_ROLES, Role

__all__ = ["Entity", "EntityStore"]


@dataclass
class Entity:
    """One record cluster and its aggregates.

    ``links`` are the direct record-pair merges that built the cluster —
    the edges of the per-entity graph that REF analyses.
    """

    entity_id: int
    record_ids: set[int] = field(default_factory=set)
    links: set[tuple[int, int]] = field(default_factory=set)
    birth_lo: int = -(10**9)
    birth_hi: int = 10**9
    gender: str | None = None
    role_counts: dict[Role, int] = field(default_factory=dict)
    cert_ids: set[int] = field(default_factory=set)
    # Census years this entity has a record in: a person appears in at
    # most one household per census, so these must stay unique.
    census_years: set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.record_ids)

    def degree(self, record_id: int) -> int:
        """Number of direct links touching ``record_id``."""
        return sum(1 for a, b in self.links if record_id in (a, b))

    def density(self) -> float:
        """Graph density 2|E| / (|N| (|N|-1)); 1.0 for singletons/pairs."""
        n = len(self.record_ids)
        if n < 3:
            return 1.0
        return 2.0 * len(self.links) / (n * (n - 1))


class EntityStore:
    """Mutable mapping from records to entities, supporting merge and unlink.

    Every record of the dataset starts as a singleton entity.  ``merge``
    combines two entities via a witnessing record-pair link; ``unlink``
    operations remove records or links and re-split entities into
    connected components (used by REF).
    """

    def __init__(self, dataset: Dataset) -> None:
        self._dataset = dataset
        self._entities: dict[int, Entity] = {}
        self._entity_of: dict[int, int] = {}
        # Plain int (not itertools.count) so checkpointing can capture and
        # restore the exact id sequence — see state()/from_state().
        self._next_id = 1
        for record in dataset:
            self._new_singleton(record)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _take_id(self) -> int:
        entity_id = self._next_id
        self._next_id += 1
        return entity_id

    def _new_singleton(self, record: Record) -> Entity:
        entity = Entity(entity_id=self._take_id())
        entity.record_ids.add(record.record_id)
        lo, hi = record.birth_range()
        entity.birth_lo, entity.birth_hi = lo, hi
        entity.gender = record.gender
        entity.role_counts[record.role] = 1
        entity.cert_ids.add(record.cert_id)
        if record.role in CENSUS_ROLES:
            entity.census_years.add(record.event_year)
        self._entities[entity.entity_id] = entity
        self._entity_of[record.record_id] = entity.entity_id
        return entity

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def entity_of(self, record_id: int) -> Entity:
        """The entity currently containing ``record_id``."""
        return self._entities[self._entity_of[record_id]]

    def get_entity(self, entity_id: int) -> Entity | None:
        """Entity by id, or None if it has been merged away or rebuilt."""
        return self._entities.get(entity_id)

    def same_entity(self, rid_a: int, rid_b: int) -> bool:
        """True when both records are currently in one cluster."""
        return self._entity_of[rid_a] == self._entity_of[rid_b]

    def entities(self, min_size: int = 1) -> Iterator[Entity]:
        """All entities with at least ``min_size`` records."""
        return (e for e in self._entities.values() if len(e) >= min_size)

    def records_of(self, entity: Entity) -> list[Record]:
        """The Record objects in ``entity``, in record-id order.

        The order is canonical (not merge order) so that everything
        derived from it — pedigree-graph value lists, tie-breaks — is a
        function of the membership alone.  A store restored from a
        checkpoint must behave identically to the live one it mirrors,
        and set iteration order does not survive serialisation.
        """
        return [self._dataset.record(rid) for rid in sorted(entity.record_ids)]

    def values_of(self, entity: Entity, attribute: str) -> list[str]:
        """All non-missing values of ``attribute`` across the cluster.

        This is the value set PROP-A compares against: an entity that has
        been seen under both a maiden and a married surname exposes both.
        Sorted, so similarity ties resolve the same way on every run
        (and after a checkpoint restore).
        """
        values = set()
        for record in self.records_of(entity):
            value = record.get(attribute)
            if value is not None:
                values.add(value)
        return sorted(values)

    def matched_pairs(self, roles_a: frozenset[Role], roles_b: frozenset[Role]) -> set[tuple[int, int]]:
        """All within-entity record pairs with one role on each side.

        This is the linkage output evaluated against ground truth for a
        role pair such as Bp-Bp.
        """
        pairs: set[tuple[int, int]] = set()
        for entity in self._entities.values():
            if len(entity) < 2:
                continue
            records = self.records_of(entity)
            for i, a in enumerate(records):
                for b in records[i + 1 :]:
                    if (a.role in roles_a and b.role in roles_b) or (
                        a.role in roles_b and b.role in roles_a
                    ):
                        lo, hi = sorted((a.record_id, b.record_id))
                        pairs.add((lo, hi))
        return pairs

    def all_matched_pairs(self) -> set[tuple[int, int]]:
        """Every within-entity record pair (any roles)."""
        pairs: set[tuple[int, int]] = set()
        for entity in self._entities.values():
            ids = sorted(entity.record_ids)
            for i, a in enumerate(ids):
                for b in ids[i + 1 :]:
                    pairs.add((a, b))
        return pairs

    def cluster_sizes(self) -> list[int]:
        """Sizes of all non-singleton clusters (for diagnostics)."""
        return sorted(
            (len(e) for e in self._entities.values() if len(e) > 1), reverse=True
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def merge(self, rid_a: int, rid_b: int) -> Entity:
        """Merge the entities of the two records, linked via this pair.

        The caller is responsible for having validated constraints
        (``ConstraintChecker.can_merge``); the store only refreshes its
        aggregates.  Merging records already in one entity just adds the
        link (strengthening the cluster graph, which matters for REF).
        """
        link = tuple(sorted((rid_a, rid_b)))
        ea = self.entity_of(rid_a)
        eb = self.entity_of(rid_b)
        if ea.entity_id == eb.entity_id:
            ea.links.add(link)  # type: ignore[arg-type]
            return ea
        # Merge the smaller into the larger.
        if len(ea) < len(eb):
            ea, eb = eb, ea
        ea.record_ids |= eb.record_ids
        ea.links |= eb.links
        ea.links.add(link)  # type: ignore[arg-type]
        ea.birth_lo = max(ea.birth_lo, eb.birth_lo)
        ea.birth_hi = min(ea.birth_hi, eb.birth_hi)
        if ea.gender is None:
            ea.gender = eb.gender
        for role, count in eb.role_counts.items():
            ea.role_counts[role] = ea.role_counts.get(role, 0) + count
        ea.cert_ids |= eb.cert_ids
        ea.census_years |= eb.census_years
        for rid in eb.record_ids:
            self._entity_of[rid] = ea.entity_id
        del self._entities[eb.entity_id]
        return ea

    def remove_record(self, record_id: int) -> list[Entity]:
        """Unmerge ``record_id`` from its cluster into a fresh singleton.

        Links incident to the record are dropped; if that disconnects the
        remaining cluster it is split into components (REF's "remove the
        node with the lowest degree").  Returns the entities created,
        including the new singleton.
        """
        entity = self.entity_of(record_id)
        if len(entity) == 1:
            return [entity]
        entity.record_ids.discard(record_id)
        entity.links = {
            link for link in entity.links if record_id not in link
        }
        del self._entities[entity.entity_id]
        for rid in entity.record_ids:
            del self._entity_of[rid]
        del self._entity_of[record_id]
        created = [self._new_singleton(self._dataset.record(record_id))]
        created.extend(self._rebuild_components(entity.record_ids, entity.links))
        return created

    def remove_links(
        self, entity: Entity, links: Iterable[tuple[int, int]]
    ) -> list[Entity]:
        """Remove ``links`` from ``entity``; return the split components."""
        remaining = entity.links - set(links)
        record_ids = set(entity.record_ids)
        del self._entities[entity.entity_id]
        for rid in record_ids:
            del self._entity_of[rid]
        return self._rebuild_components(record_ids, remaining)

    def _rebuild_components(
        self, record_ids: set[int], links: set[tuple[int, int]]
    ) -> list[Entity]:
        """Recreate entities as the connected components of (records, links)."""
        adjacency: dict[int, set[int]] = {rid: set() for rid in record_ids}
        for a, b in links:
            adjacency[a].add(b)
            adjacency[b].add(a)
        created: list[Entity] = []
        unvisited = set(record_ids)
        # Seed components in record-id order so split entities get their
        # ids in a canonical sequence (checkpoint-resume determinism).
        for start in sorted(record_ids):
            if start not in unvisited:
                continue
            unvisited.discard(start)
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in adjacency[node]:
                    if neighbour in unvisited:
                        unvisited.discard(neighbour)
                        component.add(neighbour)
                        frontier.append(neighbour)
            created.append(
                self._create_entity(
                    component,
                    {l for l in links if l[0] in component and l[1] in component},
                )
            )
        return created

    def _create_entity(
        self,
        record_ids: set[int],
        links: set[tuple[int, int]],
        entity_id: int | None = None,
    ) -> Entity:
        entity = Entity(
            entity_id=self._take_id() if entity_id is None else entity_id
        )
        entity.record_ids = set(record_ids)
        entity.links = set(links)
        # Record-id order, so order-sensitive aggregates (first non-None
        # gender) come out the same for a live store and one restored
        # from a checkpoint.
        for rid in sorted(record_ids):
            record = self._dataset.record(rid)
            lo, hi = record.birth_range()
            entity.birth_lo = max(entity.birth_lo, lo)
            entity.birth_hi = min(entity.birth_hi, hi)
            if entity.gender is None:
                entity.gender = record.gender
            entity.role_counts[record.role] = entity.role_counts.get(record.role, 0) + 1
            entity.cert_ids.add(record.cert_id)
            if record.role in CENSUS_ROLES:
                entity.census_years.add(record.event_year)
            self._entity_of[rid] = entity.entity_id
        self._entities[entity.entity_id] = entity
        return entity

    def __len__(self) -> int:
        return len(self._entities)

    # ------------------------------------------------------------------
    # Checkpointable state
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """JSON-serialisable snapshot of the clustering, exact to the id.

        Captures entity ids, membership, intra-cluster links, *and* the
        id counter, in the store's own iteration order — everything
        needed for :meth:`from_state` to rebuild a store whose further
        evolution (merges, refinement splits) is indistinguishable from
        the original's.  Aggregates are not stored: they are recomputed
        from the dataset and are functions of the membership alone.
        """
        return {
            "next_id": self._next_id,
            "entities": [
                {
                    "id": entity.entity_id,
                    "records": sorted(entity.record_ids),
                    "links": sorted(list(link) for link in entity.links),
                }
                for entity in self._entities.values()
            ],
        }

    @classmethod
    def from_state(cls, dataset: Dataset, state: dict) -> "EntityStore":
        """Rebuild a store from :meth:`state` output over ``dataset``."""
        store = cls.__new__(cls)
        store._dataset = dataset
        store._entities = {}
        store._entity_of = {}
        store._next_id = 1  # placeholder while _create_entity runs
        max_id = 0
        for blob in state["entities"]:
            entity_id = int(blob["id"])
            if entity_id in store._entities:
                raise ValueError(f"duplicate entity id {entity_id} in state")
            store._create_entity(
                {int(rid) for rid in blob["records"]},
                {(int(a), int(b)) for a, b in blob["links"]},
                entity_id=entity_id,
            )
            max_id = max(max_id, entity_id)
        covered = set(store._entity_of)
        expected = set(dataset.records)
        if covered != expected:
            missing = sorted(expected - covered)[:5]
            extra = sorted(covered - expected)[:5]
            raise ValueError(
                "entity state does not cover the dataset "
                f"(missing records {missing}, unknown records {extra})"
            )
        next_id = int(state["next_id"])
        if next_id <= max_id:
            raise ValueError(
                f"next_id {next_id} not above max entity id {max_id}"
            )
        store._next_id = next_id
        return store
