"""Iterative merging: priority-queue processing of node groups.

Paper Section 4.2.6.  The queue holds all relational node groups, larger
groups first, ties broken by higher average node similarity — with AMB
enabled the average uses the combined similarity of Eq. (3), so groups of
*unambiguous* (rare-name) pairs are processed before ambiguous ones and
their links constrain later decisions (this ordering effect is AMB's main
contribution; see DESIGN.md "Deviations").

Processing one group (the REL technique, Section 4.2.4):

1. drop nodes violating temporal/link constraints against the current
   entities (PROP-C as negative evidence);
2. re-point each remaining node's atomic nodes against the entities'
   accumulated QID values (PROP-A as positive evidence);
3. if the group's mean gate similarity reaches ``t_m`` merge every node,
   otherwise remove the lowest-scoring node and repeat, until a merge
   happens or the group is exhausted.

Without REL, a group either merges in full on first evaluation or not at
all — partial-match groups (a sibling node dragging the average down)
then block their parents' merge, which is exactly the Table 3 ablation
result (Bp-Dp quality collapses to zero).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import SnapsConfig
from repro.core.constraints import ConstraintChecker
from repro.core.dependency_graph import DependencyGraph, RelationalNode
from repro.core.entities import EntityStore
from repro.core.scoring import PairScorer
from repro.data.schema import AttributeCategory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["iterative_merge"]


def iterative_merge(
    graph: DependencyGraph,
    store: EntityStore,
    scorer: PairScorer,
    checker: ConstraintChecker,
    config: SnapsConfig,
    metrics: "MetricsRegistry | None" = None,
) -> int:
    """Run the merging step over all groups; return nodes merged.

    ``metrics`` receives per-group outcome counters (groups merged /
    rejected, nodes dropped) and the distribution of gate similarities
    (``similarity.merge_gate``) already computed by the REL loop.
    """
    groups = list(graph.groups.values())
    # Initial priorities: group size, then mean combined similarity.  The
    # queue is static (merging never creates groups), so a sorted list is
    # the priority queue.
    def priority(group) -> tuple[int, float]:
        nodes = graph.alive_group_nodes(group)
        if not nodes:
            return (0, 0.0)
        mean = sum(scorer.combined_similarity(n) for n in nodes) / len(nodes)
        return (len(nodes), mean)

    groups.sort(key=priority, reverse=True)
    merged_count = 0
    for group in groups:
        nodes = graph.alive_group_nodes(group)
        if not nodes:
            continue
        merged = _process_group(
            nodes, graph, store, scorer, checker, config, metrics
        )
        if metrics is not None:
            metrics.inc(
                "merging.groups_merged" if merged else "merging.groups_rejected"
            )
        merged_count += merged
    if metrics is not None:
        metrics.inc("merging.nodes_merged", merged_count)
    return merged_count


def _process_group(
    nodes: list[RelationalNode],
    graph: DependencyGraph,
    store: EntityStore,
    scorer: PairScorer,
    checker: ConstraintChecker,
    config: SnapsConfig,
    metrics: "MetricsRegistry | None" = None,
) -> int:
    """Apply the REL loop to one group; return nodes merged.

    Gate policy: a group of two or more mutually-supporting nodes is
    gated on its mean atomic similarity (Eq. 1) — relationship structure
    substitutes for disambiguation evidence.  A lone node has no such
    support, so it is gated on the combined similarity (Eq. 3): an
    ambiguous pair on its own cannot merge, however well its names agree.
    """
    use_rel = config.use_relational
    # Nodes removed because their records *actively disagree* (both Must
    # values present yet dissimilar) are remembered as negative evidence:
    # if the disagreeing nodes come to outnumber the survivors, the group
    # is rejected.  This separates the sibling case (one sibling node vs
    # two agreeing parent nodes → merge parents) from the father-and-son
    # namesake case (one agreeing father node vs one disagreeing wife
    # node → no merge).
    disagreements = 0
    while nodes:
        valid: list[RelationalNode] = []
        invalid: list[RelationalNode] = []
        for node in nodes:
            a, b = graph.records_of(node)
            if checker.can_merge(store, a, b) or store.same_entity(
                node.rid_a, node.rid_b
            ):
                valid.append(node)
            else:
                invalid.append(node)
        if invalid:
            if not use_rel:
                return 0  # a violating node blocks the whole group
            nodes = valid
            continue
        if not valid:
            return 0
        if config.use_propagation:
            for node in valid:
                scorer.propagate_values(graph, node, store)
        unsupported = [n for n in valid if not scorer.has_must_evidence(n)]
        if unsupported and use_rel:
            # REL's node-dropping: nodes without Must-attribute evidence
            # may never merge.  A node whose Must values are present on
            # both sides yet dissimilar is *active disagreement*; one with
            # a missing Must value is merely uninformative and is dropped
            # silently.  Without REL the weak node stays and drags the
            # group average down — the paper's partial-match-group
            # failure mode.
            disagreements += sum(
                1
                for n in unsupported
                if _must_values_disagree(graph, scorer, n, config)
            )
            nodes = [n for n in valid if scorer.has_must_evidence(n)]
            continue
        atomic = [scorer.atomic_similarity(n) for n in valid]
        if use_rel and len(valid) > 1 and min(atomic) < config.node_floor:
            # A clearly-dissimilar node (a sibling pair, say) must not be
            # dragged into a merge by an otherwise-strong group.
            kept = [n for n, s in zip(valid, atomic) if s >= config.node_floor]
            disagreements += sum(
                1
                for n, s in zip(valid, atomic)
                if s < config.node_floor and _must_values_disagree(graph, scorer, n, config)
            )
            nodes = kept
            continue
        if disagreements >= len(valid):
            return 0
        if len(valid) >= 2:
            mean_gate = sum(atomic) / len(atomic)
        elif config.gate_on_combined:
            mean_gate = scorer.combined_similarity(valid[0])
        else:
            mean_gate = atomic[0]
        if metrics is not None:
            from repro.obs.metrics import SIMILARITY_BUCKETS

            metrics.observe("similarity.merge_gate", mean_gate, SIMILARITY_BUCKETS)
        if mean_gate >= config.merge_threshold:
            merged = 0
            for node in valid:
                a, b = graph.records_of(node)
                if store.same_entity(node.rid_a, node.rid_b) or checker.can_merge(
                    store, a, b
                ):
                    store.merge(node.rid_a, node.rid_b)
                    node.merged = True
                    merged += 1
            return merged
        if not use_rel or len(valid) == 1:
            return 0
        # Drop the weakest node by combined similarity (ambiguous pairs
        # are least trustworthy) and retry with the rest.
        combined = [scorer.combined_similarity(n) for n in valid]
        weakest = min(range(len(valid)), key=lambda i: combined[i])
        if _must_values_disagree(graph, scorer, valid[weakest], config):
            disagreements += 1
        if metrics is not None:
            metrics.inc("merging.nodes_dropped")
        nodes = valid[:weakest] + valid[weakest + 1 :]
    return 0


def _must_values_disagree(
    graph: DependencyGraph,
    scorer: PairScorer,
    node: RelationalNode,
    config: SnapsConfig,
) -> bool:
    """True when the node's records both carry a Must attribute whose best
    similarity still falls below the atomic threshold — active negative
    evidence, as opposed to mere missing values."""
    a, b = graph.records_of(node)
    for attribute in config.schema.names_in(AttributeCategory.MUST):
        value_a, value_b = a.get(attribute), b.get(attribute)
        if value_a is None or value_b is None:
            continue
        if attribute in node.atomic:
            continue  # an atomic node exists, so the values agree
        return True
    return False
