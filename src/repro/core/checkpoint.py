"""Per-phase resolver checkpoints with crash-resume.

The offline pipeline runs for hours on real datasets; a crash in the
last phase must not cost the first four.  A :class:`ResolveCheckpointer`
owns a directory

.. code-block:: text

    <dir>/
      checkpoint.json            # format/version, phase order, config,
                                 # dataset fingerprint
      dataset.records.csv        # the exact dataset being resolved
      dataset.certs.csv
      phases/
        blocking.npz             # candidate pairs (order-preserving)
        blocking.npz.sha256      # completion marker = payload checksum
        bootstrap.json           # exact EntityStore state + run stats
        bootstrap.json.sha256
        ...

Each phase commits payload-then-marker, both via atomic rename: a crash
between the two leaves a payload without a marker, which resume treats
as "phase not completed" and re-runs — and a torn payload fails its
checksum the same way.  ``repro resolve --resume <dir>`` needs nothing
but the directory: dataset and configuration are restored from it, so
the resumed run continues from the last completed phase and produces
**byte-identical** final output to an uninterrupted run (the chaos
suite asserts exactly this at every phase boundary).

Payload codecs are shared with the snapshot store
(:mod:`repro.store.codecs`); failures here classify as ``data`` faults.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.config import SnapsConfig
from repro.data.loader import load_dataset_csv, save_dataset_csv
from repro.data.records import Dataset
from repro.faults import corrupt_write, fire
from repro.faults.resources import as_resource_fault, check_free_space
from repro.faults.taxonomy import DataFault
from repro.obs.logs import get_logger
from repro.store import codecs
from repro.store.manifest import (
    config_fingerprint,
    config_from_dict,
    config_to_dict,
    file_sha256,
)

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.blocking.candidates import CandidatePair
    from repro.core.entities import EntityStore

__all__ = [
    "CheckpointError",
    "GracefulExit",
    "ResolveCheckpointer",
    "pipeline_phases",
]

logger = get_logger("core.checkpoint")

CHECKPOINT_FORMAT = "snaps-resolve-checkpoint"
CHECKPOINT_VERSION = 1
META_FILENAME = "checkpoint.json"
PHASES_DIRNAME = "phases"

# Every phase the resolver may checkpoint, in pipeline order.  "blocking"
# stores candidate pairs; the rest store full entity-store state.  The
# dependency graph is NOT checkpointed: it is a deterministic function of
# (dataset, pairs) and rebuilding it is cheaper than serialising it.
ALL_PHASES = ("blocking", "bootstrap", "refine_bootstrap", "merging", "refine_merge")


class CheckpointError(DataFault):
    """A checkpoint directory is unusable for the requested operation."""


class GracefulExit(Exception):
    """A stop signal arrived and the in-flight phase has been committed.

    Raised by :meth:`ResolveCheckpointer.check_stop` at the first phase
    boundary after :meth:`ResolveCheckpointer.request_stop` — i.e. only
    once the phase's checkpoint is durably on disk, so ``--resume``
    continues from exactly here with byte-identical final output.
    """

    def __init__(self, signum: int, phase: str):
        super().__init__(
            f"stopped by signal {signum} after committing phase {phase!r}"
        )
        self.signum = signum
        self.phase = phase


def pipeline_phases(config: SnapsConfig) -> tuple[str, ...]:
    """The phases a resolver run under ``config`` will execute."""
    phases = ["blocking", "bootstrap"]
    if config.use_refinement:
        phases.append("refine_bootstrap")
    phases.append("merging")
    if config.use_refinement:
        phases.append("refine_merge")
    return tuple(phases)


class ResolveCheckpointer:
    """Commits/restores per-phase resolver state in one directory."""

    def __init__(self, directory: str | Path, phases: tuple[str, ...]) -> None:
        self.directory = Path(directory)
        self.phases = phases
        self._stop_signum: int | None = None

    # ------------------------------------------------------------------
    # Graceful stop (SIGTERM/SIGINT drain)
    # ------------------------------------------------------------------

    def request_stop(self, signum: int) -> None:
        """Note a stop signal; honoured at the next phase boundary.

        Safe to call from a signal handler: it only sets a flag.  The
        resolver keeps running until the in-flight phase's checkpoint is
        durably committed, then :meth:`check_stop` raises
        :class:`GracefulExit` — never mid-phase, never mid-commit.
        """
        self._stop_signum = signum

    @property
    def stop_requested(self) -> bool:
        return self._stop_signum is not None

    def check_stop(self, phase: str) -> None:
        """Raise :class:`GracefulExit` if a stop was requested.

        Call immediately *after* committing ``phase`` so the exception
        always means "resume will pick up from here".
        """
        if self._stop_signum is not None:
            logger.info(
                "graceful stop: phase %s committed, exiting on signal %d",
                phase,
                self._stop_signum,
            )
            raise GracefulExit(self._stop_signum, phase)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def begin(
        cls,
        directory: str | Path,
        dataset: Dataset,
        config: SnapsConfig,
        fresh: bool = True,
    ) -> "ResolveCheckpointer":
        """Open ``directory`` for a (re)run of ``dataset`` under ``config``.

        A pre-existing checkpoint for a *different* dataset or config is
        refused — resuming across either would silently produce wrong
        output.  With ``fresh`` (the default for ``--checkpoint``),
        existing phase payloads are discarded; ``--resume`` goes through
        :meth:`resume` instead and keeps them.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta_path = directory / META_FILENAME
        phases = pipeline_phases(config)
        if meta_path.exists():
            meta = cls._read_meta(meta_path)
            if meta["config_fingerprint"] != config_fingerprint(config):
                raise CheckpointError(
                    f"checkpoint {directory} was created with a different "
                    "configuration; use a fresh directory or matching flags"
                )
            if meta["dataset"]["sha256"] != dataset.content_fingerprint():
                raise CheckpointError(
                    f"checkpoint {directory} was created for a different "
                    f"dataset ({meta['dataset'].get('name')})"
                )
            checkpointer = cls(directory, tuple(meta["phases"]))
            if fresh:
                checkpointer._clear_phases()
            return checkpointer
        save_dataset_csv(dataset, directory / "dataset")
        meta = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "phases": list(phases),
            "config": config_to_dict(config),
            "config_fingerprint": config_fingerprint(config),
            "dataset": {
                "name": dataset.name,
                "records": len(dataset),
                "certificates": len(dataset.certificates),
                "sha256": dataset.content_fingerprint(),
            },
        }
        cls._atomic_write(meta_path, json.dumps(meta, indent=2, sort_keys=True))
        return cls(directory, phases)

    @classmethod
    def resume(
        cls, directory: str | Path
    ) -> tuple["ResolveCheckpointer", Dataset, SnapsConfig]:
        """Reopen ``directory``; returns (checkpointer, dataset, config).

        The dataset comes from the checkpoint's own CSV copy, so a
        resumed run needs no other inputs — and is guaranteed to iterate
        records in the same order the checkpointing run saved them.
        """
        directory = Path(directory)
        meta = cls._read_meta(directory / META_FILENAME)
        config = config_from_dict(meta["config"])
        dataset = load_dataset_csv(
            directory / "dataset", name=meta["dataset"].get("name")
        )
        if dataset.content_fingerprint() != meta["dataset"]["sha256"]:
            raise CheckpointError(
                f"checkpoint {directory}: dataset CSVs do not match the "
                "fingerprint recorded at checkpoint time"
            )
        return cls(directory, tuple(meta["phases"])), dataset, config

    @staticmethod
    def _read_meta(meta_path: Path) -> dict:
        try:
            meta = json.loads(meta_path.read_text())
        except FileNotFoundError:
            raise CheckpointError(
                f"{meta_path.parent} is not a checkpoint directory "
                f"(no {META_FILENAME})"
            ) from None
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt checkpoint meta {meta_path}: {exc}") from None
        if meta.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{meta_path} is not a resolve checkpoint "
                f"(format={meta.get('format')!r})"
            )
        if meta.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {meta.get('version')!r} "
                f"(this build reads {CHECKPOINT_VERSION})"
            )
        return meta

    def _clear_phases(self) -> None:
        phases_dir = self.directory / PHASES_DIRNAME
        if phases_dir.is_dir():
            for entry in phases_dir.iterdir():
                entry.unlink()

    # ------------------------------------------------------------------
    # Completion tracking
    # ------------------------------------------------------------------

    def _payload_path(self, phase: str) -> Path:
        suffix = ".npz" if phase == "blocking" else ".json"
        return self.directory / PHASES_DIRNAME / f"{phase}{suffix}"

    def _marker_path(self, phase: str) -> Path:
        return self._payload_path(phase).with_name(
            self._payload_path(phase).name + ".sha256"
        )

    def is_complete(self, phase: str) -> bool:
        """Payload present and matching its completion marker?"""
        payload, marker = self._payload_path(phase), self._marker_path(phase)
        if not payload.exists() or not marker.exists():
            return False
        return file_sha256(payload) == marker.read_text().strip()

    def completed_prefix(self) -> tuple[str, ...]:
        """Longest verified run of completed phases, in pipeline order.

        A later checkpoint is only trusted when everything before it is
        intact too — a torn early payload invalidates its successors,
        since their state was derived from it.
        """
        done: list[str] = []
        for phase in self.phases:
            if not self.is_complete(phase):
                break
            done.append(phase)
        return tuple(done)

    # ------------------------------------------------------------------
    # Payload commit/restore
    # ------------------------------------------------------------------

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)

    def _commit(self, phase: str, write_payload) -> None:
        """Write the payload, then its marker — both atomically.

        Fault sites: ``checkpoint.commit.<phase>`` fires between payload
        write and rename (a crash here loses the phase);
        ``checkpoint.torn.<phase>`` tears the committed payload (resume
        detects the checksum mismatch); ``checkpoint.saved.<phase>``
        fires after a durable commit (a crash here resumes *from* the
        phase).
        """
        if phase not in self.phases:
            raise CheckpointError(
                f"phase {phase!r} not in checkpoint plan {self.phases}"
            )
        payload = self._payload_path(phase)
        payload.parent.mkdir(parents=True, exist_ok=True)
        check_free_space(payload.parent, 1 << 20, "resolve checkpoint")
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=payload.parent)
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            write_payload(tmp)
            fire(f"checkpoint.commit.{phase}")
            os.replace(tmp, payload)
        except BaseException as exc:
            tmp.unlink(missing_ok=True)
            fault = as_resource_fault(
                exc,
                f"checkpoint commit for phase {phase!r}",
                "the phase was not committed and earlier checkpoints are "
                "intact; free disk space and re-run with --resume",
            )
            if fault is not None:
                raise fault from exc
            raise
        self._atomic_write(self._marker_path(phase), file_sha256(payload) + "\n")
        logger.info("checkpointed phase %s (%s)", phase, payload.name)
        corrupt_write(f"checkpoint.torn.{phase}", payload)
        fire(f"checkpoint.saved.{phase}")

    def _verified_payload(self, phase: str) -> Path:
        if not self.is_complete(phase):
            raise CheckpointError(
                f"phase {phase!r} has no intact checkpoint in {self.directory}"
            )
        return self._payload_path(phase)

    def save_pairs(self, pairs: list["CandidatePair"]) -> None:
        self._commit(
            "blocking", lambda tmp: codecs.save_candidate_pairs(pairs, tmp)
        )

    def load_pairs(self) -> list["CandidatePair"]:
        return codecs.load_candidate_pairs(self._verified_payload("blocking"))

    def save_state(self, phase: str, store: "EntityStore", stats: dict) -> None:
        """Checkpoint the full entity store plus cumulative run stats."""
        blob = {
            "phase": phase,
            "stats": stats,
            "entities": codecs.encode_entity_state(store),
        }

        def write(tmp: Path) -> None:
            tmp.write_text(json.dumps(blob))

        self._commit(phase, write)

    def load_state(
        self, phase: str, dataset: Dataset
    ) -> tuple["EntityStore", dict]:
        path = self._verified_payload(phase)
        try:
            blob = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt checkpoint payload {path}: {exc}") from None
        if blob.get("phase") != phase:
            raise CheckpointError(
                f"checkpoint payload {path} is for phase {blob.get('phase')!r}, "
                f"expected {phase!r}"
            )
        store = codecs.decode_entity_state(blob["entities"], dataset)
        return store, blob["stats"]
