"""The paper's primary contribution: unsupervised graph-based ER.

Pipeline (paper Section 4):

1. blocking + filtering → candidate record pairs (``repro.blocking``);
2. dependency-graph generation — relational nodes (record pairs) with
   atomic nodes (QID value pairs) and relationship edges;
3. bootstrapping — merge highly-similar groups (``t_b = 0.95``);
4. iterative merging — priority-queue processing of node groups applying
   PROP-A (global QID-value propagation), PROP-C (constraint
   propagation), AMB (disambiguation similarity), and REL (adaptive
   group-structure leverage);
5. REF — dynamic cluster refinement via graph measures (bridges/density)
   after bootstrap and after merging.

Each technique can be disabled individually through
:class:`~repro.core.config.SnapsConfig` for the Table 3 ablation.
"""

from repro.core.config import SnapsConfig
from repro.core.entities import Entity, EntityStore
from repro.core.constraints import ConstraintChecker
from repro.core.dependency_graph import (
    AtomicNode,
    DependencyGraph,
    RelationalNode,
    build_dependency_graph,
)
from repro.core.scoring import PairScorer, NameFrequencyIndex
from repro.core.refinement import refine_clusters
from repro.core.bootstrap import bootstrap_merge
from repro.core.merging import iterative_merge
from repro.core.resolver import LinkageResult, SnapsResolver

__all__ = [
    "SnapsConfig",
    "Entity",
    "EntityStore",
    "ConstraintChecker",
    "AtomicNode",
    "RelationalNode",
    "DependencyGraph",
    "build_dependency_graph",
    "PairScorer",
    "NameFrequencyIndex",
    "refine_clusters",
    "bootstrap_merge",
    "iterative_merge",
    "LinkageResult",
    "SnapsResolver",
]
