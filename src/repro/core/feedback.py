"""Expert feedback on generated links (paper future work, Section 12).

The paper plans to collect domain-expert feedback on correctly and
wrongly generated family trees and feed it back into linkage.  This
module implements that loop deterministically (the simplest sound
variant, before any active learning):

* a **confirmed** record pair is a must-link: the records' entities are
  merged immediately, overriding similarity thresholds (but never hard
  constraints — confirming a biologically impossible link raises);
* a **rejected** record pair is a cannot-link: if currently linked the
  connecting structure is cut, and the pair is remembered so no later
  merge can re-join the two records (directly or transitively).

``FeedbackSession`` wraps an :class:`~repro.core.entities.EntityStore`
and keeps the accumulated feedback; ``checker`` produces a
feedback-aware constraint checker to thread into re-runs of the merging
step so expert knowledge persists across re-resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import ConstraintChecker
from repro.core.entities import EntityStore
from repro.data.records import Dataset, Record

__all__ = ["FeedbackSession", "FeedbackAwareChecker"]

Pair = tuple[int, int]


def _key(rid_a: int, rid_b: int) -> Pair:
    if rid_a == rid_b:
        raise ValueError(f"a record cannot be linked to itself: {rid_a}")
    return (rid_a, rid_b) if rid_a < rid_b else (rid_b, rid_a)


@dataclass
class FeedbackSession:
    """Accumulates expert link feedback and applies it to an entity store."""

    dataset: Dataset
    store: EntityStore
    confirmed: set[Pair] = field(default_factory=set)
    rejected: set[Pair] = field(default_factory=set)

    def confirm(self, rid_a: int, rid_b: int) -> None:
        """Expert asserts the two records are the same person.

        Raises ``ValueError`` when the pair was previously rejected or
        violates a hard constraint (roles/gender/temporal) — feedback can
        override *similarity*, not biology.
        """
        pair = _key(rid_a, rid_b)
        if pair in self.rejected:
            raise ValueError(f"pair {pair} was previously rejected")
        a, b = self.dataset.record(pair[0]), self.dataset.record(pair[1])
        checker = ConstraintChecker()
        if not checker.can_merge(self.store, a, b):
            raise ValueError(
                f"pair {pair} violates hard constraints and cannot be confirmed"
            )
        self.confirmed.add(pair)
        self.store.merge(pair[0], pair[1])

    def reject(self, rid_a: int, rid_b: int) -> None:
        """Expert asserts the two records are different people.

        If the records currently share an entity, the entity is split so
        they no longer do: direct links between them are removed, and if
        they remain transitively connected the weaker-attached of the two
        records is unmerged into a singleton.
        """
        pair = _key(rid_a, rid_b)
        if pair in self.confirmed:
            raise ValueError(f"pair {pair} was previously confirmed")
        self.rejected.add(pair)
        if not self.store.same_entity(*pair):
            return
        entity = self.store.entity_of(pair[0])
        direct = {link for link in entity.links if set(link) == set(pair)}
        if direct:
            created = self.store.remove_links(entity, direct)
        if self.store.same_entity(*pair):
            entity = self.store.entity_of(pair[0])
            loosest = min(pair, key=entity.degree)
            self.store.remove_record(loosest)

    def checker(self, base: ConstraintChecker | None = None) -> "FeedbackAwareChecker":
        """A constraint checker that additionally enforces cannot-links."""
        return FeedbackAwareChecker(self, base or ConstraintChecker())

    def summary(self) -> dict[str, int]:
        return {
            "confirmed": len(self.confirmed),
            "rejected": len(self.rejected),
        }


class FeedbackAwareChecker(ConstraintChecker):
    """ConstraintChecker that also vetoes merges joining rejected pairs.

    A merge is vetoed when any rejected pair would end up inside one
    entity — including transitively (the rejected records sit in the two
    entities being merged).
    """

    def __init__(self, session: FeedbackSession, base: ConstraintChecker) -> None:
        super().__init__(
            temporal_slack_years=base.slack, propagate=base.propagate
        )
        self._session = session

    def can_merge(self, store: EntityStore, a: Record, b: Record) -> bool:
        if not super().can_merge(store, a, b):
            return False
        entity_a = store.entity_of(a.record_id)
        entity_b = store.entity_of(b.record_id)
        if entity_a.entity_id == entity_b.entity_id:
            return True
        combined = entity_a.record_ids | entity_b.record_ids
        for rid_x, rid_y in self._session.rejected:
            if rid_x in combined and rid_y in combined:
                return False
        return True
