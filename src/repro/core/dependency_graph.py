"""Dependency graph G_D: atomic nodes, relational nodes, relationship edges.

Paper Section 4.1: the dependency graph contains

* **atomic nodes** (``N_A``) — pairs of QID values with their similarity,
  admitted when the similarity reaches the threshold ``t_a``;
* **relational nodes** (``N_R``) — pairs of records that may refer to the
  same person (the blocked, filtered candidate pairs);
* **edges** — a relational node depends on its atomic nodes, and
  relational nodes arising from the same certificate pair are connected
  by relationship edges (*motherOf*, *fatherOf*, *spouseOf*, *childOf*).

Relational nodes from one certificate pair form a *node group* — the unit
the bootstrap and merging steps operate on (e.g. for two birth
certificates the group holds the mother, father, and baby pair nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.blocking.candidates import CandidatePair
from repro.core.config import SnapsConfig
from repro.data.records import Dataset, Record
from repro.similarity.registry import ComparatorRegistry, default_registry

__all__ = [
    "AtomicNode",
    "RelationalNode",
    "NodeGroup",
    "DependencyGraph",
    "build_dependency_graph",
]

GroupKey = tuple[int, int]  # sorted certificate-id pair


@dataclass(frozen=True)
class AtomicNode:
    """A pair of QID values of one attribute and their similarity."""

    attribute: str
    value_a: str
    value_b: str
    similarity: float

    def key(self) -> tuple[str, str, str]:
        lo, hi = sorted((self.value_a, self.value_b))
        return (self.attribute, lo, hi)


@dataclass
class RelationalNode:
    """A candidate record pair, with its currently attached atomic nodes.

    ``atomic`` maps attribute name to the best-matching atomic node; under
    PROP-A these are re-pointed as entities accumulate alternative QID
    values (the (Smith, Taylor) → (Tayler, Taylor) example of Figure 4).
    """

    rid_a: int
    rid_b: int
    group: GroupKey
    atomic: dict[str, AtomicNode] = field(default_factory=dict)
    merged: bool = False

    def key(self) -> tuple[int, int]:
        return (self.rid_a, self.rid_b)

    def atomic_mean(self) -> float:
        """Unweighted mean of attached atomic similarities (0 if none)."""
        if not self.atomic:
            return 0.0
        return sum(n.similarity for n in self.atomic.values()) / len(self.atomic)


@dataclass
class NodeGroup:
    """All relational nodes sharing one certificate pair, plus the
    relationship edges between them."""

    key: GroupKey
    node_keys: list[tuple[int, int]] = field(default_factory=list)
    # Edges: (node_key_a, relationship, node_key_b).
    edges: list[tuple[tuple[int, int], str, tuple[int, int]]] = field(
        default_factory=list
    )


class DependencyGraph:
    """Container for the relational nodes, atomic registry, and groups."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self.nodes: dict[tuple[int, int], RelationalNode] = {}
        self.groups: dict[GroupKey, NodeGroup] = {}
        self._atomic_registry: set[tuple[str, str, str]] = set()

    # ------------------------------------------------------------------

    def add_node(self, node: RelationalNode) -> None:
        """Insert a relational node and register it with its group."""
        self.nodes[node.key()] = node
        group = self.groups.get(node.group)
        if group is None:
            group = NodeGroup(key=node.group)
            self.groups[node.group] = group
        group.node_keys.append(node.key())
        for atomic in node.atomic.values():
            self._atomic_registry.add(atomic.key())

    def register_atomic(self, atomic: AtomicNode) -> None:
        """Count a (possibly re-pointed) atomic node in |N_A|."""
        self._atomic_registry.add(atomic.key())

    def node(self, key: tuple[int, int]) -> RelationalNode:
        return self.nodes[key]

    def records_of(self, node: RelationalNode) -> tuple[Record, Record]:
        return (
            self.dataset.record(node.rid_a),
            self.dataset.record(node.rid_b),
        )

    def alive_group_nodes(self, group: NodeGroup) -> list[RelationalNode]:
        """Unmerged nodes of ``group`` (merging consumes nodes)."""
        return [
            self.nodes[key] for key in group.node_keys if not self.nodes[key].merged
        ]

    @property
    def n_atomic(self) -> int:
        """|N_A| — distinct atomic (value-pair) nodes ever admitted."""
        return len(self._atomic_registry)

    @property
    def n_relational(self) -> int:
        """|N_R| — relational (record-pair) nodes."""
        return len(self.nodes)

    def __iter__(self) -> Iterator[RelationalNode]:
        return iter(self.nodes.values())

    def merged_nodes(self) -> list[RelationalNode]:
        return [n for n in self.nodes.values() if n.merged]


def _group_edges(graph: DependencyGraph, group: NodeGroup) -> None:
    """Derive relationship edges inside one certificate-pair group.

    Two relational nodes (ra, rc) and (rb, rd) are connected with label
    ``rel`` when certificate A relates ra→rb and certificate B relates
    rc→rd with the same relationship (Figure 3).  ``childOf`` edges are
    the reverses of Mof/Fof and are represented implicitly.
    """
    cert_a = graph.dataset.certificates[group.key[0]]
    cert_b = graph.dataset.certificates[group.key[1]]
    present = set(group.node_keys)
    rels_a = cert_a.relationships()
    rels_b = cert_b.relationships()
    for ra, rel_a, rb in rels_a:
        for rc, rel_b, rd in rels_b:
            if rel_a != rel_b:
                continue
            for left, right in (((ra, rc), (rb, rd)),):
                key_left = tuple(sorted(left))
                key_right = tuple(sorted(right))
                if key_left in present and key_right in present:
                    group.edges.append((key_left, rel_a, key_right))
            if rel_a == "Sof":
                # Spouse links are symmetric: also try the crossed pairing.
                key_left = tuple(sorted((ra, rd)))
                key_right = tuple(sorted((rb, rc)))
                if key_left in present and key_right in present:
                    group.edges.append((key_left, "Sof", key_right))


def build_dependency_graph(
    dataset: Dataset,
    candidate_pairs: Iterable[CandidatePair],
    config: SnapsConfig,
    registry: ComparatorRegistry | None = None,
) -> DependencyGraph:
    """Construct G_D from filtered candidate pairs.

    For each candidate pair a relational node is created; each schema
    attribute present on both records whose similarity reaches ``t_a``
    contributes an atomic node.  A shared cache keyed on value pairs makes
    the cost proportional to *distinct* value pairs rather than record
    pairs (names repeat heavily — that is the ambiguity problem itself).
    """
    registry = registry or default_registry()
    graph = DependencyGraph(dataset)
    sim_cache: dict[tuple[str, str, str], float] = {}
    attributes = config.schema.names()
    for pair in candidate_pairs:
        a = dataset.record(pair.rid_a)
        b = dataset.record(pair.rid_b)
        group_key: GroupKey = tuple(sorted((a.cert_id, b.cert_id)))  # type: ignore[assignment]
        node = RelationalNode(rid_a=pair.rid_a, rid_b=pair.rid_b, group=group_key)
        for attribute in attributes:
            value_a, value_b = a.get(attribute), b.get(attribute)
            if value_a is None or value_b is None:
                continue
            lo, hi = sorted((value_a, value_b))
            cache_key = (attribute, lo, hi)
            similarity = sim_cache.get(cache_key)
            if similarity is None:
                similarity = registry.compare(attribute, value_a, value_b) or 0.0
                sim_cache[cache_key] = similarity
            if similarity >= config.atomic_threshold:
                node.atomic[attribute] = AtomicNode(
                    attribute, value_a, value_b, similarity
                )
        graph.add_node(node)
    for group in graph.groups.values():
        _group_edges(graph, group)
    return graph
