"""End-to-end SNAPS resolver: blocking → G_D → bootstrap → merge → refine.

``SnapsResolver`` is the public entry point of the offline component.  It
runs the full pipeline of paper Section 4 and returns a
:class:`LinkageResult` with the final entity clusters, per-phase timings
(feeding the Table 5/6 benches), and graph statistics (|N_A|, |N_R|).

Every one of the four techniques can be ablated through
:class:`~repro.core.config.SnapsConfig` — the Table 3 experiment is just
four resolver runs with one switch off each.

The run is fully observable through :mod:`repro.obs`: pass a
:class:`~repro.obs.trace.Trace` and a
:class:`~repro.obs.metrics.MetricsRegistry` to :meth:`SnapsResolver.resolve`
and every phase becomes a span under the ``resolve`` root while the
pipeline stages emit candidate/merge/rejection counters and similarity
histograms.  Both default to off and cost nothing when absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.blocking.lsh import LshBlocker
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
from repro.blocking.candidates import generate_candidate_pairs
from repro.core.bootstrap import bootstrap_merge
from repro.core.config import SnapsConfig
from repro.core.constraints import ConstraintChecker
from repro.core.dependency_graph import DependencyGraph, build_dependency_graph
from repro.core.entities import EntityStore
from repro.core.merging import iterative_merge
from repro.core.refinement import RefinementStats, refine_clusters
from repro.core.scoring import NameFrequencyIndex, PairScorer
from repro.data.records import Dataset
from repro.data.roles import Role
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace
from repro.similarity.registry import ComparatorRegistry, registry_for_config
from repro.utils.timer import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.parallel import ParallelConfig

__all__ = ["LinkageResult", "SnapsResolver"]

logger = get_logger("core.resolver")


@dataclass
class LinkageResult:
    """Output of one resolver run."""

    dataset: Dataset
    entities: EntityStore
    graph: DependencyGraph
    timings: Stopwatch = field(default_factory=Stopwatch)
    bootstrap_merges: int = 0
    iterative_merges: int = 0
    refinement: RefinementStats = field(default_factory=RefinementStats)
    metrics: MetricsRegistry | None = None
    trace: Trace | None = None

    def matched_pairs(self, role_pair: str) -> set[tuple[int, int]]:
        """Predicted matching record pairs for a paper-notation role pair
        (e.g. ``"Bp-Bp"``, ``"Bp-Dp"``, ``"Bb-Dd"``)."""
        from repro.data.roles import PARENT_ROLE_GROUPS

        left, right = role_pair.split("-")
        return self.entities.matched_pairs(
            PARENT_ROLE_GROUPS[left], PARENT_ROLE_GROUPS[right]
        )

    @property
    def n_atomic(self) -> int:
        return self.graph.n_atomic

    @property
    def n_relational(self) -> int:
        return self.graph.n_relational

    def summary(self) -> dict[str, float]:
        """Key counts and timings for benchmarking output.

        When the run carried a metrics registry, its pipeline counters
        (candidate pairs, constraint rejections, reduction ratio) join
        the summary, so bench artefacts report one consistent set of
        numbers.
        """
        summary: dict[str, float] = {
            "records": len(self.dataset),
            "n_atomic": self.n_atomic,
            "n_relational": self.n_relational,
            "bootstrap_merges": self.bootstrap_merges,
            "iterative_merges": self.iterative_merges,
            "refined_records_removed": self.refinement.records_removed,
            "refined_bridges_cut": self.refinement.bridges_cut,
            **{f"time_{k}": round(v, 4) for k, v in self.timings.times.items()},
            "time_total": round(self.timings.total(), 4),
        }
        if self.metrics is not None:
            snapshot = self.metrics.as_dict()
            for name in (
                "blocking.candidate_pairs",
                "blocking.raw_pairs",
                "constraints.rejected_record_level",
                "constraints.rejected_entity_level",
            ):
                if name in snapshot["counters"]:
                    summary[name] = snapshot["counters"][name]
            if "blocking.reduction_ratio" in snapshot["gauges"]:
                summary["blocking.reduction_ratio"] = round(
                    snapshot["gauges"]["blocking.reduction_ratio"], 6
                )
        return summary

    def report(self, meta: dict | None = None) -> dict:
        """The run as a machine-readable report (see repro.obs.report)."""
        from repro.obs.report import build_report

        base_meta = {"kind": "resolve", "dataset": self.dataset.name}
        base_meta.update(meta or {})
        base_meta.update(
            {k: v for k, v in self.summary().items() if not k.startswith("time_")}
        )
        return build_report(trace=self.trace, metrics=self.metrics, meta=base_meta)


class SnapsResolver:
    """Runs the unsupervised graph-based ER pipeline of Section 4."""

    def __init__(
        self,
        config: SnapsConfig | None = None,
        registry: ComparatorRegistry | None = None,
    ) -> None:
        self.config = config or SnapsConfig()
        # Worker processes rebuild the registry from config alone, so the
        # parallel path is only sound for the config-implied registry; a
        # custom registry forces the serial path.
        self._registry_from_config = registry is None
        if registry is None:
            registry = registry_for_config(self.config)
        self.registry = registry

    def _effective_workers(
        self, dataset: Dataset, parallel: "ParallelConfig | None"
    ) -> int:
        """Worker count for this run; 0 means the serial reference path."""
        if parallel is None:
            return 0
        if not self._registry_from_config:
            logger.warning(
                "parallel resolution requires the config-derived comparator "
                "registry; falling back to serial"
            )
            return 0
        from repro.blocking import minhash

        if minhash._np is None:  # pragma: no cover - numpy is baked in
            logger.warning("numpy unavailable; falling back to serial")
            return 0
        return parallel.effective_workers(len(dataset))

    def block(
        self,
        dataset: Dataset,
        roles: list[Role] | None = None,
        metrics: MetricsRegistry | None = None,
        parallel: "ParallelConfig | None" = None,
        trace: Trace | None = None,
    ) -> list:
        """Run the configured blocking stack alone; return candidate pairs.

        The same pairs :meth:`resolve` would generate internally — exposed
        so callers (incremental ingest, diagnostics) can inspect or
        restrict them before resolution.  ``parallel`` enables the
        vectorised-signature + chunked-filter path (same pairs, same
        order, same metric totals as serial).
        """
        config = self.config
        blocker: object = LshBlocker(
            n_bands=config.lsh_bands,
            rows_per_band=config.lsh_rows_per_band,
            seed=config.lsh_seed,
            metrics=metrics,
        )
        if config.use_phonetic_blocking:
            blocker = CompositeBlocker([blocker, PhoneticNameKeyBlocker()])
        if config.use_per_attribute_phonetic_blocking:
            from repro.blocking.phonetic import PhoneticBlocker

            blocker = CompositeBlocker([blocker, PhoneticBlocker()])
        workers = self._effective_workers(dataset, parallel)
        if workers >= 1:
            from repro.parallel import parallel_candidate_pairs

            return parallel_candidate_pairs(
                dataset,
                blocker,
                config,
                workers,
                parallel,
                roles=roles,
                trace=trace,
                metrics=metrics,
            )
        return list(
            generate_candidate_pairs(
                dataset,
                blocker,
                temporal_slack_years=config.temporal_slack_years,
                roles=roles,
                metrics=metrics,
            )
        )

    def resolve(
        self,
        dataset: Dataset,
        roles: list[Role] | None = None,
        trace: Trace | None = None,
        metrics: MetricsRegistry | None = None,
        pairs: list | None = None,
        store: EntityStore | None = None,
        checkpoint=None,
        parallel: "ParallelConfig | None" = None,
        frequency_index: NameFrequencyIndex | None = None,
    ) -> LinkageResult:
        """Resolve ``dataset`` and return the linkage result.

        ``roles`` optionally restricts which record roles participate
        (useful for focused experiments); by default all records do.
        ``trace``/``metrics`` plug the run into the telemetry layer; when
        omitted the pipeline runs uninstrumented at full speed.

        ``pairs``/``store`` support incremental ingest (``repro.store``):
        ``pairs`` substitutes a precomputed candidate-pair list for the
        blocking phase, and ``store`` seeds resolution with an existing
        clustering (e.g. clusters replayed from a snapshot) instead of
        all-singletons.  Merging then only happens along the given pairs,
        leaving the seeded clusters intact unless refinement touches them.

        ``checkpoint`` accepts a
        :class:`~repro.core.checkpoint.ResolveCheckpointer`: each phase
        commits its state after completing, phases already committed are
        skipped (their state restored instead of recomputed), and the
        run continues from the first incomplete phase — so a crashed run
        resumed through the same checkpointer finishes with output
        byte-identical to an uninterrupted one.  The dependency graph is
        always rebuilt: it is deterministic in (dataset, pairs).

        ``parallel`` selects the :mod:`repro.parallel` execution
        substrate (vectorised MinHash, chunked/pooled pair scoring,
        seeded similarity caches).  Output is byte-identical to serial
        for any worker count — ``parallel`` is an execution detail, not
        part of the run's configuration fingerprint, so checkpointed
        runs may freely resume under a different worker count.
        """
        config = self.config
        timings = Stopwatch()
        if trace is None:
            trace = Trace.disabled()
        workers = self._effective_workers(dataset, parallel)
        completed = checkpoint.completed_prefix() if checkpoint is not None else ()
        if completed:
            logger.info(
                "resuming %s from checkpoint (completed: %s)",
                dataset.name,
                ", ".join(completed),
            )
            if metrics is not None:
                metrics.inc("resolver.phases_resumed", len(completed))
        logger.info("resolving %s (%d records)", dataset.name, len(dataset))
        with trace.span("resolve"):
            if pairs is None:
                if "blocking" in completed:
                    pairs = checkpoint.load_pairs()
                    logger.info(
                        "blocking restored from checkpoint (%d pairs)", len(pairs)
                    )
                else:
                    with trace.span("blocking"), timings.phase("blocking"):
                        pairs = self.block(
                            dataset,
                            roles=roles,
                            metrics=metrics,
                            parallel=parallel,
                            trace=trace,
                        )
                    logger.info("blocking produced %d candidate pairs", len(pairs))
                    if checkpoint is not None:
                        checkpoint.save_pairs(pairs)
                        checkpoint.check_stop("blocking")
            elif checkpoint is not None and "blocking" not in completed:
                checkpoint.save_pairs(pairs)
                checkpoint.check_stop("blocking")
            seeds = None
            with trace.span("graph"), timings.phase("graph_generation"):
                if workers >= 1:
                    from repro.parallel import parallel_graph_and_seeds

                    graph, seeds = parallel_graph_and_seeds(
                        dataset,
                        pairs,
                        config,
                        workers,
                        parallel,
                        trace=trace,
                        metrics=metrics,
                    )
                else:
                    graph = build_dependency_graph(
                        dataset, pairs, config, self.registry
                    )
            logger.info(
                "dependency graph: |N_A|=%d |N_R|=%d",
                graph.n_atomic,
                graph.n_relational,
            )
            run_stats = {
                "bootstrap_merges": 0,
                "iterative_merges": 0,
                "refinement": {
                    "records_removed": 0,
                    "bridges_cut": 0,
                    "clusters_examined": 0,
                },
            }
            restore_from = next(
                (p for p in reversed(completed) if p != "blocking"), None
            )
            if store is None:
                if restore_from is not None:
                    store, run_stats = checkpoint.load_state(restore_from, dataset)
                    logger.info(
                        "entity state restored from %r checkpoint "
                        "(%d entities)",
                        restore_from,
                        len(store),
                    )
                else:
                    store = EntityStore(dataset)
            # Shard workers pass the *global* dataset's index so Eq. (2)
            # scores against full-population frequencies, not the shard's.
            if frequency_index is None:
                frequency_index = NameFrequencyIndex(dataset)
            scorer = PairScorer(dataset, config, self.registry, frequency_index)
            checker = ConstraintChecker(
                temporal_slack_years=config.temporal_slack_years,
                propagate=config.use_propagation,
                metrics=metrics,
            )
            if seeds is not None:
                scorer.seed_caches(seeds.sim_table, seeds.node_scores)
                checker.seed_pair_validity(seeds.pair_validity)
                if metrics is not None:
                    metrics.set_gauge("parallel.workers", workers)

            def commit(phase: str) -> None:
                if checkpoint is not None:
                    checkpoint.save_state(phase, store, run_stats)
                    # A SIGTERM/SIGINT requested mid-phase drains here:
                    # the phase just committed, so resume is loss-free.
                    checkpoint.check_stop(phase)

            refinement = RefinementStats(**run_stats["refinement"])

            def refine(phase: str) -> None:
                stats = refine_clusters(store, config)
                refinement.records_removed += stats.records_removed
                refinement.bridges_cut += stats.bridges_cut
                refinement.clusters_examined += stats.clusters_examined
                run_stats["refinement"] = {
                    "records_removed": refinement.records_removed,
                    "bridges_cut": refinement.bridges_cut,
                    "clusters_examined": refinement.clusters_examined,
                }
                commit(phase)

            if "bootstrap" in completed:
                bootstrap_merges = run_stats["bootstrap_merges"]
            else:
                with trace.span("bootstrap"), timings.phase("bootstrap"):
                    bootstrap_merges = bootstrap_merge(
                        graph, store, scorer, checker, config, metrics
                    )
                logger.info("bootstrap merged %d nodes", bootstrap_merges)
                run_stats["bootstrap_merges"] = bootstrap_merges
                commit("bootstrap")
            if config.use_refinement and "refine_bootstrap" not in completed:
                with trace.span("refine"), timings.phase("refine_bootstrap"):
                    refine("refine_bootstrap")
            if "merging" in completed:
                iterative_merges = run_stats["iterative_merges"]
            else:
                with trace.span("merge"), timings.phase("merging"):
                    iterative_merges = iterative_merge(
                        graph, store, scorer, checker, config, metrics
                    )
                logger.info("iterative merging merged %d nodes", iterative_merges)
                run_stats["iterative_merges"] = iterative_merges
                commit("merging")
            if config.use_refinement and "refine_merge" not in completed:
                with trace.span("refine"), timings.phase("refine_merge"):
                    refine("refine_merge")
                logger.info(
                    "refinement removed %d records, cut %d bridges",
                    refinement.records_removed,
                    refinement.bridges_cut,
                )
        scorer.publish_cache_metrics(metrics)
        if metrics is not None:
            metrics.inc("resolver.runs")
            metrics.inc("resolver.records", len(dataset))
            metrics.inc("resolver.candidate_pairs", len(pairs))
            metrics.inc("resolver.bootstrap_merges", bootstrap_merges)
            metrics.inc("resolver.iterative_merges", iterative_merges)
            metrics.inc("resolver.refined_records_removed", refinement.records_removed)
            metrics.inc("resolver.refined_bridges_cut", refinement.bridges_cut)
            metrics.set_gauge("resolver.n_atomic", graph.n_atomic)
            metrics.set_gauge("resolver.n_relational", graph.n_relational)
        return LinkageResult(
            dataset=dataset,
            entities=store,
            graph=graph,
            timings=timings,
            bootstrap_merges=bootstrap_merges,
            iterative_merges=iterative_merges,
            refinement=refinement,
            metrics=metrics,
            trace=trace if trace.enabled else None,
        )
