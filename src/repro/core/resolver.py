"""End-to-end SNAPS resolver: blocking → G_D → bootstrap → merge → refine.

``SnapsResolver`` is the public entry point of the offline component.  It
runs the full pipeline of paper Section 4 and returns a
:class:`LinkageResult` with the final entity clusters, per-phase timings
(feeding the Table 5/6 benches), and graph statistics (|N_A|, |N_R|).

Every one of the four techniques can be ablated through
:class:`~repro.core.config.SnapsConfig` — the Table 3 experiment is just
four resolver runs with one switch off each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.lsh import LshBlocker
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
from repro.blocking.candidates import generate_candidate_pairs
from repro.core.bootstrap import bootstrap_merge
from repro.core.config import SnapsConfig
from repro.core.constraints import ConstraintChecker
from repro.core.dependency_graph import DependencyGraph, build_dependency_graph
from repro.core.entities import EntityStore
from repro.core.merging import iterative_merge
from repro.core.refinement import RefinementStats, refine_clusters
from repro.core.scoring import NameFrequencyIndex, PairScorer
from repro.data.records import Dataset
from repro.data.roles import Role
from repro.similarity.registry import ComparatorRegistry, default_registry
from repro.utils.timer import Stopwatch

__all__ = ["LinkageResult", "SnapsResolver"]


@dataclass
class LinkageResult:
    """Output of one resolver run."""

    dataset: Dataset
    entities: EntityStore
    graph: DependencyGraph
    timings: Stopwatch = field(default_factory=Stopwatch)
    bootstrap_merges: int = 0
    iterative_merges: int = 0
    refinement: RefinementStats = field(default_factory=RefinementStats)

    def matched_pairs(self, role_pair: str) -> set[tuple[int, int]]:
        """Predicted matching record pairs for a paper-notation role pair
        (e.g. ``"Bp-Bp"``, ``"Bp-Dp"``, ``"Bb-Dd"``)."""
        from repro.data.roles import PARENT_ROLE_GROUPS

        left, right = role_pair.split("-")
        return self.entities.matched_pairs(
            PARENT_ROLE_GROUPS[left], PARENT_ROLE_GROUPS[right]
        )

    @property
    def n_atomic(self) -> int:
        return self.graph.n_atomic

    @property
    def n_relational(self) -> int:
        return self.graph.n_relational

    def summary(self) -> dict[str, float]:
        """Key counts and timings for benchmarking output."""
        return {
            "records": len(self.dataset),
            "n_atomic": self.n_atomic,
            "n_relational": self.n_relational,
            "bootstrap_merges": self.bootstrap_merges,
            "iterative_merges": self.iterative_merges,
            "refined_records_removed": self.refinement.records_removed,
            "refined_bridges_cut": self.refinement.bridges_cut,
            **{f"time_{k}": round(v, 4) for k, v in self.timings.times.items()},
            "time_total": round(self.timings.total(), 4),
        }


class SnapsResolver:
    """Runs the unsupervised graph-based ER pipeline of Section 4."""

    def __init__(
        self,
        config: SnapsConfig | None = None,
        registry: ComparatorRegistry | None = None,
    ) -> None:
        self.config = config or SnapsConfig()
        if registry is None:
            registry = default_registry()
            if self.config.use_geocoded_addresses:
                from repro.geocode import geo_address_comparator

                registry.register("address", geo_address_comparator())
        self.registry = registry

    def resolve(self, dataset: Dataset, roles: list[Role] | None = None) -> LinkageResult:
        """Resolve ``dataset`` and return the linkage result.

        ``roles`` optionally restricts which record roles participate
        (useful for focused experiments); by default all records do.
        """
        config = self.config
        timings = Stopwatch()
        blocker: object = LshBlocker(
            n_bands=config.lsh_bands,
            rows_per_band=config.lsh_rows_per_band,
            seed=config.lsh_seed,
        )
        if config.use_phonetic_blocking:
            blocker = CompositeBlocker([blocker, PhoneticNameKeyBlocker()])
        if config.use_per_attribute_phonetic_blocking:
            from repro.blocking.phonetic import PhoneticBlocker

            blocker = CompositeBlocker([blocker, PhoneticBlocker()])
        with timings.phase("blocking"):
            pairs = list(
                generate_candidate_pairs(
                    dataset,
                    blocker,
                    temporal_slack_years=config.temporal_slack_years,
                    roles=roles,
                )
            )
        with timings.phase("graph_generation"):
            graph = build_dependency_graph(dataset, pairs, config, self.registry)
        store = EntityStore(dataset)
        frequency_index = NameFrequencyIndex(dataset)
        scorer = PairScorer(dataset, config, self.registry, frequency_index)
        checker = ConstraintChecker(
            temporal_slack_years=config.temporal_slack_years,
            propagate=config.use_propagation,
        )
        with timings.phase("bootstrap"):
            bootstrap_merges = bootstrap_merge(graph, store, scorer, checker, config)
        refinement = RefinementStats()
        if config.use_refinement:
            with timings.phase("refine_bootstrap"):
                stats = refine_clusters(store, config)
                refinement.records_removed += stats.records_removed
                refinement.bridges_cut += stats.bridges_cut
                refinement.clusters_examined += stats.clusters_examined
        with timings.phase("merging"):
            iterative_merges = iterative_merge(graph, store, scorer, checker, config)
        if config.use_refinement:
            with timings.phase("refine_merge"):
                stats = refine_clusters(store, config)
                refinement.records_removed += stats.records_removed
                refinement.bridges_cut += stats.bridges_cut
                refinement.clusters_examined += stats.clusters_examined
        return LinkageResult(
            dataset=dataset,
            entities=store,
            graph=graph,
            timings=timings,
            bootstrap_merges=bootstrap_merges,
            iterative_merges=iterative_merges,
            refinement=refinement,
        )
