"""Node similarity: Equations (1)–(3) with AMB and PROP-A.

``PairScorer`` computes, for a relational node:

* the **atomic similarity** ``s_a`` (Eq. 1) — weighted combination of the
  Must/Core/Extra category averages of the node's atomic-node
  similarities;
* the **disambiguation similarity** ``s_d`` (Eq. 2) — a normalised
  inverse-document-frequency of the records' name combinations, so rare
  names carry more evidence than "John Macdonald";
* the **combined similarity** ``s = γ·s_a + (1-γ)·s_d`` (Eq. 3).

Under PROP-A the scorer first *re-points* the node's atomic nodes: each
attribute of one record is compared against **all values of the other
record's current entity**, and the best-matching value pair becomes the
node's atomic node for that attribute (the (Smith, Taylor) →
(Tayler, Taylor) example of Figure 4).  This is what lets SNAPS link a
woman's maiden-name records to her married-name records.
"""

from __future__ import annotations

from repro.core.config import SnapsConfig
from repro.core.dependency_graph import AtomicNode, DependencyGraph, RelationalNode
from repro.core.entities import EntityStore
from repro.data.records import Dataset, Record
from repro.data.schema import AttributeCategory
from repro.faults import fire
from repro.similarity.registry import ComparatorRegistry, default_registry

__all__ = ["NameFrequencyIndex", "PairScorer"]


class NameFrequencyIndex:
    """Frequencies of name combinations, for Eq. (2).

    A record's key is its (first name, surname) pair; ``frequency``
    returns how many records in the dataset share that key.  Records with
    a missing component fall back to the frequency of the present
    component alone (ambiguity evidence degrades gracefully rather than
    vanishing).
    """

    def __init__(self, dataset: Dataset) -> None:
        self._combo: dict[tuple[str, str], int] = {}
        self._first: dict[str, int] = {}
        self._surname: dict[str, int] = {}
        for record in dataset:
            first = (record.get("first_name") or "").lower()
            surname = (record.get("surname") or "").lower()
            if first and surname:
                key = (first, surname)
                self._combo[key] = self._combo.get(key, 0) + 1
            if first:
                self._first[first] = self._first.get(first, 0) + 1
            if surname:
                self._surname[surname] = self._surname.get(surname, 0) + 1
        self.total_records = len(dataset)

    def frequency(self, record: Record) -> int:
        """Occurrences of the record's name combination (at least 1)."""
        first = (record.get("first_name") or "").lower()
        surname = (record.get("surname") or "").lower()
        if first and surname:
            return max(1, self._combo.get((first, surname), 1))
        if first:
            return max(1, self._first.get(first, 1))
        if surname:
            return max(1, self._surname.get(surname, 1))
        # No name at all: treat as maximally ambiguous.
        return max(1, self.total_records // 2)


class PairScorer:
    """Scores relational nodes per Equations (1)–(3)."""

    def __init__(
        self,
        dataset: Dataset,
        config: SnapsConfig,
        registry: ComparatorRegistry | None = None,
        frequency_index: NameFrequencyIndex | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.registry = registry or default_registry()
        self.frequencies = frequency_index or NameFrequencyIndex(dataset)
        self._sim_cache: dict[tuple[str, str, str], float] = {}

    # ------------------------------------------------------------------
    # Cached value-pair similarity
    # ------------------------------------------------------------------

    def value_similarity(self, attribute: str, value_a: str, value_b: str) -> float:
        """Comparator output for one value pair, memoised."""
        lo, hi = sorted((value_a, value_b))
        key = (attribute, lo, hi)
        cached = self._sim_cache.get(key)
        if cached is None:
            fire("similarity.compare")
            cached = self.registry.compare(attribute, value_a, value_b) or 0.0
            self._sim_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # PROP-A: re-point atomic nodes using entity value sets
    # ------------------------------------------------------------------

    def propagate_values(
        self,
        graph: DependencyGraph,
        node: RelationalNode,
        store: EntityStore,
    ) -> None:
        """Update ``node.atomic`` with the best value pairs across the two
        records' current entities (global propagation of QID values).

        For each schema attribute, every value the two entities have been
        seen under is considered; the highest-similarity cross pair wins.
        An attribute whose best pair still falls below ``t_a`` keeps no
        atomic node.
        """
        entity_a = store.entity_of(node.rid_a)
        entity_b = store.entity_of(node.rid_b)
        for attribute in self.config.schema.names():
            values_a = store.values_of(entity_a, attribute)
            values_b = store.values_of(entity_b, attribute)
            if not values_a or not values_b:
                continue
            best: AtomicNode | None = None
            for va in values_a:
                for vb in values_b:
                    similarity = self.value_similarity(attribute, va, vb)
                    if best is None or similarity > best.similarity:
                        best = AtomicNode(attribute, va, vb, similarity)
            if best is not None and best.similarity >= self.config.atomic_threshold:
                node.atomic[attribute] = best
                graph.register_atomic(best)
            elif attribute in node.atomic:
                del node.atomic[attribute]

    # ------------------------------------------------------------------
    # Equations (1)-(3)
    # ------------------------------------------------------------------

    def has_must_evidence(self, node: RelationalNode) -> bool:
        """True when at least one Must attribute has an atomic node.

        The paper requires records to "have highly similar values in the
        Must attributes" to be classified similar; a pair whose Must
        attributes are missing or dissimilar must not merge on Core/Extra
        agreement alone (surname + address match any two household
        members).
        """
        must = self.config.schema.names_in(AttributeCategory.MUST)
        return any(attribute in node.atomic for attribute in must)

    def atomic_similarity(self, node: RelationalNode) -> float:
        """Equation (1): weighted Must/Core/Extra category combination.

        An attribute present on both records but lacking an atomic node
        (its best similarity fell below ``t_a``) contributes 0 to its
        category — disagreement on a Must attribute is strong negative
        evidence.  Categories with no comparable attribute are excluded
        and the remaining weights renormalised; a node with no comparable
        Must attribute cannot score above the merge threshold on category
        evidence alone, which the caller's threshold handles naturally.
        """
        a, b = self.dataset.record(node.rid_a), self.dataset.record(node.rid_b)
        schema = self.config.schema
        half_life = self.config.temporal_decay_half_life
        decay = 1.0
        if half_life is not None:
            gap = abs(a.event_year - b.event_year)
            decay = 0.5 ** (gap / half_life)
        weighted_sum = 0.0
        weight_total = 0.0
        for category in AttributeCategory:
            # Per-attribute (similarity, weight) pairs: matched attributes
            # weigh 1; present-but-dissimilar attributes contribute 0 with
            # a weight that decays over the records' time gap for the
            # mutable Extra attributes (people move, change occupations).
            scored: list[tuple[float, float]] = []
            for attribute in schema.names_in(category):
                atomic = node.atomic.get(attribute)
                if atomic is not None:
                    scored.append((atomic.similarity, 1.0))
                elif a.get(attribute) is not None and b.get(attribute) is not None:
                    weight = (
                        decay if category is AttributeCategory.EXTRA else 1.0
                    )
                    scored.append((0.0, weight))
            denominator = sum(weight for _, weight in scored)
            if denominator <= 0.0:
                continue
            category_sim = (
                sum(sim * weight for sim, weight in scored) / denominator
            )
            # A category whose evidence has decayed counts proportionally
            # less in the overall combination — in the limit a fully
            # decayed disagreement behaves like a missing value.
            weight = schema.weight(category) * (denominator / len(scored))
            weighted_sum += weight * category_sim
            weight_total += weight
        if weight_total == 0.0:
            return 0.0
        return weighted_sum / weight_total

    def disambiguation_similarity(self, node: RelationalNode) -> float:
        """Equation (2): normalised IDF of the two records' name combos."""
        import math

        a, b = self.dataset.record(node.rid_a), self.dataset.record(node.rid_b)
        n = max(2, self.frequencies.total_records)
        freq = self.frequencies.frequency(a) + self.frequencies.frequency(b)
        score = math.log2(n / freq) / math.log2(n)
        return min(1.0, max(0.0, score))

    def combined_similarity(self, node: RelationalNode) -> float:
        """Equation (3): γ·s_a + (1-γ)·s_d (γ=1 when AMB is ablated)."""
        gamma = self.config.effective_gamma
        s_a = self.atomic_similarity(node)
        if gamma >= 1.0:
            return s_a
        s_d = self.disambiguation_similarity(node)
        return gamma * s_a + (1.0 - gamma) * s_d
