"""Node similarity: Equations (1)–(3) with AMB and PROP-A.

``PairScorer`` computes, for a relational node:

* the **atomic similarity** ``s_a`` (Eq. 1) — weighted combination of the
  Must/Core/Extra category averages of the node's atomic-node
  similarities;
* the **disambiguation similarity** ``s_d`` (Eq. 2) — a normalised
  inverse-document-frequency of the records' name combinations, so rare
  names carry more evidence than "John Macdonald";
* the **combined similarity** ``s = γ·s_a + (1-γ)·s_d`` (Eq. 3).

Under PROP-A the scorer first *re-points* the node's atomic nodes: each
attribute of one record is compared against **all values of the other
record's current entity**, and the best-matching value pair becomes the
node's atomic node for that attribute (the (Smith, Taylor) →
(Tayler, Taylor) example of Figure 4).  This is what lets SNAPS link a
woman's maiden-name records to her married-name records.
"""

from __future__ import annotations

import math

from repro.core.config import SnapsConfig
from repro.core.dependency_graph import AtomicNode, DependencyGraph, RelationalNode
from repro.core.entities import EntityStore
from repro.data.records import Dataset, Record
from repro.data.schema import AttributeCategory
from repro.faults import fire
from repro.similarity.registry import ComparatorRegistry, default_registry

__all__ = ["NameFrequencyIndex", "PairScorer"]


class NameFrequencyIndex:
    """Frequencies of name combinations, for Eq. (2).

    A record's key is its (first name, surname) pair; ``frequency``
    returns how many records in the dataset share that key.  Records with
    a missing component fall back to the frequency of the present
    component alone (ambiguity evidence degrades gracefully rather than
    vanishing).
    """

    def __init__(self, dataset: Dataset) -> None:
        self._combo: dict[tuple[str, str], int] = {}
        self._first: dict[str, int] = {}
        self._surname: dict[str, int] = {}
        for record in dataset:
            first = (record.get("first_name") or "").lower()
            surname = (record.get("surname") or "").lower()
            if first and surname:
                key = (first, surname)
                self._combo[key] = self._combo.get(key, 0) + 1
            if first:
                self._first[first] = self._first.get(first, 0) + 1
            if surname:
                self._surname[surname] = self._surname.get(surname, 0) + 1
        self.total_records = len(dataset)

    def counts(self) -> dict:
        """JSON-serializable dump of the frequency tables.

        Shard workers score against the *global* dataset's frequencies
        (Eq. 2 is an inverse-document-frequency over all records), so the
        parent serializes its index once and ships it to every shard.
        """
        return {
            "combo": [[first, surname, n] for (first, surname), n in self._combo.items()],
            "first": dict(self._first),
            "surname": dict(self._surname),
            "total_records": self.total_records,
        }

    @classmethod
    def from_counts(cls, counts: dict) -> "NameFrequencyIndex":
        """Rebuild an index from :meth:`counts` without touching a dataset."""
        index = cls.__new__(cls)
        index._combo = {(first, surname): n for first, surname, n in counts["combo"]}
        index._first = dict(counts["first"])
        index._surname = dict(counts["surname"])
        index.total_records = counts["total_records"]
        return index

    def frequency(self, record: Record) -> int:
        """Occurrences of the record's name combination (at least 1)."""
        first = (record.get("first_name") or "").lower()
        surname = (record.get("surname") or "").lower()
        if first and surname:
            return max(1, self._combo.get((first, surname), 1))
        if first:
            return max(1, self._first.get(first, 1))
        if surname:
            return max(1, self._surname.get(surname, 1))
        # No name at all: treat as maximally ambiguous.
        return max(1, self.total_records // 2)


class PairScorer:
    """Scores relational nodes per Equations (1)–(3)."""

    def __init__(
        self,
        dataset: Dataset,
        config: SnapsConfig,
        registry: ComparatorRegistry | None = None,
        frequency_index: NameFrequencyIndex | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.registry = registry or default_registry()
        self.frequencies = frequency_index or NameFrequencyIndex(dataset)
        self._sim_cache: dict[tuple[str, str, str], float] = {}
        # Per-node score cache, active only when the parallel precompute
        # has seeded it: (rid_a, rid_b) -> [s_a | None, s_d | None].  s_d
        # is a pure function of the two records and is never invalidated;
        # s_a is dropped whenever PROP-A actually changes ``node.atomic``.
        self._node_scores: dict[tuple[int, int], list] = {}
        self._cache_active = False
        # PROP-A result memo, also parallel-only.  The best value pair per
        # attribute is a pure function of the two entities' value sets, so
        # one computation serves every node whose records sit in the same
        # pair of entity states.  (entity_id, size) identifies a state
        # exactly: ids are never reused and every membership change either
        # grows the entity or replaces it with a fresh id.
        self._propagate_memo: dict[tuple, dict[str, AtomicNode | None]] = {}
        self._entity_values: dict[tuple[int, int, str], list[str]] = {}
        self._sim_hits = 0
        self._sim_misses = 0
        self._node_hits = 0
        self._node_misses = 0
        self._propagate_hits = 0
        self._propagate_misses = 0

    # ------------------------------------------------------------------
    # Cached value-pair similarity
    # ------------------------------------------------------------------

    def value_similarity(self, attribute: str, value_a: str, value_b: str) -> float:
        """Comparator output for one value pair, memoised."""
        lo, hi = sorted((value_a, value_b))
        key = (attribute, lo, hi)
        cached = self._sim_cache.get(key)
        if cached is None:
            self._sim_misses += 1
            fire("similarity.compare")
            cached = self.registry.compare(attribute, value_a, value_b) or 0.0
            self._sim_cache[key] = cached
        else:
            self._sim_hits += 1
        return cached

    def seed_caches(
        self,
        sim_table: dict[tuple[str, str, str], float],
        node_scores: dict[tuple[int, int], list],
    ) -> None:
        """Install precomputed similarity and node-score tables.

        The parallel precompute supplies every comparator output implied
        by the candidate pairs plus each node's initial ``s_a``/``s_d``,
        all computed by the same code paths the scorer would run — the
        caches change where numbers come from, never what they are.
        """
        self._sim_cache.update(sim_table)
        self._node_scores.update(node_scores)
        self._cache_active = True

    def publish_cache_metrics(self, metrics) -> None:
        """Record cache hit/miss/size under ``scoring.*`` metrics."""
        if metrics is None:
            return
        metrics.inc("scoring.sim_cache.hits", self._sim_hits)
        metrics.inc("scoring.sim_cache.misses", self._sim_misses)
        metrics.set_gauge("scoring.sim_cache.size", len(self._sim_cache))
        metrics.inc("scoring.node_cache.hits", self._node_hits)
        metrics.inc("scoring.node_cache.misses", self._node_misses)
        metrics.set_gauge("scoring.node_cache.size", len(self._node_scores))
        metrics.inc("scoring.propagate_memo.hits", self._propagate_hits)
        metrics.inc("scoring.propagate_memo.misses", self._propagate_misses)
        metrics.set_gauge("scoring.propagate_memo.size", len(self._propagate_memo))

    # ------------------------------------------------------------------
    # PROP-A: re-point atomic nodes using entity value sets
    # ------------------------------------------------------------------

    def propagate_values(
        self,
        graph: DependencyGraph,
        node: RelationalNode,
        store: EntityStore,
    ) -> None:
        """Update ``node.atomic`` with the best value pairs across the two
        records' current entities (global propagation of QID values).

        For each schema attribute, every value the two entities have been
        seen under is considered; the highest-similarity cross pair wins.
        An attribute whose best pair still falls below ``t_a`` keeps no
        atomic node.
        """
        entity_a = store.entity_of(node.rid_a)
        entity_b = store.entity_of(node.rid_b)
        if (
            self._cache_active
            and len(entity_a.record_ids) == 1
            and len(entity_b.record_ids) == 1
        ):
            # Both entities are still singletons, so each value set is
            # exactly the record's own values — the same values the graph
            # build already chose the best pair from.  Every branch below
            # is then a proven no-op: the winning pair equals the existing
            # atomic node (same values, same comparator), its key is
            # already registered, and the delete branch cannot trigger
            # (an atomic node's build-time similarity cannot drop).
            return
        if self._cache_active:
            # The winning pair per attribute depends only on the two
            # entities' value sets, never on the node — memoise it per
            # entity-state pair and replay the per-node application.
            state = (
                entity_a.entity_id,
                len(entity_a.record_ids),
                entity_b.entity_id,
                len(entity_b.record_ids),
            )
            memo = self._propagate_memo.get(state)
            if memo is None:
                self._propagate_misses += 1
                memo = self._propagate_memo[state] = self._best_pairs(
                    store, entity_a, entity_b
                )
            else:
                self._propagate_hits += 1
            changed = False
            for attribute, best in memo.items():
                if best is not None:
                    if node.atomic.get(attribute) != best:
                        changed = True
                    node.atomic[attribute] = best
                    graph.register_atomic(best)
                elif attribute in node.atomic:
                    del node.atomic[attribute]
                    changed = True
            if changed:
                # The node's atomic evidence moved: its cached s_a is stale.
                entry = self._node_scores.get((node.rid_a, node.rid_b))
                if entry is not None:
                    entry[0] = None
            return
        changed = False
        for attribute in self.config.schema.names():
            values_a = store.values_of(entity_a, attribute)
            values_b = store.values_of(entity_b, attribute)
            if not values_a or not values_b:
                continue
            best = self._best_pair(attribute, values_a, values_b)
            if best is not None and best.similarity >= self.config.atomic_threshold:
                if node.atomic.get(attribute) != best:
                    changed = True
                node.atomic[attribute] = best
                graph.register_atomic(best)
            elif attribute in node.atomic:
                del node.atomic[attribute]
                changed = True

    def _best_pair(
        self, attribute: str, values_a: list[str], values_b: list[str]
    ) -> AtomicNode | None:
        """Highest-similarity cross pair of the two value lists."""
        best: AtomicNode | None = None
        for va in values_a:
            if best is not None and best.similarity >= 1.0:
                break
            for vb in values_b:
                similarity = self.value_similarity(attribute, va, vb)
                if best is None or similarity > best.similarity:
                    best = AtomicNode(attribute, va, vb, similarity)
                    if similarity >= 1.0:
                        # Comparators are bounded by 1.0 and the update
                        # test is strict `>`: nothing can displace an
                        # exact match, so stop scanning.
                        break
        return best

    def _best_pairs(
        self, store: EntityStore, entity_a, entity_b
    ) -> dict[str, AtomicNode | None]:
        """PROP-A outcome per attribute for one entity-state pair.

        An attribute maps to its qualifying best pair, to ``None`` when
        both sides have values but the best falls below ``t_a`` (the
        delete case), and is absent when either side has no value (the
        skip case) — mirroring the three branches of the serial loop.
        """
        memo: dict[str, AtomicNode | None] = {}
        for attribute in self.config.schema.names():
            values_a = self._values_of(entity_a, attribute, store)
            values_b = self._values_of(entity_b, attribute, store)
            if not values_a or not values_b:
                continue
            best = self._best_pair(attribute, values_a, values_b)
            if best is not None and best.similarity >= self.config.atomic_threshold:
                memo[attribute] = best
            else:
                memo[attribute] = None
        return memo

    def _values_of(self, entity, attribute: str, store: EntityStore) -> list[str]:
        """Memoised ``store.values_of`` keyed by entity state."""
        key = (entity.entity_id, len(entity.record_ids), attribute)
        values = self._entity_values.get(key)
        if values is None:
            values = self._entity_values[key] = store.values_of(entity, attribute)
        return values

    # ------------------------------------------------------------------
    # Equations (1)-(3)
    # ------------------------------------------------------------------

    def has_must_evidence(self, node: RelationalNode) -> bool:
        """True when at least one Must attribute has an atomic node.

        The paper requires records to "have highly similar values in the
        Must attributes" to be classified similar; a pair whose Must
        attributes are missing or dissimilar must not merge on Core/Extra
        agreement alone (surname + address match any two household
        members).
        """
        must = self.config.schema.names_in(AttributeCategory.MUST)
        return any(attribute in node.atomic for attribute in must)

    def atomic_similarity(self, node: RelationalNode) -> float:
        """Equation (1), memoised per node when the cache is seeded."""
        if not self._cache_active:
            return self._atomic_similarity_uncached(node)
        key = (node.rid_a, node.rid_b)
        entry = self._node_scores.get(key)
        if entry is not None and entry[0] is not None:
            self._node_hits += 1
            return entry[0]
        self._node_misses += 1
        value = self._atomic_similarity_uncached(node)
        if entry is not None:
            entry[0] = value
        else:
            self._node_scores[key] = [value, None]
        return value

    def _atomic_similarity_uncached(self, node: RelationalNode) -> float:
        """Equation (1): weighted Must/Core/Extra category combination.

        An attribute present on both records but lacking an atomic node
        (its best similarity fell below ``t_a``) contributes 0 to its
        category — disagreement on a Must attribute is strong negative
        evidence.  Categories with no comparable attribute are excluded
        and the remaining weights renormalised; a node with no comparable
        Must attribute cannot score above the merge threshold on category
        evidence alone, which the caller's threshold handles naturally.
        """
        a, b = self.dataset.record(node.rid_a), self.dataset.record(node.rid_b)
        schema = self.config.schema
        half_life = self.config.temporal_decay_half_life
        decay = 1.0
        if half_life is not None:
            gap = abs(a.event_year - b.event_year)
            decay = 0.5 ** (gap / half_life)
        weighted_sum = 0.0
        weight_total = 0.0
        for category in AttributeCategory:
            # Per-attribute (similarity, weight) pairs: matched attributes
            # weigh 1; present-but-dissimilar attributes contribute 0 with
            # a weight that decays over the records' time gap for the
            # mutable Extra attributes (people move, change occupations).
            scored: list[tuple[float, float]] = []
            for attribute in schema.names_in(category):
                atomic = node.atomic.get(attribute)
                if atomic is not None:
                    scored.append((atomic.similarity, 1.0))
                elif a.get(attribute) is not None and b.get(attribute) is not None:
                    weight = (
                        decay if category is AttributeCategory.EXTRA else 1.0
                    )
                    scored.append((0.0, weight))
            denominator = sum(weight for _, weight in scored)
            if denominator <= 0.0:
                continue
            category_sim = (
                sum(sim * weight for sim, weight in scored) / denominator
            )
            # A category whose evidence has decayed counts proportionally
            # less in the overall combination — in the limit a fully
            # decayed disagreement behaves like a missing value.
            weight = schema.weight(category) * (denominator / len(scored))
            weighted_sum += weight * category_sim
            weight_total += weight
        if weight_total == 0.0:
            return 0.0
        return weighted_sum / weight_total

    def disambiguation_similarity(self, node: RelationalNode) -> float:
        """Equation (2), memoised per node when the cache is seeded.

        ``s_d`` depends only on the two records and the frequency index,
        neither of which changes during a run, so a cached value is never
        invalidated.
        """
        if not self._cache_active:
            return self._disambiguation_similarity_uncached(node)
        key = (node.rid_a, node.rid_b)
        entry = self._node_scores.get(key)
        if entry is not None and entry[1] is not None:
            self._node_hits += 1
            return entry[1]
        self._node_misses += 1
        value = self._disambiguation_similarity_uncached(node)
        if entry is not None:
            entry[1] = value
        else:
            self._node_scores[key] = [None, value]
        return value

    def _disambiguation_similarity_uncached(self, node: RelationalNode) -> float:
        """Equation (2): normalised IDF of the two records' name combos."""
        a, b = self.dataset.record(node.rid_a), self.dataset.record(node.rid_b)
        n = max(2, self.frequencies.total_records)
        freq = self.frequencies.frequency(a) + self.frequencies.frequency(b)
        score = math.log2(n / freq) / math.log2(n)
        return min(1.0, max(0.0, score))

    def combined_similarity(self, node: RelationalNode) -> float:
        """Equation (3): γ·s_a + (1-γ)·s_d (γ=1 when AMB is ablated)."""
        gamma = self.config.effective_gamma
        s_a = self.atomic_similarity(node)
        if gamma >= 1.0:
            return s_a
        s_d = self.disambiguation_similarity(node)
        return gamma * s_a + (1.0 - gamma) * s_d
