"""Binary codecs for snapshot payloads.

The two query-time indexes are the expensive artefacts a snapshot exists
to avoid rebuilding, and both serialise naturally as flat numpy arrays:

* the keyword index ``K`` becomes concatenated int64 posting arrays with
  offset arrays per key group (string-valued keys, event years, genders);
* each similarity-aware index ``S`` becomes its value universe plus the
  precomputed neighbour lists flattened into (target, similarity) arrays
  with per-key offsets.

Everything loads with ``allow_pickle=False`` — a snapshot is data, never
code.  Entity clusters are small and irregular, so they stay JSON
(:func:`encode_clusters` / :func:`decode_clusters`).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.blocking.candidates import CandidatePair
from repro.core.entities import EntityStore
from repro.data.records import Dataset
from repro.index.keyword import KeywordIndex, MemmapKeywordIndex
from repro.index.simindex import MemmapSimilarityIndex, SimilarityAwareIndex
from repro.store.manifest import SnapshotIntegrityError, SnapshotSchemaError

__all__ = [
    "RAW_DIRNAME",
    "decode_clusters",
    "decode_entity_state",
    "encode_clusters",
    "encode_entity_state",
    "load_candidate_pairs",
    "load_clusters",
    "load_keyword_index",
    "load_keyword_index_memmap",
    "load_sim_indexes",
    "load_sim_indexes_memmap",
    "save_candidate_pairs",
    "save_keyword_index",
    "save_keyword_index_raw",
    "save_sim_indexes",
    "save_sim_indexes_raw",
]

_CLUSTERS_FORMAT = "snaps-clusters"
_CLUSTERS_VERSION = 1
_ENTITY_STATE_FORMAT = "snaps-entity-state"
_ENTITY_STATE_VERSION = 1

# Raw memmap tier: uncompressed .npy flat-binary variants of the two
# index artefacts, living in <snapshot>/raw/.  Unlike the canonical
# compressed .npz payloads they can back read-only numpy.memmap views,
# which is what lets a pre-fork serving master map a snapshot once and
# share the physical pages across every forked worker.
RAW_DIRNAME = "raw"
_RAW_SIM_META = "sim.meta.json"
_RAW_SIM_FORMAT = "snaps-raw-sim"
_RAW_SIM_VERSION = 1
_RAW_KEYWORD_ARRAYS = (
    "kv_attrs", "kv_values", "kv_offsets", "kv_postings",
    "year_keys", "year_offsets", "year_postings",
    "gender_keys", "gender_offsets", "gender_postings",
)
_RAW_SIM_ARRAYS = ("values", "nb_keys", "nb_offsets", "nb_targets", "nb_sims")


def _postings_arrays(
    posting_lists: list[list[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten ragged posting lists into (offsets, postings) int64 arrays."""
    offsets = np.zeros(len(posting_lists) + 1, dtype=np.int64)
    for i, ids in enumerate(posting_lists):
        offsets[i + 1] = offsets[i] + len(ids)
    if posting_lists:
        postings = np.concatenate(
            [np.asarray(ids, dtype=np.int64) for ids in posting_lists]
        ) if offsets[-1] else np.zeros(0, dtype=np.int64)
    else:
        postings = np.zeros(0, dtype=np.int64)
    return offsets, postings


def _str_array(values: list[str]) -> np.ndarray:
    return np.asarray(values, dtype="U") if values else np.zeros(0, dtype="U1")


# ----------------------------------------------------------------------
# Keyword index K
# ----------------------------------------------------------------------


def _keyword_index_arrays(index: KeywordIndex) -> dict[str, np.ndarray]:
    """The canonical flat-array form of a keyword index (sorted keys)."""
    by_value, years, genders = index.postings()
    kv_keys = sorted(by_value)
    year_keys = sorted(years)
    gender_keys = sorted(genders)
    kv_offsets, kv_postings = _postings_arrays([by_value[k] for k in kv_keys])
    year_offsets, year_postings = _postings_arrays([years[k] for k in year_keys])
    gender_offsets, gender_postings = _postings_arrays(
        [genders[k] for k in gender_keys]
    )
    return {
        "kv_attrs": _str_array([attr for attr, _ in kv_keys]),
        "kv_values": _str_array([value for _, value in kv_keys]),
        "kv_offsets": kv_offsets,
        "kv_postings": kv_postings,
        "year_keys": np.asarray(year_keys, dtype=np.int64),
        "year_offsets": year_offsets,
        "year_postings": year_postings,
        "gender_keys": _str_array(gender_keys),
        "gender_offsets": gender_offsets,
        "gender_postings": gender_postings,
    }


def save_keyword_index(index: KeywordIndex, path: Path) -> None:
    """Serialise ``index`` to an ``.npz`` file at ``path``."""
    with path.open("wb") as handle:
        np.savez_compressed(handle, **_keyword_index_arrays(index))


def load_keyword_index(path: Path) -> KeywordIndex:
    """Inverse of :func:`save_keyword_index`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
    except FileNotFoundError:
        raise SnapshotIntegrityError(f"missing keyword index: {path}") from None
    except (ValueError, OSError) as exc:
        raise SnapshotIntegrityError(
            f"corrupt keyword index {path}: {exc}"
        ) from None
    required = {
        "kv_attrs", "kv_values", "kv_offsets", "kv_postings",
        "year_keys", "year_offsets", "year_postings",
        "gender_keys", "gender_offsets", "gender_postings",
    }
    missing = required - set(arrays)
    if missing:
        raise SnapshotSchemaError(
            f"keyword index {path} lacks arrays {sorted(missing)}"
        )

    def sliced(offsets: np.ndarray, postings: np.ndarray, i: int) -> list[int]:
        return postings[offsets[i]:offsets[i + 1]].tolist()

    by_value = {
        (str(attr), str(value)): sliced(arrays["kv_offsets"], arrays["kv_postings"], i)
        for i, (attr, value) in enumerate(
            zip(arrays["kv_attrs"], arrays["kv_values"])
        )
    }
    years = {
        int(year): sliced(arrays["year_offsets"], arrays["year_postings"], i)
        for i, year in enumerate(arrays["year_keys"])
    }
    genders = {
        str(gender): sliced(arrays["gender_offsets"], arrays["gender_postings"], i)
        for i, gender in enumerate(arrays["gender_keys"])
    }
    return KeywordIndex.from_postings(by_value, years, genders)


# ----------------------------------------------------------------------
# Similarity-aware indexes S (one per query attribute, one file total)
# ----------------------------------------------------------------------


def _sim_index_arrays(
    index: SimilarityAwareIndex,
) -> dict[str, np.ndarray]:
    """The canonical flat-array form of one S index (sorted keys)."""
    neighbours = index.neighbour_state()
    keys = sorted(neighbours)
    offsets = np.zeros(len(keys) + 1, dtype=np.int64)
    targets: list[str] = []
    sims: list[float] = []
    for i, key in enumerate(keys):
        pairs = neighbours[key]
        offsets[i + 1] = offsets[i] + len(pairs)
        for target, sim in pairs:
            targets.append(target)
            sims.append(sim)
    return {
        "values": _str_array(sorted(str(v) for v in index._values)),
        "nb_keys": _str_array(keys),
        "nb_offsets": offsets,
        "nb_targets": _str_array(targets),
        "nb_sims": np.asarray(sims, dtype=np.float64),
    }


def save_sim_indexes(sim_index: dict[str, SimilarityAwareIndex], path: Path) -> None:
    """Serialise all per-attribute S indexes into one ``.npz`` file."""
    arrays: dict[str, np.ndarray] = {
        "attrs": _str_array(sorted(sim_index)),
    }
    for attr in sorted(sim_index):
        index = sim_index[attr]
        flat = _sim_index_arrays(index)
        arrays[f"{attr}__values"] = flat["values"]
        arrays[f"{attr}__nb_keys"] = flat["nb_keys"]
        arrays[f"{attr}__nb_offsets"] = flat["nb_offsets"]
        arrays[f"{attr}__nb_target"] = flat["nb_targets"]
        arrays[f"{attr}__nb_sim"] = flat["nb_sims"]
        arrays[f"{attr}__threshold"] = np.asarray([index.threshold], dtype=np.float64)
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_sim_indexes(path: Path) -> dict[str, SimilarityAwareIndex]:
    """Inverse of :func:`save_sim_indexes`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
    except FileNotFoundError:
        raise SnapshotIntegrityError(f"missing similarity index: {path}") from None
    except (ValueError, OSError) as exc:
        raise SnapshotIntegrityError(
            f"corrupt similarity index {path}: {exc}"
        ) from None
    if "attrs" not in arrays:
        raise SnapshotSchemaError(f"similarity index {path} lacks 'attrs' array")
    out: dict[str, SimilarityAwareIndex] = {}
    for attr in (str(a) for a in arrays["attrs"]):
        try:
            values = [str(v) for v in arrays[f"{attr}__values"]]
            keys = [str(k) for k in arrays[f"{attr}__nb_keys"]]
            offsets = arrays[f"{attr}__nb_offsets"]
            targets = arrays[f"{attr}__nb_target"]
            sims = arrays[f"{attr}__nb_sim"]
            threshold = float(arrays[f"{attr}__threshold"][0])
        except KeyError as exc:
            raise SnapshotSchemaError(
                f"similarity index {path} lacks array {exc} for attribute {attr!r}"
            ) from None
        neighbours = {
            key: [
                (str(targets[j]), float(sims[j]))
                for j in range(int(offsets[i]), int(offsets[i + 1]))
            ]
            for i, key in enumerate(keys)
        }
        out[attr] = SimilarityAwareIndex.from_precomputed(
            values, neighbours, threshold
        )
    return out


# ----------------------------------------------------------------------
# Raw memmap tier (uncompressed .npy variants of K and S)
# ----------------------------------------------------------------------


def _save_npy(path: Path, array: np.ndarray) -> None:
    with path.open("wb") as handle:
        np.save(handle, array, allow_pickle=False)


def _load_npy_memmap(path: Path) -> np.ndarray:
    try:
        return np.load(path, mmap_mode="r", allow_pickle=False)
    except FileNotFoundError:
        raise SnapshotIntegrityError(f"missing raw artefact: {path}") from None
    except (ValueError, OSError) as exc:
        raise SnapshotIntegrityError(
            f"corrupt raw artefact {path}: {exc}"
        ) from None


def save_keyword_index_raw(index: KeywordIndex, directory: Path) -> list[Path]:
    """Write the keyword index as flat ``.npy`` files under ``directory``.

    The array *content* is identical to :func:`save_keyword_index` —
    only the container differs (uncompressed ``.npy`` per array instead
    of one compressed ``.npz``), so the raw tier is byte-deterministic
    given the index state.  Returns the written paths (for manifest
    checksumming).
    """
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, array in _keyword_index_arrays(index).items():
        path = directory / f"keyword.{name}.npy"
        _save_npy(path, array)
        written.append(path)
    return written


def load_keyword_index_memmap(directory: Path) -> MemmapKeywordIndex:
    """Map the raw keyword artefacts read-only; inverse of
    :func:`save_keyword_index_raw`.

    Key lookup tables are materialised (small); the int64 posting
    arrays stay memory-mapped so forked serving workers share them.
    """
    arrays = {
        name: _load_npy_memmap(directory / f"keyword.{name}.npy")
        for name in _RAW_KEYWORD_ARRAYS
    }
    kv_keys = [
        (str(attr), str(value))
        for attr, value in zip(arrays["kv_attrs"], arrays["kv_values"])
    ]
    return MemmapKeywordIndex(
        kv_keys,
        arrays["kv_offsets"],
        arrays["kv_postings"],
        [int(y) for y in arrays["year_keys"]],
        arrays["year_offsets"],
        arrays["year_postings"],
        [str(g) for g in arrays["gender_keys"]],
        arrays["gender_offsets"],
        arrays["gender_postings"],
    )


def save_sim_indexes_raw(
    sim_index: dict[str, SimilarityAwareIndex], directory: Path
) -> list[Path]:
    """Write every S index as flat ``.npy`` files under ``directory``.

    One ``sim.<attr>.<array>.npy`` file per array plus a ``sim.meta.json``
    carrying the attribute list and thresholds.  Returns the written
    paths (meta file first).
    """
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "format": _RAW_SIM_FORMAT,
        "version": _RAW_SIM_VERSION,
        "attrs": sorted(sim_index),
        "thresholds": {
            attr: sim_index[attr].threshold for attr in sorted(sim_index)
        },
    }
    meta_path = directory / _RAW_SIM_META
    meta_path.write_text(json.dumps(meta, sort_keys=True))
    written = [meta_path]
    for attr in sorted(sim_index):
        for name, array in _sim_index_arrays(sim_index[attr]).items():
            path = directory / f"sim.{attr}.{name}.npy"
            _save_npy(path, array)
            written.append(path)
    return written


def load_sim_indexes_memmap(directory: Path) -> dict[str, MemmapSimilarityIndex]:
    """Map the raw S artefacts read-only; inverse of
    :func:`save_sim_indexes_raw`."""
    meta_path = directory / _RAW_SIM_META
    try:
        meta = json.loads(meta_path.read_text())
    except FileNotFoundError:
        raise SnapshotIntegrityError(f"missing raw sim meta: {meta_path}") from None
    except json.JSONDecodeError as exc:
        raise SnapshotIntegrityError(
            f"corrupt raw sim meta {meta_path}: {exc}"
        ) from None
    if meta.get("format") != _RAW_SIM_FORMAT or meta.get("version") != _RAW_SIM_VERSION:
        raise SnapshotSchemaError(
            f"unsupported raw sim meta {meta_path}: "
            f"format={meta.get('format')!r} version={meta.get('version')!r}"
        )
    out: dict[str, MemmapSimilarityIndex] = {}
    for attr in meta["attrs"]:
        arrays = {
            name: _load_npy_memmap(directory / f"sim.{attr}.{name}.npy")
            for name in _RAW_SIM_ARRAYS
        }
        out[attr] = MemmapSimilarityIndex(
            arrays["values"],
            arrays["nb_keys"],
            arrays["nb_offsets"],
            arrays["nb_targets"],
            arrays["nb_sims"],
            float(meta["thresholds"][attr]),
        )
    return out


# ----------------------------------------------------------------------
# Entity clusters (for incremental ingest)
# ----------------------------------------------------------------------


def encode_clusters(store: EntityStore, graph_summary: dict) -> dict:
    """Non-singleton clusters with their internal link structure.

    Singletons are omitted: rebuilding an :class:`EntityStore` from the
    dataset recreates them, so only merge history needs persisting.
    """
    clusters = []
    for entity in sorted(store.entities(min_size=2), key=lambda e: min(e.record_ids)):
        clusters.append(
            {
                "records": sorted(entity.record_ids),
                "links": sorted([list(link) for link in entity.links]),
            }
        )
    return {
        "format": _CLUSTERS_FORMAT,
        "version": _CLUSTERS_VERSION,
        "clusters": clusters,
        "graph_summary": dict(graph_summary),
    }


def decode_clusters(blob: dict) -> tuple[list[dict], dict]:
    """Validate and unpack :func:`encode_clusters` output.

    Returns ``(clusters, graph_summary)``.
    """
    if blob.get("format") != _CLUSTERS_FORMAT:
        raise SnapshotSchemaError(
            f"not a clusters payload (format={blob.get('format')!r})"
        )
    if blob.get("version") != _CLUSTERS_VERSION:
        raise SnapshotSchemaError(
            f"unsupported clusters payload version {blob.get('version')!r}"
        )
    return blob["clusters"], blob.get("graph_summary", {})


def load_clusters(path: Path) -> tuple[list[dict], dict]:
    """Read and decode a ``clusters.json`` payload."""
    try:
        blob = json.loads(path.read_text())
    except FileNotFoundError:
        raise SnapshotIntegrityError(f"missing clusters payload: {path}") from None
    except json.JSONDecodeError as exc:
        raise SnapshotIntegrityError(
            f"corrupt clusters payload {path}: {exc}"
        ) from None
    return decode_clusters(blob)


# ----------------------------------------------------------------------
# Resolver checkpoint payloads (pipeline crash-resume)
# ----------------------------------------------------------------------


def save_candidate_pairs(pairs: list[CandidatePair], path: Path) -> None:
    """Serialise a candidate-pair list to ``.npz``, order-preserving.

    Order matters: the resumed run must feed the dependency graph the
    exact sequence the crashed run produced, or merge iteration order —
    and therefore entity ids — could drift.
    """
    flat = np.asarray(
        [[pair.rid_a, pair.rid_b] for pair in pairs], dtype=np.int64
    ).reshape(-1, 2)
    with path.open("wb") as handle:
        np.savez_compressed(handle, pairs=flat)


def load_candidate_pairs(path: Path) -> list[CandidatePair]:
    """Inverse of :func:`save_candidate_pairs`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            flat = data["pairs"]
    except FileNotFoundError:
        raise SnapshotIntegrityError(f"missing pairs payload: {path}") from None
    except (KeyError, ValueError, OSError) as exc:
        raise SnapshotIntegrityError(
            f"corrupt pairs payload {path}: {exc}"
        ) from None
    return [CandidatePair(int(a), int(b)) for a, b in flat]


def encode_entity_state(store: EntityStore) -> dict:
    """Exact :class:`EntityStore` state (ids, order, counter) as JSON.

    Unlike :func:`encode_clusters` — which normalises order and drops
    singletons for compact *final* output — a checkpoint must preserve
    everything resumption needs for bit-identical continuation.
    """
    return {
        "format": _ENTITY_STATE_FORMAT,
        "version": _ENTITY_STATE_VERSION,
        **store.state(),
    }


def decode_entity_state(blob: dict, dataset: Dataset) -> EntityStore:
    """Validate and rebuild :func:`encode_entity_state` output."""
    if blob.get("format") != _ENTITY_STATE_FORMAT:
        raise SnapshotSchemaError(
            f"not an entity-state payload (format={blob.get('format')!r})"
        )
    if blob.get("version") != _ENTITY_STATE_VERSION:
        raise SnapshotSchemaError(
            f"unsupported entity-state version {blob.get('version')!r}"
        )
    return EntityStore.from_state(dataset, blob)
