"""The snapshot store: versioned persistence of complete offline output.

A :class:`SnapshotStore` owns a directory tree

.. code-block:: text

    <root>/
      HEAD                      # id of the most recently written snapshot
      snapshots/<id>/
        manifest.json           # schema version, checksums, lineage
        dataset.records.csv     # the exact dataset that was resolved
        dataset.certs.csv
        clusters.json           # resolved entity clusters + merge links
        graph.json              # pedigree graph (entities + edges)
        keyword_index.npz       # keyword index K posting lists
        simindex.npz            # similarity-aware indexes S

holding everything the offline phase produces, so the online phase can
boot **without recomputing anything**: ``repro serve --snapshot`` loads
the graph and both indexes, skipping ER, graph building, and index
construction entirely.

Writes are atomic: a snapshot is assembled in a temporary directory
under the store root and renamed into place only when complete, so a
crash mid-save can never leave a half-written snapshot where a loader
would find it.  Snapshot ids are content-addressed (see
:mod:`repro.store.manifest`), and every load verifies payload checksums
before deserialising — a flipped bit fails loudly as
:class:`~repro.store.manifest.SnapshotIntegrityError`, never as a
silently wrong answer.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.data.loader import load_dataset_csv, save_dataset_csv
from repro.data.records import Dataset
from repro.faults import FaultError, fire
from repro.faults.resources import as_resource_fault, check_free_space
from repro.index.keyword import KeywordIndex
from repro.index.simindex import SimilarityAwareIndex
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace
from repro.pedigree.graph import PedigreeGraph, build_pedigree_graph
from repro.pedigree.serialize import load_pedigree_graph, save_pedigree_graph
from repro.store import codecs
from repro.store.manifest import (
    MANIFEST_FILENAME,
    Manifest,
    SnapshotError,
    SnapshotIntegrityError,
    config_fingerprint,
    config_to_dict,
    file_sha256,
)

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.resolver import LinkageResult

__all__ = ["LoadedSnapshot", "SnapshotStore", "SIM_ATTRIBUTES"]

logger = get_logger("store.snapshot")

# Attributes the query engine builds similarity-aware indexes for; a
# snapshot persists exactly this set so a warm-started engine behaves
# identically to a cold-built one.
SIM_ATTRIBUTES = ("first_name", "surname", "parish")

_ARTIFACT_FILES = {
    "dataset_records": "dataset.records.csv",
    "dataset_certs": "dataset.certs.csv",
    "clusters": "clusters.json",
    "graph": "graph.json",
    "keyword_index": "keyword_index.npz",
    "simindex": "simindex.npz",
}

# Artefact groups a caller can select on load.
_GROUPS = {
    "dataset": ("dataset_records", "dataset_certs"),
    "clusters": ("clusters",),
    "graph": ("graph",),
    "indexes": ("keyword_index", "simindex"),
}


def _load_artifact(name: str, snapshot_id: str, loader):
    """Run ``loader``, naming the artefact and snapshot on any failure.

    Codec internals can surface truncation as raw ``KeyError`` /
    ``struct.error`` / ``zipfile.BadZipFile``; callers should never have
    to guess which artefact of which snapshot died.  Injected faults
    pass through untouched so retry policies see their true category.
    """
    fire(f"store.load.{name}")
    try:
        return loader()
    except FaultError:
        raise
    except SnapshotError as exc:
        raise type(exc)(
            f"snapshot {snapshot_id}, artefact {name!r}: {exc}"
        ) from exc
    except Exception as exc:
        raise SnapshotIntegrityError(
            f"snapshot {snapshot_id}: artefact {name!r} failed to decode "
            f"({type(exc).__name__}: {exc}); payload is likely truncated "
            "or corrupt"
        ) from exc


@dataclass
class LoadedSnapshot:
    """Materialised artefacts of one snapshot (only requested groups set)."""

    manifest: Manifest
    path: Path
    dataset: Dataset | None = None
    clusters: list[dict] = field(default_factory=list)
    graph_summary: dict = field(default_factory=dict)
    graph: PedigreeGraph | None = None
    keyword_index: KeywordIndex | None = None
    sim_index: dict[str, SimilarityAwareIndex] | None = None
    # True when the indexes are memmap-backed views of the raw tier
    # (requested via ``load(..., memmap=True)`` and the snapshot has raw
    # artefacts); False on the eager .npz path, including the fallback
    # for version-1 snapshots that predate the raw tier.
    memmapped: bool = False


class SnapshotStore:
    """Directory-backed store of versioned, content-addressed snapshots."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def snapshots_dir(self) -> Path:
        return self.root / "snapshots"

    @property
    def head_path(self) -> Path:
        return self.root / "HEAD"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def latest(self) -> str | None:
        """Id of the most recently written snapshot (HEAD), if any."""
        try:
            head = self.head_path.read_text().strip()
        except FileNotFoundError:
            return None
        return head or None

    def list_ids(self) -> list[str]:
        """All snapshot ids present on disk (sorted)."""
        if not self.snapshots_dir.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.snapshots_dir.iterdir()
            if entry.is_dir() and (entry / MANIFEST_FILENAME).exists()
        )

    def path_of(self, snapshot_id: str) -> Path:
        return self.snapshots_dir / snapshot_id

    def manifest(self, snapshot_id: str | None = None) -> Manifest:
        """Manifest of ``snapshot_id`` (default: HEAD)."""
        snapshot_id = self._resolve_id(snapshot_id)
        return Manifest.load(self.path_of(snapshot_id) / MANIFEST_FILENAME)

    def has_snapshot(self, snapshot_id: str) -> bool:
        """Whether ``snapshot_id`` exists on disk with a manifest."""
        return (self.path_of(snapshot_id) / MANIFEST_FILENAME).exists()

    def lineage_ids(self, snapshot_id: str | None = None) -> list[str]:
        """Snapshot ids from ``snapshot_id`` (default HEAD) back to the
        root, newest first — the cheap form of :meth:`log` the streaming
        journal reconciles itself against."""
        return [manifest.snapshot_id for manifest in self.log(snapshot_id)]

    def log(self, snapshot_id: str | None = None) -> list[Manifest]:
        """Lineage chain from ``snapshot_id`` (default HEAD) back to the
        root snapshot, newest first."""
        snapshot_id = self._resolve_id(snapshot_id)
        chain: list[Manifest] = []
        seen: set[str] = set()
        cursor: str | None = snapshot_id
        while cursor is not None:
            if cursor in seen:
                raise SnapshotError(f"snapshot lineage cycle at {cursor}")
            seen.add(cursor)
            manifest = self.manifest(cursor)
            chain.append(manifest)
            cursor = manifest.parent
        return chain

    def verify(self, snapshot_id: str | None = None) -> list[str]:
        """Check every payload of a snapshot against its manifest.

        Returns a list of human-readable problems; empty means the
        snapshot is intact.
        """
        snapshot_id = self._resolve_id(snapshot_id)
        directory = self.path_of(snapshot_id)
        problems: list[str] = []
        try:
            manifest = Manifest.load(directory / MANIFEST_FILENAME)
        except SnapshotError as exc:
            return [str(exc)]
        if manifest.snapshot_id != snapshot_id:
            problems.append(
                f"manifest says id {manifest.snapshot_id}, directory is {snapshot_id}"
            )
        checked = [
            ("", manifest.artifacts),
            ("raw ", manifest.raw_artifacts),
        ]
        for kind, blobs in checked:
            for name, blob in sorted(blobs.items()):
                path = directory / blob["path"]
                if not path.exists():
                    problems.append(
                        f"{name}: missing {kind}payload {blob['path']}"
                    )
                    continue
                actual = file_sha256(path)
                if actual != blob["sha256"]:
                    problems.append(
                        f"{name}: {kind}checksum mismatch "
                        f"(manifest {blob['sha256'][:12]}…, disk {actual[:12]}…)"
                    )
        expected_id = Manifest.compute_snapshot_id(
            manifest.artifacts,
            manifest.config_fingerprint,
            manifest.dataset.get("sha256", ""),
            manifest.parent,
        )
        if expected_id != manifest.snapshot_id:
            problems.append(
                f"content address mismatch: manifest id {manifest.snapshot_id}, "
                f"recomputed {expected_id}"
            )
        from repro.store.shards import verify_shard_sidecar

        problems.extend(verify_shard_sidecar(directory))
        return problems

    def _resolve_id(self, snapshot_id: str | None) -> str:
        if snapshot_id is not None:
            if not self.path_of(snapshot_id).is_dir():
                raise SnapshotError(
                    f"no snapshot {snapshot_id!r} in {self.snapshots_dir} "
                    f"(have: {', '.join(self.list_ids()) or 'none'})"
                )
            return snapshot_id
        head = self.latest()
        if head is None:
            raise SnapshotError(f"snapshot store {self.root} is empty (no HEAD)")
        return head

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------

    def save(
        self,
        result: "LinkageResult",
        graph: PedigreeGraph | None = None,
        keyword_index: KeywordIndex | None = None,
        sim_index: dict[str, SimilarityAwareIndex] | None = None,
        similarity_threshold: float = 0.5,
        parent: str | None = None,
        config=None,
        trace: Trace | None = None,
        metrics: MetricsRegistry | None = None,
        sidecar_writer=None,
    ) -> Manifest:
        """Persist one resolver run as a new snapshot; returns its manifest.

        ``graph``/``keyword_index``/``sim_index`` may be passed when the
        caller already built them (avoiding a rebuild); anything omitted
        is derived here from ``result``.  ``parent`` links the snapshot
        into a lineage (incremental ingest sets it).  ``config`` defaults
        to the paper configuration when the result does not carry one.

        ``sidecar_writer`` is called with the snapshot's assembly
        directory after the payloads are written, so auxiliary data (the
        shard sidecar — see :mod:`repro.store.shards`) commits atomically
        with the snapshot.  Sidecar files are *not* part of the content
        address: artefact bytes are identical across shard counts, and so
        must be the snapshot id.
        """
        from repro.core.config import SnapsConfig

        trace = trace if trace is not None else Trace.disabled()
        config = config if config is not None else SnapsConfig()
        with trace.span("snapshot_save"):
            with trace.span("derive"):
                if graph is None:
                    graph = build_pedigree_graph(result.dataset, result.entities)
                if keyword_index is None:
                    keyword_index = KeywordIndex(graph)
                if sim_index is None:
                    sim_index = {
                        attribute: SimilarityAwareIndex(
                            keyword_index.values(attribute),
                            threshold=similarity_threshold,
                        )
                        for attribute in SIM_ATTRIBUTES
                    }
            self.snapshots_dir.mkdir(parents=True, exist_ok=True)
            # Preflight: catch an obviously-full disk before any payload
            # bytes land.  The estimate is a deliberate floor (records
            # dominate snapshot size); the commit stays atomic even if
            # the disk fills mid-write.
            check_free_space(
                self.root,
                max(1 << 20, len(result.dataset) * 1024),
                "snapshot store",
            )
            tmp = Path(
                tempfile.mkdtemp(prefix=".tmp-snapshot-", dir=self.root)
            )
            try:
                with trace.span("write_payloads"):
                    fire("store.save.payloads")
                    save_dataset_csv(result.dataset, tmp / "dataset")
                    clusters_blob = codecs.encode_clusters(
                        result.entities,
                        {
                            "n_atomic": result.graph.n_atomic,
                            "n_relational": result.graph.n_relational,
                        },
                    )
                    (tmp / _ARTIFACT_FILES["clusters"]).write_text(
                        json.dumps(clusters_blob)
                    )
                    save_pedigree_graph(graph, tmp / _ARTIFACT_FILES["graph"])
                    codecs.save_keyword_index(
                        keyword_index, tmp / _ARTIFACT_FILES["keyword_index"]
                    )
                    codecs.save_sim_indexes(
                        sim_index, tmp / _ARTIFACT_FILES["simindex"]
                    )
                with trace.span("write_raw"):
                    # Memmap tier: uncompressed .npy variants of both
                    # indexes, derived from the same in-memory state as
                    # the .npz payloads.  Checksummed in the manifest but
                    # excluded from the content address (see Manifest).
                    fire("store.save.raw")
                    raw_dir = tmp / codecs.RAW_DIRNAME
                    raw_paths = codecs.save_keyword_index_raw(
                        keyword_index, raw_dir
                    )
                    raw_paths += codecs.save_sim_indexes_raw(sim_index, raw_dir)
                    raw_artifacts = {
                        str(path.relative_to(tmp)): {
                            "path": str(path.relative_to(tmp)),
                            "sha256": file_sha256(path),
                            "bytes": path.stat().st_size,
                        }
                        for path in raw_paths
                    }
                if sidecar_writer is not None:
                    with trace.span("sidecar"):
                        sidecar_writer(tmp)
                with trace.span("manifest"):
                    artifacts = {
                        name: {
                            "path": filename,
                            "sha256": file_sha256(tmp / filename),
                            "bytes": (tmp / filename).stat().st_size,
                        }
                        for name, filename in sorted(_ARTIFACT_FILES.items())
                    }
                    config_fp = config_fingerprint(config)
                    dataset_sha = result.dataset.content_fingerprint()
                    snapshot_id = Manifest.compute_snapshot_id(
                        artifacts, config_fp, dataset_sha, parent
                    )
                    manifest = Manifest(
                        snapshot_id=snapshot_id,
                        parent=parent,
                        created_at=datetime.now(timezone.utc).isoformat(),
                        config=config_to_dict(config),
                        config_fingerprint=config_fp,
                        similarity_threshold=similarity_threshold,
                        dataset={
                            "name": result.dataset.name,
                            "records": len(result.dataset),
                            "certificates": len(result.dataset.certificates),
                            "sha256": dataset_sha,
                        },
                        counts={
                            "entities": len(graph),
                            "clusters": sum(
                                1 for _ in result.entities.entities(min_size=2)
                            ),
                            "pedigree_edges": graph.n_edges(),
                            "keyword_keys": keyword_index.n_keys(),
                            "sim_values": {
                                attr: index.n_values()
                                for attr, index in sorted(sim_index.items())
                            },
                        },
                        artifacts=artifacts,
                        raw_artifacts=raw_artifacts,
                    )
                    manifest.save(tmp / MANIFEST_FILENAME)
                with trace.span("commit"):
                    fire("store.save.commit")
                    final = self.path_of(snapshot_id)
                    if final.exists():
                        # Content-addressed: identical content already
                        # stored; keep the existing directory.  A fresh
                        # sidecar still moves in if the stored snapshot
                        # lacks one (a serial save followed by a sharded
                        # one lands on the same id).
                        from repro.store.shards import SHARDS_DIRNAME

                        tmp_sidecar = tmp / SHARDS_DIRNAME
                        final_sidecar = final / SHARDS_DIRNAME
                        if tmp_sidecar.is_dir() and not final_sidecar.exists():
                            os.replace(tmp_sidecar, final_sidecar)
                        # Same for the raw tier: a snapshot saved before
                        # the tier existed gains it on re-save (the raw
                        # bytes are derived from identical content, and
                        # the tier is outside the content address, so
                        # the id is unchanged).  The stored manifest is
                        # rewritten to record the new checksums.
                        final_raw = final / codecs.RAW_DIRNAME
                        if not final_raw.exists():
                            os.replace(tmp / codecs.RAW_DIRNAME, final_raw)
                            stored = Manifest.load(final / MANIFEST_FILENAME)
                            stored.raw_artifacts = raw_artifacts
                            stored.schema_version = manifest.schema_version
                            stored.save(final / MANIFEST_FILENAME)
                        shutil.rmtree(tmp)
                        logger.info("snapshot %s already exists; reusing", snapshot_id)
                    else:
                        os.replace(tmp, final)
                    self._write_head(snapshot_id)
            except Exception as exc:
                # Atomic abort: the assembly directory goes whatever the
                # failure was, so `snapshots/` never gains a partial id.
                shutil.rmtree(tmp, ignore_errors=True)
                fault = as_resource_fault(
                    exc,
                    f"snapshot commit under {self.root}",
                    "no partial snapshot was left behind; free disk space "
                    "(or point --snapshot-out at a roomier volume) and "
                    "re-run — the resolve output itself is unaffected",
                )
                if fault is not None:
                    raise fault from exc
                raise
        if metrics is not None:
            metrics.inc("store.snapshots_saved")
            metrics.set_gauge(
                "store.snapshot_bytes",
                sum(blob["bytes"] for blob in manifest.artifacts.values()),
            )
        logger.info(
            "saved snapshot %s (%d entities, parent=%s)",
            snapshot_id,
            manifest.counts.get("entities", 0),
            parent,
        )
        return manifest

    def _write_head(self, snapshot_id: str) -> None:
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-head-", dir=self.root)
        with os.fdopen(fd, "w") as handle:
            handle.write(snapshot_id + "\n")
        os.replace(tmp_name, self.head_path)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------

    def load(
        self,
        snapshot_id: str | None = None,
        artifacts: Iterable[str] = ("dataset", "clusters", "graph", "indexes"),
        verify: bool = True,
        trace: Trace | None = None,
        metrics: MetricsRegistry | None = None,
        memmap: bool = False,
    ) -> LoadedSnapshot:
        """Materialise a snapshot (default: HEAD) from disk.

        ``artifacts`` selects which groups to load — ``"dataset"``,
        ``"clusters"``, ``"graph"``, ``"indexes"`` — so a server that only
        needs the graph and indexes never pays for the dataset CSV parse.
        With ``verify`` (the default) every loaded payload's checksum is
        compared against the manifest first; mismatches raise
        :class:`SnapshotIntegrityError`.

        ``memmap=True`` loads the indexes as read-only ``numpy.memmap``
        views of the snapshot's raw artefact tier instead of eagerly
        decompressing the ``.npz`` payloads — the substrate of the
        pre-fork serving tier, where a master maps once and N forked
        workers share the pages.  Snapshots written before the raw tier
        existed (schema version 1) fall back to the eager path; check
        :attr:`LoadedSnapshot.memmapped` for what actually happened.
        Query results are identical either way.
        """
        trace = trace if trace is not None else Trace.disabled()
        groups = tuple(artifacts)
        unknown = set(groups) - set(_GROUPS)
        if unknown:
            raise ValueError(
                f"unknown artefact groups {sorted(unknown)}; "
                f"valid: {sorted(_GROUPS)}"
            )
        snapshot_id = self._resolve_id(snapshot_id)
        directory = self.path_of(snapshot_id)
        with trace.span("snapshot_load"):
            fire("store.load.manifest")
            manifest = Manifest.load(directory / MANIFEST_FILENAME)
            if verify:
                with trace.span("verify"):
                    self._verify_artifacts(manifest, directory, groups)
            loaded = LoadedSnapshot(manifest=manifest, path=directory)
            if "dataset" in groups:
                with trace.span("load_dataset"):
                    loaded.dataset = _load_artifact(
                        "dataset",
                        snapshot_id,
                        lambda: load_dataset_csv(
                            directory / "dataset",
                            name=manifest.dataset.get("name"),
                        ),
                    )
            if "clusters" in groups:
                with trace.span("load_clusters"):
                    loaded.clusters, loaded.graph_summary = _load_artifact(
                        "clusters",
                        snapshot_id,
                        lambda: codecs.load_clusters(
                            directory / _ARTIFACT_FILES["clusters"]
                        ),
                    )
            if "graph" in groups:
                with trace.span("load_graph"):
                    loaded.graph = _load_artifact(
                        "graph",
                        snapshot_id,
                        lambda: load_pedigree_graph(
                            directory / _ARTIFACT_FILES["graph"]
                        ),
                    )
            if "indexes" in groups:
                use_raw = memmap and bool(manifest.raw_artifacts)
                if memmap and not use_raw:
                    logger.warning(
                        "snapshot %s has no raw artefact tier (schema v%d); "
                        "memmap load falling back to eager .npz indexes",
                        snapshot_id,
                        manifest.schema_version,
                    )
                if use_raw:
                    if verify:
                        with trace.span("verify_raw"):
                            self._verify_raw_artifacts(manifest, directory)
                    with trace.span("load_indexes_memmap"):
                        raw_dir = directory / codecs.RAW_DIRNAME
                        loaded.keyword_index = _load_artifact(
                            "keyword_index",
                            snapshot_id,
                            lambda: codecs.load_keyword_index_memmap(raw_dir),
                        )
                        loaded.sim_index = _load_artifact(
                            "simindex",
                            snapshot_id,
                            lambda: codecs.load_sim_indexes_memmap(raw_dir),
                        )
                        loaded.memmapped = True
                else:
                    with trace.span("load_indexes"):
                        loaded.keyword_index = _load_artifact(
                            "keyword_index",
                            snapshot_id,
                            lambda: codecs.load_keyword_index(
                                directory / _ARTIFACT_FILES["keyword_index"]
                            ),
                        )
                        loaded.sim_index = _load_artifact(
                            "simindex",
                            snapshot_id,
                            lambda: codecs.load_sim_indexes(
                                directory / _ARTIFACT_FILES["simindex"]
                            ),
                        )
        if metrics is not None:
            metrics.inc("store.snapshots_loaded")
        logger.info(
            "loaded snapshot %s (%s)", snapshot_id, ", ".join(groups) or "nothing"
        )
        return loaded

    def _verify_raw_artifacts(self, manifest: Manifest, directory: Path) -> None:
        for name, blob in sorted(manifest.raw_artifacts.items()):
            path = directory / blob["path"]
            if not path.exists():
                raise SnapshotIntegrityError(
                    f"snapshot {manifest.snapshot_id}: missing raw payload "
                    f"{blob['path']}"
                )
            actual = file_sha256(path)
            if actual != blob["sha256"]:
                raise SnapshotIntegrityError(
                    f"snapshot {manifest.snapshot_id}: raw payload "
                    f"{blob['path']} is corrupt (manifest sha256 "
                    f"{blob['sha256'][:12]}…, on disk {actual[:12]}…)"
                )

    def _verify_artifacts(
        self, manifest: Manifest, directory: Path, groups: tuple[str, ...]
    ) -> None:
        for group in groups:
            for name in _GROUPS[group]:
                blob = manifest.artifacts.get(name)
                if blob is None:
                    raise SnapshotIntegrityError(
                        f"manifest of {manifest.snapshot_id} lists no "
                        f"artefact {name!r}"
                    )
                path = directory / blob["path"]
                if not path.exists():
                    raise SnapshotIntegrityError(
                        f"snapshot {manifest.snapshot_id}: missing payload "
                        f"{blob['path']}"
                    )
                actual = file_sha256(path)
                if actual != blob["sha256"]:
                    raise SnapshotIntegrityError(
                        f"snapshot {manifest.snapshot_id}: payload "
                        f"{blob['path']} is corrupt (manifest sha256 "
                        f"{blob['sha256'][:12]}…, on disk {actual[:12]}…)"
                    )
