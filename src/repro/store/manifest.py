"""Snapshot manifest: the self-describing header of one snapshot.

Every snapshot directory carries a ``manifest.json`` binding together

* the schema version of the snapshot format itself,
* a canonical fingerprint of the :class:`~repro.core.config.SnapsConfig`
  the offline run used (so a loader can refuse to warm-start a server
  whose configuration no longer matches what was resolved),
* a content hash of the exact dataset that was resolved,
* per-artefact SHA-256 checksums and byte sizes, verified on load, and
* a ``parent`` pointer to the snapshot this one was derived from by
  incremental ingest — chaining snapshots into an inspectable lineage
  (``repro snapshot log``).

The snapshot id is **content-addressed**: a SHA-256 over the artefact
checksums, config fingerprint, dataset hash, and parent id.  Re-saving
identical content therefore produces the identical id; the creation
timestamp is deliberately excluded from the id.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import SnapsConfig
from repro.data.schema import AttributeCategory, AttributeSpec, Schema

__all__ = [
    "MANIFEST_FILENAME",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "Manifest",
    "SnapshotError",
    "SnapshotIntegrityError",
    "SnapshotSchemaError",
    "config_fingerprint",
    "config_from_dict",
    "config_to_dict",
    "file_sha256",
]

MANIFEST_FILENAME = "manifest.json"
_FORMAT = "snaps-snapshot"
# Version 2 added the optional raw memmap artefact tier (raw/*.npy,
# recorded under ``raw_artifacts``).  Version-1 snapshots — written
# before the tier existed — still load; they simply have no raw
# artefacts, so memmap loads fall back to the eager .npz path.
SCHEMA_VERSION = 2
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


class SnapshotError(RuntimeError):
    """Base class for all snapshot-store failures."""


class SnapshotSchemaError(SnapshotError):
    """The on-disk snapshot speaks a format/version this code does not."""


class SnapshotIntegrityError(SnapshotError):
    """A payload does not match its manifest checksum (or is missing)."""


# ----------------------------------------------------------------------
# Config fingerprinting
# ----------------------------------------------------------------------


def config_to_dict(config: SnapsConfig) -> dict:
    """``SnapsConfig`` as a JSON-safe dict (enums become their values)."""
    blob = dataclasses.asdict(config)
    blob["schema"] = {
        "attributes": [
            {"name": spec.name, "category": spec.category.value}
            for spec in config.schema.attributes
        ],
        "weight_must": config.schema.weight_must,
        "weight_core": config.schema.weight_core,
        "weight_extra": config.schema.weight_extra,
    }
    return blob


def config_from_dict(blob: dict) -> SnapsConfig:
    """Inverse of :func:`config_to_dict`."""
    blob = dict(blob)
    schema_blob = blob.pop("schema")
    schema = Schema(
        attributes=tuple(
            AttributeSpec(spec["name"], AttributeCategory(spec["category"]))
            for spec in schema_blob["attributes"]
        ),
        weight_must=schema_blob["weight_must"],
        weight_core=schema_blob["weight_core"],
        weight_extra=schema_blob["weight_extra"],
    )
    return SnapsConfig(schema=schema, **blob)


def config_fingerprint(config: SnapsConfig) -> str:
    """SHA-256 over the canonical JSON form of ``config``."""
    payload = json.dumps(
        config_to_dict(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def file_sha256(path: Path) -> str:
    """SHA-256 hex digest of a file's bytes."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------


@dataclass
class Manifest:
    """Parsed ``manifest.json`` of one snapshot."""

    snapshot_id: str
    parent: str | None
    created_at: str
    config: dict
    config_fingerprint: str
    similarity_threshold: float
    dataset: dict            # {"name", "records", "certificates", "sha256"}
    counts: dict             # entity/cluster/index cardinalities
    artifacts: dict[str, dict] = field(default_factory=dict)
    # Raw memmap-friendly artefact variants (raw/*.npy).  Checksummed
    # and verified like ``artifacts``, but — exactly like the shard
    # sidecar — EXCLUDED from the content-addressed snapshot id: the
    # raw tier is derived byte-deterministically from the canonical
    # .npz payloads, so its presence must not change the id.
    raw_artifacts: dict[str, dict] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @staticmethod
    def compute_snapshot_id(
        artifacts: dict[str, dict],
        config_fp: str,
        dataset_sha256: str,
        parent: str | None,
    ) -> str:
        """Content-addressed snapshot id (16 hex chars)."""
        payload = json.dumps(
            {
                "artifacts": {
                    name: blob["sha256"] for name, blob in sorted(artifacts.items())
                },
                "config": config_fp,
                "dataset": dataset_sha256,
                "parent": parent,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        blob = {
            "format": _FORMAT,
            "schema_version": self.schema_version,
            "snapshot_id": self.snapshot_id,
            "parent": self.parent,
            "created_at": self.created_at,
            "config": self.config,
            "config_fingerprint": self.config_fingerprint,
            "similarity_threshold": self.similarity_threshold,
            "dataset": self.dataset,
            "counts": self.counts,
            "artifacts": self.artifacts,
        }
        if self.raw_artifacts:
            blob["raw_artifacts"] = self.raw_artifacts
        return blob

    @classmethod
    def from_dict(cls, blob: dict) -> "Manifest":
        if blob.get("format") != _FORMAT:
            raise SnapshotSchemaError(
                f"not a snapshot manifest (format={blob.get('format')!r})"
            )
        version = blob.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise SnapshotSchemaError(
                f"snapshot schema version {version!r} is not supported "
                f"(this build reads versions "
                f"{', '.join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)}); "
                "re-create the snapshot with `repro resolve --snapshot-out`"
            )
        return cls(
            snapshot_id=blob["snapshot_id"],
            parent=blob.get("parent"),
            created_at=blob.get("created_at", ""),
            config=blob["config"],
            config_fingerprint=blob["config_fingerprint"],
            similarity_threshold=blob["similarity_threshold"],
            dataset=blob["dataset"],
            counts=blob.get("counts", {}),
            artifacts=blob.get("artifacts", {}),
            raw_artifacts=blob.get("raw_artifacts", {}),
            schema_version=version,
        )

    def save(self, path: Path) -> None:
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Path) -> "Manifest":
        try:
            blob = json.loads(path.read_text())
        except FileNotFoundError:
            raise SnapshotIntegrityError(f"missing manifest: {path}") from None
        except json.JSONDecodeError as exc:
            raise SnapshotIntegrityError(f"corrupt manifest {path}: {exc}") from None
        return cls.from_dict(blob)

    def snaps_config(self) -> SnapsConfig:
        """The resolver configuration this snapshot was built with."""
        return config_from_dict(self.config)
