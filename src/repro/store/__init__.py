"""Snapshot store: versioned persistence of the complete offline output.

The SNAPS paper splits the system into an offline component (entity
resolution + pedigree graph + index construction) and an online query
component.  ``repro.store`` is the durable hand-off between them: a
:class:`~repro.store.snapshot.SnapshotStore` persists everything the
offline phase produced — resolved entity clusters with their merge
links, the pedigree graph, the keyword index ``K``, and the
similarity-aware indexes ``S`` — as one content-addressed, checksummed,
atomically-written snapshot directory.

* ``repro resolve --snapshot-out DIR`` writes a snapshot;
* ``repro query/pedigree/serve --snapshot DIR`` warm-start from one,
  skipping ER and index construction entirely;
* :class:`~repro.store.incremental.IncrementalResolver` ingests a delta
  batch of certificates against a snapshot, re-resolving only the
  records the new evidence can touch and emitting a child snapshot whose
  manifest points at its parent — a lineage inspectable with
  ``repro snapshot log / inspect / verify``.

Integrity is non-negotiable: every payload carries a SHA-256 in the
manifest, loads verify before deserialising, and schema-version
mismatches fail with an actionable
:class:`~repro.store.manifest.SnapshotSchemaError`.
"""

from repro.store.incremental import IncrementalResolver, IngestResult
from repro.store.manifest import (
    Manifest,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotSchemaError,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
)
from repro.store.snapshot import SIM_ATTRIBUTES, LoadedSnapshot, SnapshotStore

__all__ = [
    "IncrementalResolver",
    "IngestResult",
    "LoadedSnapshot",
    "Manifest",
    "SIM_ATTRIBUTES",
    "SnapshotError",
    "SnapshotIntegrityError",
    "SnapshotSchemaError",
    "SnapshotStore",
    "config_fingerprint",
    "config_from_dict",
    "config_to_dict",
]
