"""Incremental ingest: fold a delta batch into an existing snapshot.

Vital-records collections grow: a new tranche of certificates arrives
and the pedigree index must absorb it without paying a full re-resolve
of everything seen so far.  :class:`IncrementalResolver` does this
against a base snapshot:

1. **Block** the combined dataset (base + delta) with the configured
   blocking stack.  Blocking is cheap relative to resolution and must
   see the union — a new death certificate can only link to an old birth
   record if both are blocked together.
2. **Compute the dirty closure.**  A union-find connects (a) the two
   endpoints of every candidate pair, (b) all pairs sharing a
   certificate-pair group key (the dependency graph gates merges on
   group evidence, so group mates must be re-resolved together), and
   (c) the members of every base cluster.  Components containing at
   least one delta record are *dirty*; everything else is untouched by
   the new evidence.
3. **Replay clean clusters.**  A fresh entity store over the combined
   dataset is seeded by replaying the stored merge links of every clean
   base cluster — identical state to the base resolution, at the cost of
   a few set unions.
4. **Re-resolve dirty pairs only.**  The resolver runs with the
   candidate pairs restricted to dirty components and the seeded store;
   scoring context (the name-frequency index) is built over the full
   combined dataset, exactly as a full re-resolve would.
5. **Emit a child snapshot** whose manifest ``parent`` points at the
   base, chaining snapshots into a lineage (``repro snapshot log``).

Correctness rests on component locality: pair scoring and constraint
checking only consult state of the entities at a pair's two endpoints,
and merges only ever happen along candidate pairs — so records outside
the dirty closure can neither influence nor be influenced by the
re-resolution.  Refinement re-examines replayed clusters too, but it is
idempotent at its own fixpoint, which the base clusters are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SnapsConfig
from repro.core.entities import EntityStore
from repro.core.resolver import LinkageResult, SnapsResolver
from repro.data.records import Dataset, concat_datasets
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace
from repro.store.manifest import Manifest, SnapshotError
from repro.store.snapshot import SnapshotStore

__all__ = ["IncrementalResolver", "IngestResult"]

logger = get_logger("store.incremental")


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent.setdefault(x, x)
        if parent != x:
            parent = self.find(parent)
            self._parent[x] = parent
        return parent

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


@dataclass
class IngestResult:
    """Outcome of one incremental ingest."""

    manifest: Manifest
    linkage: LinkageResult
    stats: dict = field(default_factory=dict)


class IncrementalResolver:
    """Ingests delta batches of certificates against a snapshot store."""

    def __init__(
        self,
        store: SnapshotStore,
        config: SnapsConfig | None = None,
        similarity_threshold: float | None = None,
    ) -> None:
        """``config``/``similarity_threshold`` default to the values the
        base snapshot's manifest records, keeping an ingest chain
        self-consistent unless deliberately overridden."""
        self.store = store
        self._config = config
        self._similarity_threshold = similarity_threshold

    def ingest(
        self,
        delta: Dataset,
        parent: str | None = None,
        trace: Trace | None = None,
        metrics: MetricsRegistry | None = None,
        workers: int | None = None,
        shards: int | None = None,
        supervise=None,
    ) -> IngestResult:
        """Fold ``delta`` into the snapshot ``parent`` (default HEAD);
        returns the new child snapshot's manifest and linkage result.

        ``workers`` selects the resolution path for the re-resolve step
        (0 = serial, N >= 1 = parallel, ``None`` = auto by dataset size);
        the output is byte-identical either way.  ``supervise`` carries
        worker-supervision knobs (deadlines/retries/quarantine) into
        those pools.

        When the parent snapshot carries a shard sidecar, the dirty
        closure is mapped onto the parent's partition: shards untouched
        by the delta are never re-resolved (their clusters are replayed
        verbatim), and ``stats`` reports ``shards_total`` /
        ``shards_reresolved``.  The child snapshot gets a fresh sidecar
        partitioned over the combined dataset, with ``shards``
        overriding the inherited shard count.  ``shards`` on a parent
        without a sidecar starts a sharded lineage.
        """
        # Lazy: repro.shard pulls in the store layer and vice versa.
        from repro.parallel import ParallelConfig
        from repro.shard.partition import build_shard_plan
        from repro.store.shards import (
            has_shard_sidecar,
            load_shard_plan,
            write_shard_sidecar,
        )

        parallel = ParallelConfig(workers=workers, supervise=supervise)
        trace = trace if trace is not None else Trace.disabled()
        with trace.span("ingest"):
            with trace.span("load_base"):
                base = self.store.load(
                    parent, artifacts=("dataset", "clusters"), trace=trace
                )
            if base.dataset is None:  # pragma: no cover - load() guarantees it
                raise SnapshotError("base snapshot has no dataset payload")
            config = (
                self._config
                if self._config is not None
                else base.manifest.snaps_config()
            )
            threshold = (
                self._similarity_threshold
                if self._similarity_threshold is not None
                else base.manifest.similarity_threshold
            )
            resolver = SnapsResolver(config)
            base_dir = self.store.path_of(base.manifest.snapshot_id)
            parent_plan = (
                load_shard_plan(base_dir) if has_shard_sidecar(base_dir) else None
            )
            combined = concat_datasets(base.dataset, delta)
            delta_ids = set(delta.records)
            with trace.span("blocking"):
                pairs = resolver.block(
                    combined, metrics=metrics, parallel=parallel, trace=trace
                )
            with trace.span("dirty_closure"):
                dirty_pairs, dirty_records, seeded, replayed = self._partition(
                    combined, pairs, base.clusters, delta_ids
                )
            logger.info(
                "ingest %s: %d delta records dirty %d/%d records, "
                "%d/%d pairs, replayed %d clean clusters",
                delta.name,
                len(delta_ids),
                len(dirty_records),
                len(combined),
                len(dirty_pairs),
                len(pairs),
                replayed,
            )
            dirty_shards: set[int] = set()
            if parent_plan is not None:
                dirty_shards = {
                    parent_plan.shard_of[rid]
                    for rid in dirty_records
                    if rid in parent_plan.shard_of
                }
                logger.info(
                    "ingest %s: dirty closure touches %d/%d parent shards",
                    delta.name,
                    len(dirty_shards),
                    parent_plan.n_shards,
                )
            trace.annotate(
                delta_records=len(delta_ids),
                dirty_records=len(dirty_records),
                dirty_pairs=len(dirty_pairs),
                replayed_clusters=replayed,
            )
            with trace.span("resolve"):
                linkage = resolver.resolve(
                    combined,
                    trace=trace,
                    metrics=metrics,
                    pairs=dirty_pairs,
                    store=seeded,
                    parallel=parallel,
                )
            n_child_shards = (
                shards
                if shards is not None
                else (parent_plan.n_shards if parent_plan is not None else None)
            )
            sidecar_writer = None
            if n_child_shards is not None:
                # The child partitions the *combined* dataset afresh: the
                # delta's pairs may have fused parent components, and the
                # sidecar must describe the snapshot it sits next to.
                child_plan = build_shard_plan(combined, pairs, n_child_shards)
                sidecar_writer = lambda directory: write_shard_sidecar(  # noqa: E731
                    directory, child_plan, linkage.entities
                )
            with trace.span("save"):
                manifest = self.store.save(
                    linkage,
                    similarity_threshold=threshold,
                    parent=base.manifest.snapshot_id,
                    config=config,
                    trace=trace,
                    metrics=metrics,
                    sidecar_writer=sidecar_writer,
                )
        stats = {
            "delta_records": len(delta_ids),
            "combined_records": len(combined),
            "dirty_records": len(dirty_records),
            "candidate_pairs": len(pairs),
            "dirty_pairs": len(dirty_pairs),
            "replayed_clusters": replayed,
        }
        if parent_plan is not None:
            stats["shards_total"] = parent_plan.n_shards
            stats["shards_reresolved"] = len(dirty_shards)
        if metrics is not None:
            metrics.inc("store.ingests")
            metrics.inc("store.ingest.delta_records", len(delta_ids))
            metrics.inc("store.ingest.dirty_pairs", len(dirty_pairs))
            metrics.inc("store.ingest.skipped_pairs", len(pairs) - len(dirty_pairs))
            metrics.set_gauge(
                "store.ingest.dirty_fraction",
                len(dirty_records) / max(1, len(combined)),
            )
            if parent_plan is not None:
                metrics.inc("store.ingest.shards_reresolved", len(dirty_shards))
                metrics.inc(
                    "store.ingest.shards_skipped",
                    parent_plan.n_shards - len(dirty_shards),
                )
        return IngestResult(manifest=manifest, linkage=linkage, stats=stats)

    # ------------------------------------------------------------------

    def _partition(
        self,
        combined: Dataset,
        pairs: list,
        base_clusters: list[dict],
        delta_ids: set[int],
    ) -> tuple[list, set[int], EntityStore, int]:
        """Split work into dirty pairs to re-resolve and clean clusters to
        replay; returns ``(dirty_pairs, dirty_records, seeded_store,
        n_replayed)``."""
        uf = _UnionFind()
        group_anchor: dict[tuple[int, int], int] = {}
        for pair in pairs:
            uf.union(pair.rid_a, pair.rid_b)
            record_a = combined.record(pair.rid_a)
            record_b = combined.record(pair.rid_b)
            group = (
                min(record_a.cert_id, record_b.cert_id),
                max(record_a.cert_id, record_b.cert_id),
            )
            anchor = group_anchor.setdefault(group, pair.rid_a)
            uf.union(anchor, pair.rid_a)
        for cluster in base_clusters:
            records = cluster["records"]
            for rid in records[1:]:
                uf.union(records[0], rid)
        dirty_roots = {uf.find(rid) for rid in delta_ids}
        dirty_records = {
            rid for rid in combined.records if uf.find(rid) in dirty_roots
        }
        dirty_pairs = [
            pair for pair in pairs if uf.find(pair.rid_a) in dirty_roots
        ]
        seeded = EntityStore(combined)
        replayed = 0
        for cluster in base_clusters:
            if uf.find(cluster["records"][0]) in dirty_roots:
                continue
            for rid_a, rid_b in cluster["links"]:
                seeded.merge(rid_a, rid_b)
            replayed += 1
        return dirty_pairs, dirty_records, seeded, replayed
