"""Shard-aware snapshot sidecar: per-shard artefacts + merge manifest.

A sharded resolve leaves, next to the ordinary snapshot payloads, a
``shards/`` sidecar directory:

.. code-block:: text

    snapshots/<id>/shards/
      merge-manifest.json       # schema version, per-shard SHA-256,
                                # partition fingerprint
      shard-0000.json           # shard 0's record assignment + clusters
      shard-0001.json
      ...

Each per-shard payload holds the records the partition assigned to that
shard and the final clusters restricted to them — enough for
:class:`~repro.store.incremental.IncrementalResolver` to map a delta's
dirty closure onto parent shards and re-resolve only the dirty ones.
The sidecar is deliberately **excluded from the snapshot's content
address**: artefact bytes are identical across shard counts (that is
the parity guarantee), so two resolves of the same dataset must produce
the same snapshot id whether they ran serial, 2-sharded, or 8-sharded.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.entities import EntityStore
from repro.shard.partition import ShardPlan
from repro.store.manifest import (
    SnapshotIntegrityError,
    SnapshotSchemaError,
    file_sha256,
)

__all__ = [
    "MERGE_MANIFEST_FILENAME",
    "SHARDS_DIRNAME",
    "SHARD_SCHEMA_VERSION",
    "has_shard_sidecar",
    "load_merge_manifest",
    "load_shard_payload",
    "load_shard_plan",
    "shard_clusters",
    "verify_shard_sidecar",
    "write_shard_sidecar",
]

SHARDS_DIRNAME = "shards"
MERGE_MANIFEST_FILENAME = "merge-manifest.json"
_MERGE_FORMAT = "snaps-shard-merge"
_SHARD_FORMAT = "snaps-shard"
SHARD_SCHEMA_VERSION = 1


def _shard_filename(index: int) -> str:
    return f"shard-{index:04d}.json"


def shard_clusters(entities: EntityStore, plan: ShardPlan) -> list[list[dict]]:
    """Final non-singleton clusters restricted to each shard.

    Merges only happen along candidate pairs, so every cluster lies
    within one closure component — and a plan built for this resolve
    keeps components whole, so assigning a cluster by its smallest
    record id is assigning it by all of them.
    """
    buckets: list[list[dict]] = [[] for _ in range(plan.n_shards)]
    for entity in sorted(
        entities.entities(min_size=2), key=lambda entity: min(entity.record_ids)
    ):
        shard = plan.shard_of.get(min(entity.record_ids))
        if shard is None:
            continue
        buckets[shard].append(
            {
                "records": sorted(entity.record_ids),
                "links": sorted(list(link) for link in entity.links),
            }
        )
    return buckets


def write_shard_sidecar(
    directory: Path, plan: ShardPlan, entities: EntityStore
) -> dict:
    """Write the ``shards/`` sidecar into a snapshot ``directory``.

    Returns the merge-manifest blob.  Meant to run against the
    snapshot's temporary assembly directory (see
    ``SnapshotStore.save(sidecar_writer=...)``) so the sidecar commits
    atomically with the snapshot itself.
    """
    shards_dir = directory / SHARDS_DIRNAME
    shards_dir.mkdir(parents=True, exist_ok=True)
    buckets = shard_clusters(entities, plan)
    entries = []
    for index in range(plan.n_shards):
        payload = {
            "format": _SHARD_FORMAT,
            "schema_version": SHARD_SCHEMA_VERSION,
            "shard": index,
            "records": plan.shard_records[index],
            "clusters": buckets[index],
        }
        path = shards_dir / _shard_filename(index)
        path.write_text(json.dumps(payload))
        entries.append(
            {
                "shard": index,
                "path": _shard_filename(index),
                "sha256": file_sha256(path),
                "bytes": path.stat().st_size,
                "records": len(plan.shard_records[index]),
                "clusters": len(buckets[index]),
            }
        )
    manifest = {
        "format": _MERGE_FORMAT,
        "schema_version": SHARD_SCHEMA_VERSION,
        "n_shards": plan.n_shards,
        "partition_fingerprint": plan.fingerprint,
        "covered_records": plan.covered_records(),
        "shards": entries,
    }
    (shards_dir / MERGE_MANIFEST_FILENAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True)
    )
    return manifest


def has_shard_sidecar(directory: Path) -> bool:
    """Whether a snapshot directory carries a shard sidecar."""
    return (directory / SHARDS_DIRNAME / MERGE_MANIFEST_FILENAME).exists()


def load_merge_manifest(directory: Path) -> dict:
    """Read and validate a snapshot's shard merge manifest."""
    path = directory / SHARDS_DIRNAME / MERGE_MANIFEST_FILENAME
    try:
        blob = json.loads(path.read_text())
    except FileNotFoundError:
        raise SnapshotIntegrityError(f"missing shard merge manifest: {path}") from None
    except json.JSONDecodeError as exc:
        raise SnapshotIntegrityError(
            f"corrupt shard merge manifest {path}: {exc}"
        ) from None
    if blob.get("format") != _MERGE_FORMAT:
        raise SnapshotSchemaError(
            f"not a shard merge manifest (format={blob.get('format')!r})"
        )
    if blob.get("schema_version") != SHARD_SCHEMA_VERSION:
        raise SnapshotSchemaError(
            f"unsupported shard merge manifest version "
            f"{blob.get('schema_version')!r} (this build reads "
            f"{SHARD_SCHEMA_VERSION})"
        )
    return blob


def load_shard_payload(directory: Path, index: int, verify: bool = True) -> dict:
    """One shard's payload, checksum-verified against the merge manifest."""
    manifest = load_merge_manifest(directory)
    try:
        entry = next(e for e in manifest["shards"] if e["shard"] == index)
    except StopIteration:
        raise SnapshotIntegrityError(
            f"merge manifest lists no shard {index}"
        ) from None
    path = directory / SHARDS_DIRNAME / entry["path"]
    if verify:
        if not path.exists():
            raise SnapshotIntegrityError(f"missing shard payload {path}")
        actual = file_sha256(path)
        if actual != entry["sha256"]:
            raise SnapshotIntegrityError(
                f"shard payload {entry['path']} is corrupt (manifest sha256 "
                f"{entry['sha256'][:12]}…, on disk {actual[:12]}…)"
            )
    blob = json.loads(path.read_text())
    if blob.get("format") != _SHARD_FORMAT:
        raise SnapshotSchemaError(
            f"not a shard payload (format={blob.get('format')!r})"
        )
    return blob


def load_shard_plan(directory: Path, verify: bool = True) -> ShardPlan:
    """Rebuild the partition a snapshot's sidecar records."""
    manifest = load_merge_manifest(directory)
    records = [
        load_shard_payload(directory, entry["shard"], verify=verify)["records"]
        for entry in sorted(manifest["shards"], key=lambda e: e["shard"])
    ]
    plan = ShardPlan(int(manifest["n_shards"]), records)
    stored = manifest.get("partition_fingerprint")
    if stored is not None and stored != plan.fingerprint:
        raise SnapshotIntegrityError(
            f"shard partition fingerprint mismatch (manifest {stored}, "
            f"recomputed {plan.fingerprint})"
        )
    return plan


def verify_shard_sidecar(directory: Path) -> list[str]:
    """Human-readable sidecar problems; empty means intact or absent."""
    if not has_shard_sidecar(directory):
        return []
    problems: list[str] = []
    try:
        manifest = load_merge_manifest(directory)
    except (SnapshotIntegrityError, SnapshotSchemaError) as exc:
        return [f"shards: {exc}"]
    for entry in manifest.get("shards", []):
        path = directory / SHARDS_DIRNAME / entry["path"]
        if not path.exists():
            problems.append(f"shards: missing payload {entry['path']}")
            continue
        actual = file_sha256(path)
        if actual != entry["sha256"]:
            problems.append(
                f"shards: {entry['path']} checksum mismatch "
                f"(manifest {entry['sha256'][:12]}…, disk {actual[:12]}…)"
            )
    if not problems:
        try:
            load_shard_plan(directory)
        except (SnapshotIntegrityError, SnapshotSchemaError, ValueError) as exc:
            problems.append(f"shards: {exc}")
    return problems
