"""Run reports: one JSON artefact per resolver/query run, plus rendering.

A *run report* bundles the span tree of a :class:`~repro.obs.trace.Trace`
with the snapshot of a :class:`~repro.obs.metrics.MetricsRegistry` and
free-form metadata (dataset name, config, record counts).  The CLI's
``--metrics-out`` flag writes one; ``repro report run.json`` renders it
back as the human-readable tables below; the bench harness appends them
next to its text tables so every Table 5/6/7 run leaves a machine-
readable artefact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace

__all__ = ["build_report", "render_report", "save_report", "load_report"]

REPORT_VERSION = 1


def build_report(
    trace: Trace | None = None,
    metrics: MetricsRegistry | None = None,
    meta: dict | None = None,
) -> dict:
    """Assemble the JSON-serialisable run-report dict."""
    return {
        "version": REPORT_VERSION,
        "meta": dict(meta or {}),
        "spans": trace.tree() if trace is not None else [],
        "metrics": metrics.as_dict() if metrics is not None else {},
    }


def save_report(report: dict, path: str | Path) -> Path:
    """Write ``report`` as indented JSON; returns the path written.

    Missing parent directories are created, so ``--metrics-out
    out/run.json`` works without a prior ``mkdir``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    """Read a report written by :func:`save_report`."""
    report = json.loads(Path(path).read_text())
    if not isinstance(report, dict) or "version" not in report:
        raise ValueError(f"{path} is not a run report")
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _render_span(node: dict, depth: int, parent_elapsed: float, lines: list[str]) -> None:
    elapsed = node.get("elapsed_s", 0.0)
    share = 100.0 * elapsed / parent_elapsed if parent_elapsed > 0 else 100.0
    label = "  " * depth + node["name"]
    extra = ""
    if node.get("mem_peak_bytes") is not None:
        extra += (
            f"  alloc={_format_bytes(node['mem_alloc_bytes'])}"
            f" peak={_format_bytes(node['mem_peak_bytes'])}"
        )
    if node.get("error"):
        extra += f"  !{node['error']}"
    lines.append(f"  {label:<40} {elapsed:>10.4f}s {share:>6.1f}%{extra}")
    for child in node.get("children", ()):
        _render_span(child, depth + 1, elapsed, lines)


def _render_histogram(name: str, data: dict, lines: list[str]) -> None:
    low = f"{data['min']:.4g}" if data["min"] is not None else "-"
    high = f"{data['max']:.4g}" if data["max"] is not None else "-"
    lines.append(
        f"  {name}  (n={data['count']}, sum={data['sum']:.4g}, "
        f"min={low}, max={high})"
    )
    counts = data["counts"]
    peak = max(counts) if counts else 0
    bounds = [f"<= {b:g}" for b in data["buckets"]] + ["> last"]
    for bound, count in zip(bounds, counts):
        if count == 0:
            continue
        bar = "#" * max(1, round(24 * count / peak)) if peak else ""
        lines.append(f"    {bound:>12}  {count:>8}  {bar}")


def render_report(report: dict) -> str:
    """Human-readable rendering of a run report (the ``report`` command)."""
    lines: list[str] = []
    meta = report.get("meta", {})
    if meta:
        lines.append("run metadata")
        for key, value in meta.items():
            lines.append(f"  {key}: {value}")
        lines.append("")
    spans = report.get("spans", [])
    if spans:
        lines.append("spans" + " " * 38 + "elapsed    share")
        for root in spans:
            root_elapsed = root.get("elapsed_s", 0.0)
            _render_span(root, 0, root_elapsed, lines)
        lines.append("")
    metrics = report.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        width = max(len(n) for n in counters)
        lines.append("counters")
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:>12}")
        lines.append("")
    gauges = metrics.get("gauges", {})
    if gauges:
        width = max(len(n) for n in gauges)
        lines.append("gauges")
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:>12.4f}")
        lines.append("")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms")
        for name, data in histograms.items():
            _render_histogram(name, data, lines)
        lines.append("")
    if not lines:
        lines.append("(empty report)")
    return "\n".join(lines).rstrip() + "\n"
