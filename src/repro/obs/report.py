"""Run reports: one JSON artefact per resolver/query run, plus rendering.

A *run report* bundles the span tree of a :class:`~repro.obs.trace.Trace`
with the snapshot of a :class:`~repro.obs.metrics.MetricsRegistry` and
free-form metadata (dataset name, config, record counts).  The CLI's
``--metrics-out`` flag writes one; ``repro report run.json`` renders it
back as the human-readable tables below; the bench harness appends them
next to its text tables so every Table 5/6/7 run leaves a machine-
readable artefact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace

__all__ = ["build_report", "render_report", "save_report", "load_report"]

REPORT_VERSION = 1


def build_report(
    trace: Trace | None = None,
    metrics: MetricsRegistry | None = None,
    meta: dict | None = None,
    profile: dict | None = None,
) -> dict:
    """Assemble the JSON-serialisable run-report dict.

    ``profile`` is the optional ``SamplingProfiler.as_dict()`` summary
    (sample counts + top self/cumulative stacks); it is only included
    when a run was profiled, keeping unprofiled reports unchanged.
    """
    report = {
        "version": REPORT_VERSION,
        "meta": dict(meta or {}),
        "spans": trace.tree() if trace is not None else [],
        "metrics": metrics.as_dict() if metrics is not None else {},
    }
    if profile is not None:
        report["profile"] = profile
    return report


def save_report(report: dict, path: str | Path) -> Path:
    """Write ``report`` as indented JSON; returns the path written.

    Missing parent directories are created, so ``--metrics-out
    out/run.json`` works without a prior ``mkdir``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    """Read a report written by :func:`save_report`."""
    report = json.loads(Path(path).read_text())
    if not isinstance(report, dict) or "version" not in report:
        raise ValueError(f"{path} is not a run report")
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _render_span(node: dict, depth: int, parent_elapsed: float, lines: list[str]) -> None:
    elapsed = node.get("elapsed_s", 0.0)
    share = 100.0 * elapsed / parent_elapsed if parent_elapsed > 0 else 100.0
    label = "  " * depth + node["name"]
    extra = ""
    if node.get("mem_peak_bytes") is not None:
        extra += (
            f"  alloc={_format_bytes(node['mem_alloc_bytes'])}"
            f" peak={_format_bytes(node['mem_peak_bytes'])}"
        )
    if node.get("error"):
        extra += f"  !{node['error']}"
    lines.append(f"  {label:<40} {elapsed:>10.4f}s {share:>6.1f}%{extra}")
    for child in node.get("children", ()):
        _render_span(child, depth + 1, elapsed, lines)


def _histogram_quantiles(data: dict) -> dict[str, float] | None:
    """p50/p95/p99 for a histogram snapshot dict.

    Prefers the values baked into the snapshot; falls back to computing
    them, so reports written before quantiles were recorded still render
    with percentiles.
    """
    if not data.get("count"):
        return None
    from repro.obs.metrics import histogram_quantile

    out: dict[str, float] = {}
    for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        value = data.get(key)
        if value is None:
            value = histogram_quantile(
                data["buckets"],
                data["counts"],
                q,
                minimum=data.get("min"),
                maximum=data.get("max"),
            )
        out[key] = value
    return out


def _render_histogram(name: str, data: dict, lines: list[str]) -> None:
    low = f"{data['min']:.4g}" if data["min"] is not None else "-"
    high = f"{data['max']:.4g}" if data["max"] is not None else "-"
    quantiles = _histogram_quantiles(data)
    summary = (
        f"  {name}  (n={data['count']}, sum={data['sum']:.4g}, "
        f"min={low}, max={high}"
    )
    if quantiles is not None:
        summary += (
            f", p50={quantiles['p50']:.4g}, p95={quantiles['p95']:.4g}, "
            f"p99={quantiles['p99']:.4g}"
        )
    lines.append(summary + ")")
    counts = data["counts"]
    peak = max(counts) if counts else 0
    bounds = [f"<= {b:g}" for b in data["buckets"]] + ["> last"]
    for bound, count in zip(bounds, counts):
        if count == 0:
            continue
        bar = "#" * max(1, round(24 * count / peak)) if peak else ""
        lines.append(f"    {bound:>12}  {count:>8}  {bar}")


def render_report(report: dict) -> str:
    """Human-readable rendering of a run report (the ``report`` command)."""
    lines: list[str] = []
    meta = report.get("meta", {})
    if meta:
        lines.append("run metadata")
        for key, value in meta.items():
            lines.append(f"  {key}: {value}")
        lines.append("")
    spans = report.get("spans", [])
    if spans:
        lines.append("spans" + " " * 38 + "elapsed    share")
        for root in spans:
            root_elapsed = root.get("elapsed_s", 0.0)
            _render_span(root, 0, root_elapsed, lines)
        lines.append("")
    metrics = report.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        width = max(len(n) for n in counters)
        lines.append("counters")
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:>12}")
        lines.append("")
    gauges = metrics.get("gauges", {})
    if gauges:
        width = max(len(n) for n in gauges)
        lines.append("gauges")
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:>12.4f}")
        lines.append("")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms")
        for name, data in histograms.items():
            _render_histogram(name, data, lines)
        lines.append("")
    profile = report.get("profile")
    if profile:
        lines.append(
            f"profile  (samples={profile.get('samples', 0)}, "
            f"interval={profile.get('interval_s', 0):.4g}s, "
            f"elapsed={profile.get('elapsed_s', 0):.4g}s)"
        )
        top = profile.get("top", [])
        if top:
            width = max(len(entry["frame"]) for entry in top)
            lines.append(f"  {'frame':<{width}}     self      cum")
            for entry in top:
                lines.append(
                    f"  {entry['frame']:<{width}} {entry['self_s']:>8.3f}s"
                    f" {entry['cum_s']:>7.3f}s"
                )
        lines.append("")
    if not lines:
        lines.append("(empty report)")
    return "\n".join(lines).rstrip() + "\n"
