"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The pipeline reports *how much work* each phase did through a
:class:`MetricsRegistry` — candidate pairs generated, merges applied,
constraint rejections, block-size and similarity distributions, query
latencies.  The registry is a plain name → instrument mapping with
get-or-create semantics, so instrumented code never has to declare its
instruments up front.

Counters take a lock per increment because the resolver's future sharded
mode (and tests) drive them from ``concurrent.futures`` workers; gauges
and histograms share the same lock discipline.  A :class:`NullMetrics`
singleton (``NULL_METRICS``) implements the same surface as no-ops so
hot paths can be written unconditionally against an always-present
registry.
"""

from __future__ import annotations

import math
import threading
from typing import Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "linear_buckets",
    "exponential_buckets",
    "histogram_quantile",
    "merge_counts",
    "SIMILARITY_BUCKETS",
    "LATENCY_BUCKETS_S",
]


def linear_buckets(start: float, width: float, count: int) -> list[float]:
    """``count`` evenly spaced bucket upper bounds from ``start``.

    >>> linear_buckets(0.1, 0.1, 3)
    [0.1, 0.2, 0.3]
    """
    if count <= 0 or width <= 0:
        raise ValueError("count and width must be positive")
    return [round(start + i * width, 10) for i in range(count)]


def exponential_buckets(start: float, factor: float, count: int) -> list[float]:
    """``count`` geometrically growing bucket upper bounds from ``start``.

    >>> exponential_buckets(1, 2, 4)
    [1.0, 2.0, 4.0, 8.0]
    """
    if count <= 0 or start <= 0 or factor <= 1.0:
        raise ValueError("need positive start, factor > 1, positive count")
    return [round(float(start) * float(factor) ** i, 10) for i in range(count)]


# Shared bucket presets: similarity scores live in [0, 1] (20 × 0.05
# steps); latencies from 0.1 ms to ~13 s in doubling steps.
SIMILARITY_BUCKETS = linear_buckets(0.05, 0.05, 20)
LATENCY_BUCKETS_S = exponential_buckets(0.0001, 2, 18)


def histogram_quantile(
    buckets: Sequence[float],
    counts: Sequence[int],
    q: float,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float:
    """Prometheus-style quantile estimate from cumulative-able buckets.

    ``buckets`` are the upper bounds, ``counts`` the per-bucket counts
    with one trailing overflow slot (the :class:`Histogram` layout).
    Linearly interpolates inside the bucket the target rank falls in;
    the first bucket's lower edge is ``minimum`` (default 0.0) and a
    rank landing in the overflow bucket returns ``maximum`` (default the
    last finite bound).  The result is clamped into ``[minimum,
    maximum]`` when those are known, matching what an exact-sample
    estimator could return.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for i, bound in enumerate(buckets):
        in_bucket = counts[i]
        if seen + in_bucket >= rank and in_bucket > 0:
            lo = buckets[i - 1] if i > 0 else (minimum if minimum is not None else 0.0)
            estimate = lo + (bound - lo) * ((rank - seen) / in_bucket)
            break
        seen += in_bucket
    else:
        # Rank falls in the overflow bucket: the bound is unknown, so
        # report the observed maximum (or the last finite bound).
        estimate = maximum if maximum is not None else float(buckets[-1])
    if minimum is not None and estimate < minimum:
        estimate = minimum
    if maximum is not None and estimate > maximum:
        estimate = maximum
    return estimate


def merge_counts(metrics, counts: dict[str, int], prefix: str = "") -> None:
    """Fold a plain ``name -> count`` dict into ``metrics`` counters.

    Worker processes can't share a registry, so they return counter
    deltas as plain dicts; the parent folds them in here.  ``metrics``
    may be ``None`` (the uninstrumented fast path).
    """
    if metrics is None:
        return
    for name, count in counts.items():
        if count:
            metrics.inc(f"{prefix}{name}", count)


class Counter:
    """Monotonically increasing integer count, safe across threads."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    # Locks don't pickle; drop them on the way out and mint a fresh one
    # on the way in so registries can cross process boundaries.
    def __getstate__(self) -> dict:
        return {"name": self.name, "_value": self._value}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self._value = state["_value"]
        self._lock = threading.Lock()


class Gauge:
    """A last-write-wins numeric value (e.g. reduction ratio)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with sum/min/max tracking.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit overflow bucket (+inf) catches everything above the last
    bound.  A value exactly on a bound lands in that bound's bucket.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds or bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # [+1] = overflow
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (see
        :func:`histogram_quantile`)."""
        if not self.count:
            return 0.0
        return histogram_quantile(
            self.buckets, self.counts, q, minimum=self.min, maximum=self.max
        )

    def as_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": round(self.quantile(0.50), 9) if self.count else None,
            "p95": round(self.quantile(0.95), 9) if self.count else None,
            "p99": round(self.quantile(0.99), 9) if self.count else None,
        }

    def __getstate__(self) -> dict:
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot != "_lock"
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._lock = threading.Lock()


class MetricsRegistry:
    """Name → instrument mapping with get-or-create semantics."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    # -- get-or-create ------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self.counters.get(name)
            if instrument is None:
                instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self.gauges.get(name)
            if instrument is None:
                instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, buckets: Sequence[float] | None = None) -> Histogram:
        with self._lock:
            instrument = self.histograms.get(name)
            if instrument is None:
                if buckets is None:
                    buckets = exponential_buckets(1, 2, 16)
                instrument = self.histograms[name] = Histogram(name, buckets)
        return instrument

    # -- convenience write paths --------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, buckets: Sequence[float] | None = None
    ) -> None:
        self.histogram(name, buckets).observe(value)

    # -- read / export -------------------------------------------------

    def counter_value(self, name: str) -> int:
        instrument = self.counters.get(name)
        return instrument.value if instrument else 0

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self.histograms.items())
            },
        }

    def __getstate__(self) -> dict:
        return {
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
        }

    def __setstate__(self, state: dict) -> None:
        self.counters = state["counters"]
        self.gauges = state["gauges"]
        self.histograms = state["histograms"]
        self._lock = threading.Lock()

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry (for multi-run
        aggregation); gauges keep the *other* run's value (last write
        wins).  Histograms must agree on buckets."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, theirs in other.histograms.items():
            mine = self.histogram(name, theirs.buckets)
            if mine.buckets != theirs.buckets:
                raise ValueError(f"histogram {name!r} bucket mismatch")
            with mine._lock:
                for i, c in enumerate(theirs.counts):
                    mine.counts[i] += c
                mine.count += theirs.count
                mine.total += theirs.total
                mine.min = min(mine.min, theirs.min)
                mine.max = max(mine.max, theirs.max)
        return self


class NullMetrics:
    """No-op registry: same write surface, nothing recorded."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def counter(self, name: str) -> Counter:  # pragma: no cover - trivial
        return Counter(name)

    def gauge(self, name: str) -> Gauge:  # pragma: no cover - trivial
        return Gauge(name)

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:  # pragma: no cover - trivial
        return Histogram(name, buckets if buckets is not None else [1.0])

    def inc(self, name: str, n: int = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(
        self, name: str, value: float, buckets: Sequence[float] | None = None
    ) -> None:
        return None

    def counter_value(self, name: str) -> int:
        return 0

    def as_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
