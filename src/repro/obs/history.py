"""Benchmark history: the repo's persisted performance trajectory.

Every benchmark run already leaves a machine-readable run report
(``benchmarks/results/<bench>.metrics.json``).  This module folds those
artefacts into ``BENCH_HISTORY.jsonl`` — one schema-versioned row per
run, keyed by (bench, scale, config fingerprint, git sha) — and
answers the two questions a perf log exists for:

* **deltas** — how does the latest run of each benchmark compare to its
  rolling baseline (the median of the previous ``window`` runs at the
  same bench + scale)?
* **regressions** — did any *time-like* measure grow past a threshold
  ratio?  ``repro bench-history --check`` exits non-zero when one did,
  which is the CI gate ROADMAP perf work runs behind.

Rows store a flat ``measures`` map extracted from the report: numeric
metadata (``meta:<key>``), root-span wall times (``span:<name>``),
counters, gauges, and histogram count/mean/p95 (``hist:<name>.*``).
Only time-like measures (span times, ``meta:time_*``, anything named
``*seconds*``) can *fail* the check — counters legitimately move when
the workload changes — but every measure is recorded, so non-time
drifts are visible in the deltas.

Appends are idempotent: a row whose (bench, source sha256) pair is
already present is skipped, so re-running ``bench-history`` after a
bench that produced no new artefact does not duplicate history.
Medians, not means, anchor the baseline — one noisy CI run must not
drag the reference.
"""

from __future__ import annotations

import hashlib
import json
import statistics
import subprocess
from pathlib import Path

__all__ = [
    "HISTORY_VERSION",
    "extract_measures",
    "history_row",
    "load_history",
    "append_rows",
    "compute_deltas",
    "find_regressions",
    "git_sha",
]

HISTORY_VERSION = 1

# Thresholds below which a ratio regression is noise, not signal: a
# 2 ms span doubling to 4 ms should not fail CI.
DEFAULT_THRESHOLD = 1.5
DEFAULT_MIN_DELTA_S = 0.05
DEFAULT_WINDOW = 5


def git_sha(repo_root: str | Path | None = None) -> str:
    """The current short commit sha, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def is_time_measure(name: str) -> bool:
    """Whether a measure is wall-time-like (and so can fail --check)."""
    return (
        name.startswith("span:")
        or name.startswith("meta:time_")
        or "seconds" in name
    )


def _flatten_meta(meta: dict, prefix: str, out: dict[str, float]) -> None:
    for key, value in meta.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[f"{prefix}{key}"] = float(value)
        elif isinstance(value, dict):
            _flatten_meta(value, f"{prefix}{key}.", out)


def extract_measures(report: dict) -> dict[str, float]:
    """Flatten a run report into comparable numeric measures."""
    measures: dict[str, float] = {}
    _flatten_meta(report.get("meta", {}), "meta:", measures)
    for root in report.get("spans", ()):
        measures[f"span:{root['name']}"] = float(root.get("elapsed_s", 0.0))
    metrics = report.get("metrics", {})
    for name, value in metrics.get("counters", {}).items():
        measures[f"counter:{name}"] = float(value)
    for name, value in metrics.get("gauges", {}).items():
        measures[f"gauge:{name}"] = float(value)
    for name, data in metrics.get("histograms", {}).items():
        measures[f"hist:{name}.count"] = float(data.get("count", 0))
        count = data.get("count", 0)
        if count:
            measures[f"hist:{name}.mean"] = float(data.get("sum", 0.0)) / count
            p95 = data.get("p95")
            if p95 is not None:
                measures[f"hist:{name}.p95"] = float(p95)
    return measures


def _fingerprint(report: dict) -> str:
    """A stable identity for the run's configuration.

    Prefers an explicit ``config_fingerprint`` in the metadata; else
    hashes the string/bool metadata only (dataset names, flags) — any
    numeric or nested value is a measurement, not an identity, and must
    not split one bench's runs into incomparable series.
    """
    meta = report.get("meta", {})
    explicit = meta.get("config_fingerprint")
    if explicit:
        return str(explicit)
    stable = {
        k: v for k, v in meta.items() if isinstance(v, (str, bool))
    }
    blob = json.dumps(stable, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:12]


def history_row(
    report: dict,
    source: str,
    recorded_at: str,
    sha: str | None = None,
) -> dict:
    """One BENCH_HISTORY.jsonl row for a run report."""
    meta = report.get("meta", {})
    blob = json.dumps(report, sort_keys=True).encode("utf-8")
    return {
        "version": HISTORY_VERSION,
        "bench": str(meta.get("bench") or Path(source).stem.replace(".metrics", "")),
        "scale": meta.get("scale"),
        "fingerprint": _fingerprint(report),
        "git_sha": sha if sha is not None else git_sha(),
        "recorded_at": recorded_at,
        "source": str(source),
        "source_sha256": hashlib.sha256(blob).hexdigest(),
        "measures": extract_measures(report),
    }


def load_history(path: str | Path) -> list[dict]:
    """All rows of a history file (missing file = empty history)."""
    path = Path(path)
    if not path.exists():
        return []
    rows: list[dict] = []
    for n, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{n}: corrupt history row") from exc
        if row.get("version") != HISTORY_VERSION:
            raise ValueError(
                f"{path}:{n}: unsupported history version {row.get('version')!r}"
            )
        rows.append(row)
    return rows


def append_rows(path: str | Path, rows: list[dict]) -> list[dict]:
    """Append ``rows`` (skipping already-recorded ones); returns the
    rows actually written."""
    path = Path(path)
    existing = load_history(path)
    seen = {(row["bench"], row["source_sha256"]) for row in existing}
    fresh = []
    for row in rows:
        key = (row["bench"], row["source_sha256"])
        if key in seen:
            continue
        seen.add(key)
        fresh.append(row)
    if fresh:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            for row in fresh:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
    return fresh


def _series_key(row: dict) -> tuple:
    return (row["bench"], row.get("scale"), row.get("fingerprint"))


def compute_deltas(rows: list[dict], window: int = DEFAULT_WINDOW) -> list[dict]:
    """Latest-vs-baseline comparison per (bench, scale, fingerprint).

    The baseline for each measure is the median over up to ``window``
    rows preceding the latest.  Series with no history yet get
    ``baseline_runs == 0`` and no per-measure deltas.
    """
    by_series: dict[tuple, list[dict]] = {}
    for row in rows:
        by_series.setdefault(_series_key(row), []).append(row)
    deltas: list[dict] = []
    for key, series in sorted(by_series.items(), key=lambda kv: str(kv[0])):
        latest = series[-1]
        previous = series[:-1][-window:]
        entry = {
            "bench": latest["bench"],
            "scale": latest.get("scale"),
            "fingerprint": latest.get("fingerprint"),
            "git_sha": latest.get("git_sha"),
            "runs": len(series),
            "baseline_runs": len(previous),
            "measures": {},
        }
        if previous:
            for name, value in sorted(latest.get("measures", {}).items()):
                history = [
                    row["measures"][name]
                    for row in previous
                    if name in row.get("measures", {})
                ]
                if not history:
                    continue
                baseline = statistics.median(history)
                entry["measures"][name] = {
                    "value": value,
                    "baseline": baseline,
                    "delta": value - baseline,
                    "ratio": (value / baseline) if baseline else None,
                }
        deltas.append(entry)
    return deltas


def find_regressions(
    deltas: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
    min_delta: float = DEFAULT_MIN_DELTA_S,
) -> list[dict]:
    """Time-like measures whose ratio exceeds ``threshold``.

    A regression needs both a relative breach (ratio > threshold) and
    an absolute one (delta > ``min_delta`` seconds) — tiny spans ratio
    around wildly and must not gate CI.
    """
    regressions: list[dict] = []
    for entry in deltas:
        for name, comparison in entry.get("measures", {}).items():
            if not is_time_measure(name):
                continue
            ratio = comparison.get("ratio")
            if ratio is None:
                continue
            if ratio > threshold and comparison["delta"] > min_delta:
                regressions.append(
                    {
                        "bench": entry["bench"],
                        "scale": entry.get("scale"),
                        "measure": name,
                        **comparison,
                        "threshold": threshold,
                    }
                )
    return regressions
