"""Observability: tracing spans, metrics, run reports, logging.

The telemetry layer under the SNAPS pipeline (see DESIGN.md):

* :mod:`repro.obs.trace` — hierarchical wall-clock (and optional
  ``tracemalloc``) spans with span-tree and JSONL export;
* :mod:`repro.obs.metrics` — thread-safe counters, gauges, and
  fixed-bucket histograms in a :class:`MetricsRegistry`;
* :mod:`repro.obs.report` — run-report artefacts (JSON) and their
  human-readable rendering (the ``repro report`` command);
* :mod:`repro.obs.prom` — Prometheus text exposition (plus a strict
  parser/validator and standard process gauges);
* :mod:`repro.obs.profile` — stdlib-only sampling profiler with
  collapsed-stack (flamegraph) output;
* :mod:`repro.obs.history` — the benchmark history store behind
  ``repro bench-history`` (``BENCH_HISTORY.jsonl``);
* :mod:`repro.obs.logs` — stderr logging setup behind the CLI's
  ``-v/-vv`` flags.

Telemetry crosses process boundaries: a :class:`TraceContext` rides in
worker task payloads, workers answer with detached spans and
:class:`MetricsRegistry` deltas, and the parent stitches both back in
(``Trace.attach`` / ``MetricsRegistry.merge``).  Attaching a
:class:`TraceWriter` streams every closed span to a JSONL trace file;
``SNAPS_OBS=durable`` makes those writes fsync per span.

Everything is optional and zero-cost when off: pipeline entry points
take ``trace=None, metrics=None`` and fall back to no-op instruments,
and ``SNAPS_OBS=off`` disables :func:`default_trace` globally.

``Stopwatch`` and ``Timer`` (the original timing helpers, still used by
the bench harness) are re-exported here for backward compatibility.
"""

from repro.obs.logs import configure, get_logger
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    NULL_METRICS,
    SIMILARITY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    exponential_buckets,
    histogram_quantile,
    linear_buckets,
)
from repro.obs.profile import SamplingProfiler, profile_from_env
from repro.obs.prom import (
    check_exposition,
    parse_prometheus,
    process_gauges,
    render_prometheus,
)
from repro.obs.report import build_report, load_report, render_report, save_report
from repro.obs.trace import (
    Span,
    Trace,
    TraceContext,
    TraceWriter,
    context_span,
    default_trace,
    read_trace_jsonl,
)
from repro.utils.timer import Stopwatch, Timer

__all__ = [
    "Span",
    "Trace",
    "TraceContext",
    "TraceWriter",
    "context_span",
    "default_trace",
    "read_trace_jsonl",
    "histogram_quantile",
    "render_prometheus",
    "parse_prometheus",
    "check_exposition",
    "process_gauges",
    "SamplingProfiler",
    "profile_from_env",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "linear_buckets",
    "exponential_buckets",
    "SIMILARITY_BUCKETS",
    "LATENCY_BUCKETS_S",
    "build_report",
    "render_report",
    "save_report",
    "load_report",
    "configure",
    "get_logger",
    "Stopwatch",
    "Timer",
]
