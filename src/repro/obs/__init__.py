"""Observability: tracing spans, metrics, run reports, logging.

The telemetry layer under the SNAPS pipeline (see DESIGN.md):

* :mod:`repro.obs.trace` — hierarchical wall-clock (and optional
  ``tracemalloc``) spans with span-tree and JSONL export;
* :mod:`repro.obs.metrics` — thread-safe counters, gauges, and
  fixed-bucket histograms in a :class:`MetricsRegistry`;
* :mod:`repro.obs.report` — run-report artefacts (JSON) and their
  human-readable rendering (the ``repro report`` command);
* :mod:`repro.obs.logs` — stderr logging setup behind the CLI's
  ``-v/-vv`` flags.

Everything is optional and zero-cost when off: pipeline entry points
take ``trace=None, metrics=None`` and fall back to no-op instruments,
and ``SNAPS_OBS=off`` disables :func:`default_trace` globally.

``Stopwatch`` and ``Timer`` (the original timing helpers, still used by
the bench harness) are re-exported here for backward compatibility.
"""

from repro.obs.logs import configure, get_logger
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    NULL_METRICS,
    SIMILARITY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    exponential_buckets,
    linear_buckets,
)
from repro.obs.report import build_report, load_report, render_report, save_report
from repro.obs.trace import Span, Trace, default_trace
from repro.utils.timer import Stopwatch, Timer

__all__ = [
    "Span",
    "Trace",
    "default_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "linear_buckets",
    "exponential_buckets",
    "SIMILARITY_BUCKETS",
    "LATENCY_BUCKETS_S",
    "build_report",
    "render_report",
    "save_report",
    "load_report",
    "configure",
    "get_logger",
    "Stopwatch",
    "Timer",
]
