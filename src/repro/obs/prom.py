"""Prometheus text exposition for :class:`MetricsRegistry` snapshots.

:func:`render_prometheus` turns the ``as_dict()`` snapshot of a registry
into the Prometheus text exposition format (version 0.0.4): counters
become ``<prefix>_<name>_total``, gauges plain gauges, histograms the
standard ``_bucket{le=...}``/``_sum``/``_count`` family with cumulative
bucket counts, plus a companion ``_quantile{quantile="..."}`` gauge
family carrying the same bucket-interpolated p50/p95/p99 the run
reports print — one estimator everywhere (satellite: serve and offline
reports must agree).

The module also ships its own :func:`parse_prometheus` /
:func:`check_exposition` pair — a small strict parser used by tests,
the serve smoke, and CI to prove the exposition is well-formed without
needing a real Prometheus binary — and :func:`process_gauges`, the
standard process-level gauges (RSS, open FDs, CPU and uptime seconds)
scraped from ``/proc`` and ``os``/``resource`` with graceful fallbacks
off Linux.

Dotted internal metric names (``serve.search.latency_seconds``) map to
underscored exposition names (``snaps_serve_search_latency_seconds``);
any character outside ``[a-zA-Z0-9_:]`` is an underscore.
"""

from __future__ import annotations

import os
import re
import time

from repro.obs.metrics import histogram_quantile

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "check_exposition",
    "process_gauges",
]

_QUANTILES = (0.5, 0.95, 0.99)
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

# Uptime baseline: first import of the telemetry layer is close enough
# to process start for an observability gauge.
_PROCESS_START_S = time.monotonic()


def _sanitize(name: str, prefix: str) -> str:
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(
    metrics: dict, prefix: str = "snaps", info: dict | None = None
) -> str:
    """The exposition-format text for one registry snapshot.

    ``metrics`` is ``MetricsRegistry.as_dict()`` output (or the
    ``metrics`` block of a saved run report).  ``info`` renders as a
    constant ``<prefix>_info{...} 1`` gauge, the conventional carrier
    for identity labels (snapshot id, git sha, version).
    """
    lines: list[str] = []
    if info:
        name = f"{prefix}_info"
        labels = ",".join(
            f'{_NAME_RE.sub("_", k)}="{_escape_label(str(v))}"'
            for k, v in sorted(info.items())
        )
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{{{labels}}} 1")
    for raw, value in sorted(metrics.get("counters", {}).items()):
        name = _sanitize(raw, prefix) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(value)}")
    for raw, value in sorted(metrics.get("gauges", {}).items()):
        name = _sanitize(raw, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    for raw, data in sorted(metrics.get("histograms", {}).items()):
        name = _sanitize(raw, prefix)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{name}_sum {_format_value(data['sum'])}")
        lines.append(f"{name}_count {data['count']}")
        if data["count"]:
            qname = f"{name}_quantile"
            lines.append(f"# TYPE {qname} gauge")
            for q in _QUANTILES:
                key = f"p{int(q * 100)}"
                estimate = data.get(key)
                if estimate is None:
                    estimate = histogram_quantile(
                        data["buckets"],
                        data["counts"],
                        q,
                        minimum=data.get("min"),
                        maximum=data.get("max"),
                    )
                lines.append(
                    f'{qname}{{quantile="{q:g}"}} {_format_value(estimate)}'
                )
    return "\n".join(lines) + "\n"


def process_gauges() -> dict[str, float]:
    """Standard process-level gauges, keyed by internal metric name."""
    gauges: dict[str, float] = {
        "process.uptime_seconds": time.monotonic() - _PROCESS_START_S,
        "process.cpu_seconds": sum(os.times()[:2]),
    }
    try:
        with open("/proc/self/status", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    gauges["process.rss_bytes"] = float(line.split()[1]) * 1024.0
                    break
    except OSError:  # pragma: no cover - non-Linux
        pass
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        gauges["process.max_rss_bytes"] = float(rss_kb) * 1024.0
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        pass
    try:
        gauges["process.open_fds"] = float(len(os.listdir("/proc/self/fd")))
    except OSError:  # pragma: no cover - non-Linux
        pass
    return gauges


# ----------------------------------------------------------------------
# Parsing / validation (test- and smoke-facing)
# ----------------------------------------------------------------------


def _family_of(sample_name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{family: {"type", "samples"}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``
    tuples.  Raises ``ValueError`` on any line that is neither a
    comment nor a well-formed sample.
    """
    families: dict[str, dict] = {}
    declared: dict[str, str] = {}
    for n, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                raise ValueError(f"line {n}: malformed TYPE comment: {line!r}")
            declared[parts[2]] = parts[3]
            families.setdefault(parts[2], {"type": parts[3], "samples": []})
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {n}: malformed sample: {line!r}")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for lm in _LABEL_RE.finditer(raw_labels):
                labels[lm.group(1)] = (
                    lm.group(2)
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
            if not labels:
                raise ValueError(f"line {n}: malformed labels: {line!r}")
        raw_value = match.group("value")
        if raw_value in ("+Inf", "Inf"):
            value = float("inf")
        elif raw_value == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(raw_value)
            except ValueError as exc:
                raise ValueError(f"line {n}: bad value: {line!r}") from exc
        sample_name = match.group("name")
        family_name = _family_of(sample_name)
        # A bare gauge named like a suffix form should fall back to its
        # own declared family if one exists.
        if sample_name in declared:
            family_name = sample_name
        family = families.setdefault(
            family_name, {"type": declared.get(family_name), "samples": []}
        )
        family["samples"].append((sample_name, labels, value))
    return families


def check_exposition(text: str) -> dict:
    """Validate exposition text beyond mere parseability.

    Checks, raising ``ValueError`` on the first violation:

    * every sample belongs to a family with a ``# TYPE`` declared
      *before* its first sample;
    * no duplicate ``(sample name, labels)`` series;
    * histogram buckets are cumulative (non-decreasing in ``le`` order),
      end in ``le="+Inf"``, and the +Inf count equals ``_count``.

    Returns the parsed families (so callers can make content
    assertions on the same pass).
    """
    families = parse_prometheus(text)
    # TYPE-before-sample ordering.
    seen_types: set[str] = set()
    for n, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if line.startswith("# TYPE "):
            seen_types.add(line.split()[2])
        elif line and not line.startswith("#"):
            match = _SAMPLE_RE.match(line)
            sample_name = match.group("name")
            family = (
                sample_name if sample_name in seen_types else _family_of(sample_name)
            )
            if family not in seen_types:
                raise ValueError(
                    f"line {n}: sample {sample_name!r} before TYPE for {family!r}"
                )
    seen_series: set[tuple] = set()
    for family_name, family in families.items():
        for sample_name, labels, _ in family["samples"]:
            series = (sample_name, tuple(sorted(labels.items())))
            if series in seen_series:
                raise ValueError(f"duplicate series {series!r}")
            seen_series.add(series)
        if family["type"] != "histogram":
            continue
        buckets = [
            (labels, value)
            for sample_name, labels, value in family["samples"]
            if sample_name == f"{family_name}_bucket"
        ]
        counts = [
            value
            for sample_name, _, value in family["samples"]
            if sample_name == f"{family_name}_count"
        ]
        if not buckets:
            raise ValueError(f"histogram {family_name!r} has no buckets")
        bounds = []
        for labels, value in buckets:
            le = labels.get("le")
            if le is None:
                raise ValueError(f"histogram {family_name!r} bucket missing le")
            bounds.append((float("inf") if le == "+Inf" else float(le), value))
        ordered = sorted(bounds, key=lambda item: item[0])
        values = [value for _, value in ordered]
        if values != sorted(values):
            raise ValueError(f"histogram {family_name!r} buckets not cumulative")
        if ordered[-1][0] != float("inf"):
            raise ValueError(f"histogram {family_name!r} missing +Inf bucket")
        if counts and ordered[-1][1] != counts[0]:
            raise ValueError(
                f"histogram {family_name!r} +Inf bucket != _count "
                f"({ordered[-1][1]} vs {counts[0]})"
            )
    return families
