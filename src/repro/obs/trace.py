"""Hierarchical tracing spans for the resolver and query pipelines.

A :class:`Trace` collects a tree of named :class:`Span` objects, one per
``with trace.span("resolve/blocking"):`` block.  Spans nest naturally —
a span opened while another is active becomes its child — so a resolver
run exports as the phase tree the paper's Tables 5/6 report on
(blocking → graph → bootstrap → merge → refine).

Each span records wall-clock seconds and, when the trace is built with
``capture_memory=True``, the ``tracemalloc`` allocation delta and traced
peak at span exit.  Traces export as a nested dict tree (:meth:`Trace.tree`)
and as JSONL, one span per line (:meth:`Trace.to_jsonl` /
:meth:`Trace.from_jsonl`), so run artefacts can be diffed and aggregated
across runs.

Tracing must cost nothing when off: :meth:`Trace.disabled` returns a
trace whose ``span()`` hands back one shared no-op context manager, and
``default_trace()`` honours the ``SNAPS_OBS=off`` environment switch.

**Cross-process propagation.**  Every enabled trace owns a ``trace_id``
and assigns each span a ``span_id``/``parent_id`` pair.
:meth:`Trace.context` captures the current position as a serialisable
:class:`TraceContext` (trace id, parent span id, baggage) that travels
inside worker task payloads; workers build detached spans against it
with :func:`context_span` and ship them back as dicts, which the parent
stitches into its live tree via :meth:`Trace.attach` — so a ``--workers
4`` resolve exports one coherent span tree.

**Streaming trace files.**  Attaching a :class:`TraceWriter` makes the
trace append one JSON event per *closed* span to a JSONL file as the
run progresses (flat events linked by ``parent_id``, unlike
:meth:`Trace.to_jsonl`'s one-line-per-root format).  Each line is
written and flushed atomically so a crash cannot truncate an already
recorded span; ``SNAPS_OBS=durable`` additionally fsyncs per span.
:func:`read_trace_jsonl` rebuilds the tree from such a file, tolerating
a torn final line left by a hard kill.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from pathlib import Path
from typing import Iterator

__all__ = [
    "Span",
    "Trace",
    "TraceContext",
    "TraceWriter",
    "context_span",
    "default_trace",
    "read_trace_jsonl",
]

_OBS_ENV_VAR = "SNAPS_OBS"


class Span:
    """One timed node in the trace tree."""

    __slots__ = (
        "name",
        "elapsed",
        "children",
        "mem_alloc_bytes",
        "mem_peak_bytes",
        "error",
        "span_id",
        "parent_id",
        "attrs",
        "_start",
        "_mem_start",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed = 0.0
        self.children: list[Span] = []
        # Allocation delta across the span and traced peak at exit; None
        # unless the owning trace captures memory.
        self.mem_alloc_bytes: int | None = None
        self.mem_peak_bytes: int | None = None
        # Name of the exception type that escaped the span, if any.
        self.error: str | None = None
        # Identity for cross-process stitching and streamed trace files;
        # assigned by the owning Trace (or context_span), else None.
        self.span_id: str | None = None
        self.parent_id: str | None = None
        # Free-form annotations (worker pid, chunk index, ...).
        self.attrs: dict | None = None
        self._start = 0.0
        self._mem_start = 0

    def as_dict(self) -> dict:
        """This span and its subtree as plain JSON-serialisable dicts."""
        node: dict = {"name": self.name, "elapsed_s": round(self.elapsed, 6)}
        if self.span_id is not None:
            node["span_id"] = self.span_id
        if self.mem_alloc_bytes is not None:
            node["mem_alloc_bytes"] = self.mem_alloc_bytes
            node["mem_peak_bytes"] = self.mem_peak_bytes
        if self.error is not None:
            node["error"] = self.error
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node

    def as_event(self, trace_id: str) -> dict:
        """This span alone as a flat trace-file event (no children)."""
        event = self.as_dict()
        event.pop("children", None)
        event["trace_id"] = trace_id
        if self.parent_id is not None:
            event["parent_id"] = self.parent_id
        return event

    @classmethod
    def from_dict(cls, node: dict) -> "Span":
        span = cls(node["name"])
        span.elapsed = float(node["elapsed_s"])
        span.mem_alloc_bytes = node.get("mem_alloc_bytes")
        span.mem_peak_bytes = node.get("mem_peak_bytes")
        span.error = node.get("error")
        span.span_id = node.get("span_id")
        span.parent_id = node.get("parent_id")
        span.attrs = node.get("attrs")
        span.children = [cls.from_dict(c) for c in node.get("children", ())]
        return span


class TraceContext:
    """Serialisable position in a trace, for crossing process boundaries.

    Carries the owning ``trace_id``, the ``parent_span_id`` the remote
    work should hang under, and free-form string ``baggage``.  Travels
    as a plain dict inside worker task payloads (:meth:`to_dict` /
    :meth:`from_dict`), so it survives any pickle/json hop.
    """

    __slots__ = ("trace_id", "parent_span_id", "baggage")

    def __init__(
        self,
        trace_id: str,
        parent_span_id: str | None = None,
        baggage: dict | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.baggage = dict(baggage or {})

    def to_dict(self) -> dict:
        payload: dict = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            payload["parent_span_id"] = self.parent_span_id
        if self.baggage:
            payload["baggage"] = dict(self.baggage)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        return cls(
            trace_id=payload["trace_id"],
            parent_span_id=payload.get("parent_span_id"),
            baggage=payload.get("baggage"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"parent_span_id={self.parent_span_id!r}, baggage={self.baggage!r})"
        )


# Per-process sequence for spans created against a TraceContext; with the
# pid baked into the span id this makes worker span ids globally unique.
_CTX_SEQ = itertools.count(1)


def context_span(ctx: dict | TraceContext | None, name: str, **attrs) -> Span | None:
    """A detached span created in a worker against a shipped context.

    Returns ``None`` when ``ctx`` is ``None`` (tracing off in the
    parent).  The caller owns timing: set ``span.elapsed`` before
    serialising with ``span.as_dict()`` and shipping it home, where
    :meth:`Trace.attach` folds it into the parent tree.
    """
    if ctx is None:
        return None
    if isinstance(ctx, TraceContext):
        ctx = ctx.to_dict()
    span = Span(name)
    pid = os.getpid()
    span.span_id = f"{ctx['trace_id']}.p{pid:x}.{next(_CTX_SEQ)}"
    span.parent_id = ctx.get("parent_span_id")
    span.attrs = {"pid": pid, **attrs}
    return span


class _SpanContext:
    """Context manager entering/exiting one span of a live trace."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", span: Span) -> None:
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        if self._trace.capture_memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
            span._mem_start = tracemalloc.get_traced_memory()[0]
        span._start = time.perf_counter()
        return span

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        span = self._span
        span.elapsed += time.perf_counter() - span._start
        if self._trace.capture_memory:
            import tracemalloc

            current, peak = tracemalloc.get_traced_memory()
            span.mem_alloc_bytes = current - span._mem_start
            span.mem_peak_bytes = peak
        if exc_type is not None:
            span.error = getattr(exc_type, "__name__", str(exc_type))
        self._trace._pop(span)


class _NullSpanContext:
    """Shared no-op context manager for disabled traces."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullSpanContext()


class TraceWriter:
    """Streams closed spans of one trace to a JSONL file.

    The file is truncated when the writer is created, then each closed
    span is appended as one flat event line.  Every write opens the file
    in append mode, writes the whole line, flushes, and closes — no
    long-lived handle to leak through forks or lose on crash.  With
    ``durable=True`` (default when ``SNAPS_OBS=durable``) each line is
    also fsynced, so even a hard kill leaves every previously closed
    span on disk and at worst one torn final line.
    """

    __slots__ = ("path", "durable")

    def __init__(self, path: str | os.PathLike, durable: bool | None = None) -> None:
        self.path = Path(path)
        if durable is None:
            durable = os.environ.get(_OBS_ENV_VAR, "").lower() == "durable"
        self.durable = durable
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")

    def write(self, event: dict) -> None:
        line = json.dumps(event) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())


class Trace:
    """A tree of timed spans for one pipeline run.

    >>> trace = Trace()
    >>> with trace.span("resolve"):
    ...     with trace.span("blocking"):
    ...         pass
    >>> [s.name for s in trace.roots]
    ['resolve']
    >>> [s.name for s in trace.roots[0].children]
    ['blocking']
    """

    def __init__(
        self,
        capture_memory: bool = False,
        enabled: bool = True,
        writer: TraceWriter | None = None,
    ) -> None:
        self.capture_memory = capture_memory
        self.enabled = enabled
        # Disabled traces never mint ids: keeps Trace.disabled() free.
        self.trace_id = uuid.uuid4().hex[:12] if enabled else ""
        self.writer = writer
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._seq = itertools.count(1)

    @classmethod
    def disabled(cls) -> "Trace":
        """A trace whose spans compile to a shared no-op context."""
        return cls(enabled=False)

    def span(self, name: str) -> _SpanContext | _NullSpanContext:
        """Context manager timing one named span under the current one."""
        if not self.enabled:
            return _NULL_CONTEXT
        span = Span(name)
        span.span_id = f"{self.trace_id}.{next(self._seq)}"
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def annotate(self, **attrs) -> None:
        """Attach key/value attributes to the currently open span."""
        if not self.enabled or not self._stack:
            return
        span = self._stack[-1]
        if span.attrs is None:
            span.attrs = {}
        span.attrs.update(attrs)

    def context(self, **baggage) -> TraceContext | None:
        """The current position as a shippable context (None if disabled)."""
        if not self.enabled:
            return None
        parent = self._stack[-1].span_id if self._stack else None
        return TraceContext(self.trace_id, parent, baggage or None)

    def attach(self, node: dict | Span, parent: Span | None = None) -> Span | None:
        """Graft a span that was built elsewhere (a worker) into this tree.

        ``node`` is a ``Span`` or its ``as_dict()`` form.  It becomes a
        child of ``parent`` (default: the currently open span, else a new
        root), its ``parent_id`` is rewritten to match, and — like
        locally closed spans — it is appended to the trace file when a
        writer is attached.  Returns the grafted span, or ``None`` when
        the trace is disabled.
        """
        if not self.enabled or node is None:
            return None
        span = Span.from_dict(node) if isinstance(node, dict) else node
        if parent is None:
            parent = self._stack[-1] if self._stack else None
        if parent is not None:
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            span.parent_id = None
            self.roots.append(span)
        for grafted in _walk_span(span):
            # as_dict() does not carry parent links, so re-derive them for
            # any nested children before the events hit the trace file.
            for child in grafted.children:
                if child.parent_id is None:
                    child.parent_id = grafted.span_id
            if self.writer is not None:
                self.writer.write(grafted.as_event(self.trace_id))
        return span

    def _pop(self, span: Span) -> None:
        # Exception-safe unwind: drop everything above the closing span,
        # so an escaped exception cannot corrupt later nesting.
        while self._stack:
            if self._stack.pop() is span:
                break
        if self.writer is not None:
            self.writer.write(span.as_event(self.trace_id))

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------

    def tree(self) -> list[dict]:
        """The whole trace as a list of nested root dicts."""
        return [root.as_dict() for root in self.roots]

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first (depth, span) pairs over the whole trace."""
        stack: list[tuple[int, Span]] = [(0, r) for r in reversed(self.roots)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            stack.extend((depth + 1, c) for c in reversed(span.children))

    def find(self, name: str) -> Span | None:
        """First span called ``name`` in depth-first order, or None."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def total(self) -> float:
        """Wall-clock seconds summed over root spans."""
        return sum(root.elapsed for root in self.roots)

    def to_jsonl(self) -> str:
        """One JSON line per *root* span (children nested inside)."""
        return "\n".join(json.dumps(root.as_dict()) for root in self.roots)

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Rebuild a (finished) trace from :meth:`to_jsonl` output."""
        trace = cls()
        for line in text.splitlines():
            line = line.strip()
            if line:
                trace.roots.append(Span.from_dict(json.loads(line)))
        return trace


def _walk_span(span: Span) -> Iterator[Span]:
    stack = [span]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def read_trace_jsonl(path: str | os.PathLike) -> Trace:
    """Rebuild a trace from a :class:`TraceWriter` event file.

    Events are flat (no nested children) and may arrive child-before-
    parent — worker spans are streamed at attach time, while their
    enclosing local span is only written when it closes — so linking is
    a second pass over all parsed events.  A torn *final* line (crash
    mid-write) is ignored; a torn line anywhere else is a real error.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    events: list[dict] = []
    for n, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if n == len(lines) - 1:
                break
            raise
    trace = Trace()
    trace.trace_id = events[0]["trace_id"] if events else ""
    by_id = {}
    for event in events:
        span = Span.from_dict(event)
        span.parent_id = event.get("parent_id")
        if span.span_id is not None:
            by_id[span.span_id] = span
    for span in by_id.values():
        parent = by_id.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            parent.children.append(span)
        else:
            trace.roots.append(span)
    return trace


def default_trace(capture_memory: bool = False) -> Trace:
    """A fresh enabled trace, or a disabled one under ``SNAPS_OBS=off``."""
    if os.environ.get(_OBS_ENV_VAR, "").lower() in ("off", "0", "false"):
        return Trace.disabled()
    return Trace(capture_memory=capture_memory)
