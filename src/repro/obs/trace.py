"""Hierarchical tracing spans for the resolver and query pipelines.

A :class:`Trace` collects a tree of named :class:`Span` objects, one per
``with trace.span("resolve/blocking"):`` block.  Spans nest naturally —
a span opened while another is active becomes its child — so a resolver
run exports as the phase tree the paper's Tables 5/6 report on
(blocking → graph → bootstrap → merge → refine).

Each span records wall-clock seconds and, when the trace is built with
``capture_memory=True``, the ``tracemalloc`` allocation delta and traced
peak at span exit.  Traces export as a nested dict tree (:meth:`Trace.tree`)
and as JSONL, one span per line (:meth:`Trace.to_jsonl` /
:meth:`Trace.from_jsonl`), so run artefacts can be diffed and aggregated
across runs.

Tracing must cost nothing when off: :meth:`Trace.disabled` returns a
trace whose ``span()`` hands back one shared no-op context manager, and
``default_trace()`` honours the ``SNAPS_OBS=off`` environment switch.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterator

__all__ = ["Span", "Trace", "default_trace"]

_OBS_ENV_VAR = "SNAPS_OBS"


class Span:
    """One timed node in the trace tree."""

    __slots__ = (
        "name",
        "elapsed",
        "children",
        "mem_alloc_bytes",
        "mem_peak_bytes",
        "error",
        "_start",
        "_mem_start",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed = 0.0
        self.children: list[Span] = []
        # Allocation delta across the span and traced peak at exit; None
        # unless the owning trace captures memory.
        self.mem_alloc_bytes: int | None = None
        self.mem_peak_bytes: int | None = None
        # Name of the exception type that escaped the span, if any.
        self.error: str | None = None
        self._start = 0.0
        self._mem_start = 0

    def as_dict(self) -> dict:
        """This span and its subtree as plain JSON-serialisable dicts."""
        node: dict = {"name": self.name, "elapsed_s": round(self.elapsed, 6)}
        if self.mem_alloc_bytes is not None:
            node["mem_alloc_bytes"] = self.mem_alloc_bytes
            node["mem_peak_bytes"] = self.mem_peak_bytes
        if self.error is not None:
            node["error"] = self.error
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node

    @classmethod
    def from_dict(cls, node: dict) -> "Span":
        span = cls(node["name"])
        span.elapsed = float(node["elapsed_s"])
        span.mem_alloc_bytes = node.get("mem_alloc_bytes")
        span.mem_peak_bytes = node.get("mem_peak_bytes")
        span.error = node.get("error")
        span.children = [cls.from_dict(c) for c in node.get("children", ())]
        return span


class _SpanContext:
    """Context manager entering/exiting one span of a live trace."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", span: Span) -> None:
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        if self._trace.capture_memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
            span._mem_start = tracemalloc.get_traced_memory()[0]
        span._start = time.perf_counter()
        return span

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        span = self._span
        span.elapsed += time.perf_counter() - span._start
        if self._trace.capture_memory:
            import tracemalloc

            current, peak = tracemalloc.get_traced_memory()
            span.mem_alloc_bytes = current - span._mem_start
            span.mem_peak_bytes = peak
        if exc_type is not None:
            span.error = getattr(exc_type, "__name__", str(exc_type))
        self._trace._pop(span)


class _NullSpanContext:
    """Shared no-op context manager for disabled traces."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullSpanContext()


class Trace:
    """A tree of timed spans for one pipeline run.

    >>> trace = Trace()
    >>> with trace.span("resolve"):
    ...     with trace.span("blocking"):
    ...         pass
    >>> [s.name for s in trace.roots]
    ['resolve']
    >>> [s.name for s in trace.roots[0].children]
    ['blocking']
    """

    def __init__(self, capture_memory: bool = False, enabled: bool = True) -> None:
        self.capture_memory = capture_memory
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @classmethod
    def disabled(cls) -> "Trace":
        """A trace whose spans compile to a shared no-op context."""
        return cls(enabled=False)

    def span(self, name: str) -> _SpanContext | _NullSpanContext:
        """Context manager timing one named span under the current one."""
        if not self.enabled:
            return _NULL_CONTEXT
        span = Span(name)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _pop(self, span: Span) -> None:
        # Exception-safe unwind: drop everything above the closing span,
        # so an escaped exception cannot corrupt later nesting.
        while self._stack:
            if self._stack.pop() is span:
                break

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------

    def tree(self) -> list[dict]:
        """The whole trace as a list of nested root dicts."""
        return [root.as_dict() for root in self.roots]

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first (depth, span) pairs over the whole trace."""
        stack: list[tuple[int, Span]] = [(0, r) for r in reversed(self.roots)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            stack.extend((depth + 1, c) for c in reversed(span.children))

    def find(self, name: str) -> Span | None:
        """First span called ``name`` in depth-first order, or None."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def total(self) -> float:
        """Wall-clock seconds summed over root spans."""
        return sum(root.elapsed for root in self.roots)

    def to_jsonl(self) -> str:
        """One JSON line per *root* span (children nested inside)."""
        return "\n".join(json.dumps(root.as_dict()) for root in self.roots)

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Rebuild a (finished) trace from :meth:`to_jsonl` output."""
        trace = cls()
        for line in text.splitlines():
            line = line.strip()
            if line:
                trace.roots.append(Span.from_dict(json.loads(line)))
        return trace


def default_trace(capture_memory: bool = False) -> Trace:
    """A fresh enabled trace, or a disabled one under ``SNAPS_OBS=off``."""
    if os.environ.get(_OBS_ENV_VAR, "").lower() in ("off", "0", "false"):
        return Trace.disabled()
    return Trace(capture_memory=capture_memory)
