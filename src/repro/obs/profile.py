"""Stdlib-only sampling profiler with flamegraph-compatible output.

:class:`SamplingProfiler` runs a daemon thread that snapshots every
thread's Python stack via ``sys._current_frames()`` at a fixed interval
and accumulates counts per unique stack.  A thread-based sampler is
used instead of ``signal.setitimer`` because signals are only delivered
to the main thread — the serving tier and the process-pool parent both
do their interesting work off the main thread, and a thread sampler
sees every thread for free (at the cost of a little timer jitter, which
is irrelevant at the default 5 ms interval).

Output comes in two shapes:

* :meth:`collapsed` — Brendan Gregg collapsed-stack lines
  (``mod.fn;mod.fn;mod.fn <count>``), directly consumable by
  ``flamegraph.pl`` / speedscope;
* :meth:`top` / :meth:`as_dict` — per-frame self/cumulative seconds
  (sample share × wall time), the top-N table the run report prints.

Activation is opt-in via ``--profile`` on the CLI or the
``SNAPS_PROFILE`` environment variable (``1``/``true`` for the default
interval, a float for a custom interval in seconds) — see
:func:`profile_from_env`.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from pathlib import Path

__all__ = ["SamplingProfiler", "profile_from_env"]

_PROFILE_ENV_VAR = "SNAPS_PROFILE"
DEFAULT_INTERVAL_S = 0.005


class SamplingProfiler:
    """Samples Python stacks on a timer; start()/stop() bracket a run."""

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s
        self.stacks: Counter[tuple[str, ...]] = Counter()
        self.samples = 0
        self.elapsed_s = 0.0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_at = 0.0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="snaps-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.elapsed_s += time.perf_counter() - self._started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            for thread_id, frame in sys._current_frames().items():
                if thread_id == own_id:
                    continue
                stack: list[str] = []
                while frame is not None:
                    code = frame.f_code
                    module = frame.f_globals.get("__name__", "?")
                    stack.append(f"{module}.{code.co_name}")
                    frame = frame.f_back
                stack.reverse()  # root → leaf, the collapsed-stack order
                self.stacks[tuple(stack)] += 1
                self.samples += 1

    # -- output ---------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack lines, ``frame;frame;frame count``."""
        return "\n".join(
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.stacks.items())
        )

    def write_collapsed(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = self.collapsed()
        path.write_text(text + "\n" if text else "")
        return path

    def top(self, n: int = 15) -> list[dict]:
        """Top-``n`` frames by self time (seconds estimated from share).

        ``self`` counts samples where the frame is the leaf; ``cum``
        counts samples where it appears anywhere in the stack (once per
        sample, so recursion doesn't double-count).
        """
        if not self.samples:
            return []
        self_counts: Counter[str] = Counter()
        cum_counts: Counter[str] = Counter()
        for stack, count in self.stacks.items():
            self_counts[stack[-1]] += count
            for frame in set(stack):
                cum_counts[frame] += count
        per_sample = self.elapsed_s / self.samples if self.samples else 0.0
        return [
            {
                "frame": frame,
                "self_samples": count,
                "self_s": round(count * per_sample, 6),
                "cum_samples": cum_counts[frame],
                "cum_s": round(cum_counts[frame] * per_sample, 6),
            }
            for frame, count in self_counts.most_common(n)
        ]

    def as_dict(self, top_n: int = 15) -> dict:
        """Run-report block: sample counts plus the top-N table."""
        return {
            "interval_s": self.interval_s,
            "samples": self.samples,
            "elapsed_s": round(self.elapsed_s, 6),
            "unique_stacks": len(self.stacks),
            "top": self.top(top_n),
        }


def profile_from_env() -> SamplingProfiler | None:
    """A profiler when ``SNAPS_PROFILE`` asks for one, else ``None``.

    ``SNAPS_PROFILE=1``/``true`` uses the default interval; a float
    value is a custom interval in seconds; anything else is off.
    """
    raw = os.environ.get(_PROFILE_ENV_VAR, "").strip().lower()
    if not raw or raw in ("0", "false", "off"):
        return None
    if raw in ("1", "true", "on"):
        return SamplingProfiler()
    try:
        return SamplingProfiler(interval_s=float(raw))
    except ValueError:
        return None
