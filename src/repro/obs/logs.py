"""Logging setup for the ``repro`` package.

The library logs under the ``repro.*`` namespace and stays silent by
default (standard library etiquette).  The CLI's ``-v/-vv`` flags call
:func:`configure` to attach one stderr handler to the package root
logger: ``-v`` shows per-phase progress (INFO), ``-vv`` adds per-group
decisions (DEBUG).  Re-configuring replaces the handler rather than
stacking duplicates, so tests and long-lived processes can adjust
verbosity freely.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["configure", "get_logger"]

_ROOT_NAME = "repro"
_HANDLER_FLAG = "_repro_obs_handler"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_LEVELS = {0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}


def configure(verbosity: int = 0, stream: IO[str] | None = None) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger; returns it.

    ``verbosity`` 0 → WARNING, 1 → INFO, 2+ → DEBUG.
    """
    logger = logging.getLogger(_ROOT_NAME)
    level = _LEVELS.get(min(max(verbosity, 0), 2), logging.DEBUG)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the package namespace: ``get_logger("core.resolver")``."""
    if name.startswith(_ROOT_NAME + ".") or name == _ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
