"""Command-line interface: simulate → resolve → query/serve → pedigree.

The CLI mirrors the SNAPS deployment split: ``resolve`` runs the offline
phase and saves a pedigree graph; ``query`` and ``pedigree`` answer one
request per process from that file, and ``serve`` keeps the graph and
indexes loaded to answer many over HTTP (see ``repro.serve``).
``simulate`` and ``anonymise`` manage datasets.

Examples::

    python -m repro simulate --dataset ios --scale 0.1 --out data/ios
    python -m repro resolve  --data data/ios --out data/ios.graph.json
    python -m repro query    --graph data/ios.graph.json \
        --first-name mary --surname macdonald --top 5
    python -m repro serve    --graph data/ios.graph.json --port 8080
    python -m repro pedigree --graph data/ios.graph.json \
        --entity 42 --format gedcom
    python -m repro anonymise --data data/ios --out data/ios-anon

Snapshots (``repro.store``) persist the complete offline output so the
online commands warm-start without rebuilding anything, and new data
batches fold in incrementally::

    python -m repro resolve  --data data/ios --snapshot-out data/store
    python -m repro serve    --snapshot data/store --port 8080
    python -m repro query    --snapshot data/store \
        --first-name mary --surname macdonald
    python -m repro snapshot ingest --store data/store --data data/delta
    python -m repro snapshot log    --store data/store
    python -m repro snapshot verify --store data/store

Streaming (``repro.stream``) keeps a replica fresh continuously: spool
micro-batch CSV pairs into a directory and ``stream`` validates,
ingests, and promotes each one into the serving process with zero
downtime (crash-safe; re-running resumes exactly once)::

    python -m repro serve  --snapshot data/store --port 8080
    python -m repro stream --spool data/spool --store data/store \
        --serve-url http://localhost:8080

Telemetry: ``resolve`` and ``query`` accept ``--trace`` (print the span
tree after the run) and ``--metrics-out run.json`` (write the full run
report); ``report`` renders a saved report; ``-v/-vv`` before the
subcommand turns on INFO/DEBUG logging on stderr::

    python -m repro -v resolve --data data/ios --out ios.graph.json \
        --trace --metrics-out run.json
    python -m repro report run.json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SNAPS family-pedigree search (EDBT 2022 reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-v INFO, -vv DEBUG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_telemetry_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace", action="store_true",
            help="print the span tree and metrics after the run",
        )
        command.add_argument(
            "--metrics-out", metavar="PATH",
            help="write the run report (spans + metrics) as JSON",
        )
        command.add_argument(
            "--trace-out", metavar="PATH",
            help="stream every closed span to a JSONL trace file as the "
            "run progresses (crash-safe with SNAPS_OBS=durable)",
        )
        command.add_argument(
            "--trace-memory", action="store_true",
            help="also capture tracemalloc peaks per span (slower)",
        )
        command.add_argument(
            "--profile", action="store_true",
            help="sample Python stacks during the run (also via "
            "SNAPS_PROFILE=1) and add a top-N table to the run report",
        )
        command.add_argument(
            "--profile-out", metavar="PATH",
            help="write collapsed-stack (flamegraph) profile output here",
        )

    simulate = sub.add_parser("simulate", help="generate a synthetic dataset")
    simulate.add_argument(
        "--dataset", choices=("ios", "kil", "tiny", "ios-census"), default="tiny"
    )
    simulate.add_argument("--scale", type=float, default=0.1)
    simulate.add_argument("--seed", type=int, default=11)
    simulate.add_argument("--out", required=True, help="output CSV stem")

    def add_validation_flags(command: argparse.ArgumentParser) -> None:
        mode = command.add_mutually_exclusive_group()
        mode.add_argument(
            "--strict", action="store_true",
            help="fail fast on any dirty input row (the default)",
        )
        mode.add_argument(
            "--quarantine", action="store_true",
            help="drop dirty certificates/records, report them, continue",
        )
        command.add_argument(
            "--quarantine-report", metavar="PATH",
            help="write the per-row quarantine report as JSONL",
        )

    def add_supervise_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--task-timeout", type=float, default=None, metavar="SECONDS",
            help="per-task deadline for pool workers; a task running "
            "longer is killed and re-executed (default: no deadline; "
            "also via SNAPS_TASK_TIMEOUT)",
        )
        command.add_argument(
            "--task-retries", type=int, default=None, metavar="K",
            help="re-execution budget per crashed/hung/failed task "
            "before it is quarantined (default: 2; also via "
            "SNAPS_TASK_RETRIES)",
        )
        command.add_argument(
            "--quarantine-dir", metavar="DIR",
            help="where poison-task artifacts (tasks.jsonl) are written "
            "(default: <tmp>/snaps-quarantine; also via "
            "SNAPS_QUARANTINE_DIR)",
        )

    resolve = sub.add_parser("resolve", help="run offline ER, save pedigree graph")
    resolve.add_argument("--data", help="dataset CSV stem")
    resolve.add_argument("--out", help="pedigree graph JSON path")
    resolve.add_argument(
        "--snapshot-out", metavar="DIR",
        help="also persist the full offline output (clusters, graph, "
        "indexes) as a snapshot in this store directory",
    )
    resolve.add_argument("--merge-threshold", type=float, default=0.85)
    resolve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="parallel resolution workers: 0 forces the serial path, "
        "N >= 1 forces the parallel path with N processes "
        "(default: auto — parallel on large datasets only)",
    )
    resolve.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the resolve into N shards, each resolved in an "
        "isolated process; output is byte-identical to the serial path, "
        "and --snapshot-out snapshots gain a shard sidecar so later "
        "ingests re-resolve only dirty shards",
    )
    resolve.add_argument("--no-propagation", action="store_true")
    resolve.add_argument("--no-ambiguity", action="store_true")
    resolve.add_argument("--no-relational", action="store_true")
    resolve.add_argument("--no-refinement", action="store_true")
    checkpointing = resolve.add_mutually_exclusive_group()
    checkpointing.add_argument(
        "--checkpoint", metavar="DIR",
        help="checkpoint every completed phase into DIR so an "
        "interrupted run can continue with --resume",
    )
    checkpointing.add_argument(
        "--resume", metavar="DIR",
        help="continue an interrupted run from its checkpoint DIR "
        "(dataset and flags are restored from the checkpoint)",
    )
    add_validation_flags(resolve)
    add_supervise_flags(resolve)
    add_telemetry_flags(resolve)

    query = sub.add_parser("query", help="search the pedigree graph")
    query_source = query.add_mutually_exclusive_group(required=True)
    query_source.add_argument("--graph", help="pedigree graph JSON path")
    query_source.add_argument(
        "--snapshot", metavar="DIR",
        help="warm-start from a snapshot store (prebuilt indexes)",
    )
    query.add_argument("--first-name", required=True)
    query.add_argument("--surname", required=True)
    query.add_argument("--gender", choices=("m", "f"))
    query.add_argument("--year-from", type=int)
    query.add_argument("--year-to", type=int)
    query.add_argument("--parish")
    query.add_argument("--record-type", choices=("birth", "death"))
    query.add_argument("--top", type=int, default=10)
    query.add_argument(
        "--geo", action="store_true",
        help="score parishes by geographic distance instead of spelling",
    )
    query.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="result rendering (json matches the /v1/search payload)",
    )
    add_telemetry_flags(query)

    serve = sub.add_parser(
        "serve", help="serve queries over HTTP from a loaded pedigree graph"
    )
    serve_source = serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument("--graph", help="pedigree graph JSON path")
    serve_source.add_argument(
        "--snapshot", metavar="DIR",
        help="warm-start from a snapshot store: boot without rebuilding "
        "any index",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache entries (0 disables caching)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=300.0, metavar="SECONDS",
        help="result-cache entry lifetime (0 = keep forever)",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=8,
        help="search/pedigree requests executing at once",
    )
    serve.add_argument(
        "--max-pending", type=int, default=32,
        help="requests allowed to queue for a slot before 429s",
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=1.0, metavar="SECONDS",
        help="longest a request may wait for a slot before a 503",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-request deadline (0 = no deadline)",
    )
    serve.add_argument(
        "--geo", action="store_true",
        help="score parishes by geographic distance instead of spelling",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive backend failures that open a circuit",
    )
    serve.add_argument(
        "--breaker-reset", type=float, default=30.0, metavar="SECONDS",
        help="seconds an open circuit waits before a recovery probe",
    )
    serve.add_argument(
        "--slo-deadline", type=float, default=0.5, metavar="SECONDS",
        help="latency objective deadline for search/pedigree requests",
    )
    serve.add_argument(
        "--slo-latency-target", type=float, default=0.99,
        help="fraction of read requests that must meet the deadline",
    )
    serve.add_argument(
        "--slo-availability", type=float, default=0.999,
        help="fraction of requests that must not be server errors",
    )
    serve.add_argument(
        "--slo-window", type=float, default=300.0, metavar="SECONDS",
        help="rolling window the SLO burn rates are computed over",
    )
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="pre-fork N worker processes sharing one memory-mapped "
        "snapshot and one listening socket (requires --snapshot; "
        "0 = classic single-process threaded server)",
    )
    serve.add_argument(
        "--prefork", action="store_true",
        help="shorthand for --workers <cpu count>",
    )
    serve.add_argument(
        "--reuse-port", action="store_true",
        help="per-worker SO_REUSEPORT sockets instead of one inherited "
        "listening fd (prefork mode only)",
    )
    serve.add_argument(
        "--run-dir", metavar="DIR",
        help="prefork scratch directory for heartbeats/control/metrics "
        "files (default: private tempdir)",
    )
    add_telemetry_flags(serve)

    report = sub.add_parser("report", help="render a saved run report")
    report.add_argument("report", help="path to a --metrics-out JSON file")
    report.add_argument(
        "--format", choices=("text", "prom"), default="text",
        help="text tables (default) or Prometheus exposition format",
    )

    bench_history = sub.add_parser(
        "bench-history",
        help="fold benchmark run reports into BENCH_HISTORY.jsonl and "
        "compare against the rolling baseline",
    )
    bench_history.add_argument(
        "--results-dir", default="benchmarks/results", metavar="DIR",
        help="directory holding <bench>.metrics.json artefacts",
    )
    bench_history.add_argument(
        "--history", default="BENCH_HISTORY.jsonl", metavar="PATH",
        help="history file to append to and compare against",
    )
    bench_history.add_argument(
        "--check", action="store_true",
        help="exit non-zero when a time-like measure regressed past "
        "the threshold vs its rolling baseline",
    )
    bench_history.add_argument(
        "--threshold", type=float, default=1.5,
        help="regression ratio: latest/baseline above this fails --check",
    )
    bench_history.add_argument(
        "--min-delta", type=float, default=0.05, metavar="SECONDS",
        help="absolute slowdown below this never fails (noise floor)",
    )
    bench_history.add_argument(
        "--window", type=int, default=5,
        help="rolling-baseline size (median of up to N previous runs)",
    )
    bench_history.add_argument(
        "--sha", metavar="GITSHA",
        help="record this sha instead of asking git",
    )
    bench_history.add_argument(
        "--no-append", action="store_true",
        help="only compare; do not add new rows to the history",
    )
    bench_history.add_argument(
        "--show", action="store_true",
        help="also print every history row for the touched benches",
    )

    pedigree = sub.add_parser("pedigree", help="extract one entity's pedigree")
    pedigree_source = pedigree.add_mutually_exclusive_group(required=True)
    pedigree_source.add_argument("--graph", help="pedigree graph JSON path")
    pedigree_source.add_argument(
        "--snapshot", metavar="DIR",
        help="read the pedigree graph from a snapshot store",
    )
    pedigree.add_argument("--entity", type=int, required=True)
    pedigree.add_argument("--generations", type=int, default=2)
    pedigree.add_argument(
        "--format", choices=("ascii", "dot", "gedcom", "json"), default="ascii"
    )

    anonymise = sub.add_parser("anonymise", help="anonymise a dataset for release")
    anonymise.add_argument("--data", required=True, help="input CSV stem")
    anonymise.add_argument("--out", required=True, help="output CSV stem")
    anonymise.add_argument("--k", type=int, default=10)
    anonymise.add_argument("--seed", type=int, default=0)

    snapshot = sub.add_parser(
        "snapshot", help="inspect and grow a snapshot store"
    )
    snapshot_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)

    def add_store_args(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--store", required=True, metavar="DIR", help="snapshot store root"
        )
        command.add_argument(
            "--id", metavar="SNAPSHOT", help="snapshot id (default: HEAD)"
        )

    snap_log = snapshot_sub.add_parser(
        "log", help="show the lineage chain of a snapshot"
    )
    add_store_args(snap_log)

    snap_inspect = snapshot_sub.add_parser(
        "inspect", help="print one snapshot's manifest details"
    )
    add_store_args(snap_inspect)

    snap_verify = snapshot_sub.add_parser(
        "verify", help="check payload checksums against the manifest"
    )
    add_store_args(snap_verify)

    snap_ingest = snapshot_sub.add_parser(
        "ingest", help="fold a delta dataset into a snapshot incrementally"
    )
    snap_ingest.add_argument(
        "--store", required=True, metavar="DIR", help="snapshot store root"
    )
    snap_ingest.add_argument(
        "--data", required=True, help="delta dataset CSV stem"
    )
    snap_ingest.add_argument(
        "--parent", metavar="SNAPSHOT",
        help="base snapshot id to ingest against (default: HEAD)",
    )
    snap_ingest.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="parallel resolution workers for the re-resolve step "
        "(0 = serial, N >= 1 = parallel, default: auto)",
    )
    snap_ingest.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard count for the child snapshot's sidecar (default: "
        "inherit the parent snapshot's partition)",
    )
    add_validation_flags(snap_ingest)
    add_supervise_flags(snap_ingest)
    add_telemetry_flags(snap_ingest)

    stream = sub.add_parser(
        "stream",
        help="continuously ingest spooled micro-batches and promote "
        "snapshots into a live replica",
    )
    stream.add_argument(
        "--spool", required=True, metavar="DIR",
        help="spool directory micro-batches arrive in (CSV pairs, "
        "optional .ready markers / batches.list manifest)",
    )
    stream.add_argument(
        "--store", required=True, metavar="DIR", help="snapshot store root"
    )
    stream.add_argument(
        "--serve-url", metavar="URL",
        help="replica base URL to promote new snapshots into via "
        "POST /v1/reload (omit to ingest without promotion)",
    )
    stream.add_argument(
        "--checkpoint", metavar="DIR",
        help="journal/checkpoint directory (default: <spool>/.stream)",
    )
    stream.add_argument(
        "--poll-interval", type=float, default=1.0, metavar="SECONDS",
        help="idle delay between spool polls (default: 1.0)",
    )
    stream.add_argument(
        "--max-lag-batches", type=int, default=4, metavar="N",
        help="backlog size beyond which pending batches coalesce into "
        "one ingest window (default: 4)",
    )
    stream.add_argument(
        "--no-coalesce", action="store_true",
        help="never merge batches; every batch becomes its own snapshot",
    )
    stream.add_argument(
        "--require-ready", action="store_true",
        help="only pick up batches with an explicit .ready marker "
        "(skip stable-file detection)",
    )
    stream.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="parallel resolution workers per ingest (0 = serial, "
        "default: auto)",
    )
    stream.add_argument(
        "--drain", action="store_true",
        help="exit once the spool is caught up and promoted (batch mode)",
    )
    stream.add_argument(
        "--max-batches", type=int, default=None, metavar="N",
        help="stop after ingesting N batches",
    )
    stream.add_argument(
        "--journal-max-entries", type=int, default=None, metavar="N",
        help="compact the ingest journal whenever its live entry count "
        "exceeds N (settled windows fold into a state header; "
        "exactly-once is preserved; default: never compact)",
    )
    add_validation_flags(stream)
    add_supervise_flags(stream)
    add_telemetry_flags(stream)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.data.loader import save_dataset_csv
    from repro.data.synthetic import (
        make_ios_census_dataset,
        make_ios_dataset,
        make_kil_dataset,
        make_tiny_dataset,
    )

    if args.dataset == "ios":
        dataset = make_ios_dataset(scale=args.scale, seed=args.seed)
    elif args.dataset == "kil":
        dataset = make_kil_dataset(scale=args.scale, seed=args.seed)
    elif args.dataset == "ios-census":
        dataset = make_ios_census_dataset(scale=args.scale, seed=args.seed)
    else:
        dataset = make_tiny_dataset(seed=args.seed)
    records_path, certs_path = save_dataset_csv(dataset, args.out)
    print(f"wrote {records_path} and {certs_path}")
    print(dataset.describe())
    return 0


def _telemetry(args: argparse.Namespace):
    """(trace, metrics) for a subcommand with telemetry flags, or Nones
    when no telemetry output was requested.  ``--trace-out`` attaches a
    streaming JSONL writer to the trace (fsync per span under
    ``SNAPS_OBS=durable``)."""
    trace_out = getattr(args, "trace_out", None)
    if not (args.trace or args.metrics_out or trace_out):
        return None, None
    from repro.obs import MetricsRegistry, TraceWriter, default_trace

    trace = default_trace(capture_memory=args.trace_memory)
    if trace_out and trace.enabled:
        trace.writer = TraceWriter(trace_out)
    return trace, MetricsRegistry()


def _profiler(args: argparse.Namespace):
    """A started :class:`SamplingProfiler` when ``--profile`` or
    ``SNAPS_PROFILE`` asks for one, else ``None``."""
    from repro.obs import SamplingProfiler, profile_from_env

    profiler = (
        SamplingProfiler()
        if getattr(args, "profile", False)
        else profile_from_env()
    )
    if profiler is not None:
        profiler.start()
    return profiler


def _finish_profile(args: argparse.Namespace, profiler, report: dict | None) -> None:
    """Stop a profiler, fold it into the run report, write collapsed
    stacks when ``--profile-out`` was given."""
    if profiler is None:
        return
    profiler.stop()
    if report is not None:
        report["profile"] = profiler.as_dict()
    profile_out = getattr(args, "profile_out", None)
    if profile_out:
        path = profiler.write_collapsed(profile_out)
        print(f"collapsed-stack profile written to {path}", file=sys.stderr)


def _emit_telemetry(args: argparse.Namespace, report: dict) -> None:
    from repro.obs import render_report, save_report

    if args.metrics_out:
        try:
            path = save_report(report, args.metrics_out)
        except OSError as exc:
            print(f"cannot write run report: {exc}", file=sys.stderr)
        else:
            print(f"run report written to {path}", file=sys.stderr)
    if args.trace:
        print(render_report(report), file=sys.stderr, end="")


def _load_checked(args: argparse.Namespace, metrics=None):
    """Dataset load honouring ``--strict``/``--quarantine``.

    Raises :class:`~repro.data.DatasetLoadError` in strict mode (the
    default); in quarantine mode dirty rows are dropped and summarised
    on stderr (and written to ``--quarantine-report`` when given).
    """
    from repro.data import load_dataset_checked

    dataset, report = load_dataset_checked(
        args.data,
        mode="quarantine" if args.quarantine else "strict",
        report_path=args.quarantine_report,
        metrics=metrics,
    )
    if report.issues:
        print(report.summary(), file=sys.stderr)
        if args.quarantine_report:
            print(
                f"quarantine report written to {args.quarantine_report}",
                file=sys.stderr,
            )
    return dataset


def _supervise_config(args: argparse.Namespace):
    """Worker-supervision config from flags, layered over the SNAPS_TASK_*
    environment (flags win where given)."""
    import dataclasses

    from repro.supervise import SuperviseConfig

    config = SuperviseConfig.from_env()
    overrides = {}
    if getattr(args, "task_timeout", None) is not None:
        overrides["task_timeout_s"] = args.task_timeout
    if getattr(args, "task_retries", None) is not None:
        overrides["max_task_retries"] = args.task_retries
    if getattr(args, "quarantine_dir", None):
        overrides["quarantine_dir"] = args.quarantine_dir
    return dataclasses.replace(config, **overrides) if overrides else config


def _parallel_config(args: argparse.Namespace):
    """ParallelConfig carrying the worker count plus supervision knobs.

    SNAPS_OVERSUBSCRIBE=1 lifts the pool-size CPU clamp so multi-worker
    chaos/smoke runs exercise real pools even on single-CPU boxes.
    """
    from repro.parallel import ParallelConfig

    return ParallelConfig(
        workers=args.workers,
        oversubscribe=os.environ.get("SNAPS_OVERSUBSCRIBE") == "1",
        supervise=_supervise_config(args),
    )


def _install_stop_handlers(checkpoint) -> None:
    """Route SIGINT/SIGTERM to the checkpointer as a graceful-stop
    request: the in-flight phase finishes and commits, then the run
    exits 128+signum with a --resume hint."""
    import signal

    def _handler(signum: int, frame) -> None:  # pragma: no cover - signal
        checkpoint.request_stop(signum)
        print(
            f"received signal {signum}: finishing the current phase, "
            "committing it, then stopping",
            file=sys.stderr,
        )

    signal.signal(signal.SIGINT, _handler)
    signal.signal(signal.SIGTERM, _handler)


def _cmd_resolve(args: argparse.Namespace) -> int:
    from repro.core import SnapsConfig, SnapsResolver
    from repro.core.checkpoint import (
        CheckpointError,
        GracefulExit,
        ResolveCheckpointer,
    )
    from repro.data import DatasetLoadError
    from repro.eval import evaluate_linkage
    from repro.faults import ResourceFault
    from repro.pedigree import build_pedigree_graph, save_pedigree_graph
    from repro.supervise import TaskQuarantinedError

    if not args.out and not args.snapshot_out:
        print(
            "resolve needs --out and/or --snapshot-out (nowhere to write)",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None and args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if not args.data and not args.resume:
        print("resolve needs --data (or --resume DIR)", file=sys.stderr)
        return 2
    trace, metrics = _telemetry(args)
    checkpoint = None
    try:
        if args.resume:
            # Dataset and flags come from the checkpoint itself, so the
            # resumed run cannot diverge from the interrupted one.
            checkpoint, dataset, config = ResolveCheckpointer.resume(args.resume)
            done = checkpoint.completed_prefix()
            print(
                f"resuming from {args.resume}: "
                f"{', '.join(done) if done else 'no'} phase(s) already done",
                file=sys.stderr,
            )
        else:
            dataset = _load_checked(args, metrics)
            config = SnapsConfig(
                merge_threshold=args.merge_threshold,
                use_propagation=not args.no_propagation,
                use_ambiguity=not args.no_ambiguity,
                use_relational=not args.no_relational,
                use_refinement=not args.no_refinement,
            )
            if args.checkpoint:
                checkpoint = ResolveCheckpointer.begin(
                    args.checkpoint, dataset, config
                )
    except DatasetLoadError as error:
        print(f"dataset error: {error}", file=sys.stderr)
        if not args.quarantine:
            print(
                "hint: re-run with --quarantine to drop the bad rows "
                "and continue (see --quarantine-report)",
                file=sys.stderr,
            )
        return 2
    except CheckpointError as error:
        print(f"checkpoint error: {error}", file=sys.stderr)
        return 2
    if checkpoint is not None:
        _install_stop_handlers(checkpoint)

    parallel = _parallel_config(args)
    profiler = _profiler(args)
    sharded = None
    try:
        if args.shards is not None:
            from repro.shard import resolve_sharded

            # Shard count is an execution detail: it is not part of the
            # config fingerprint, so a checkpoint taken serially resumes
            # sharded (and vice versa), and the output stays byte-identical.
            sharded = resolve_sharded(
                dataset,
                config,
                n_shards=args.shards,
                trace=trace,
                metrics=metrics,
                checkpoint=checkpoint,
                parallel=parallel,
            )
            result = sharded.result
            print(
                f"sharded across {sharded.plan.n_shards} shard(s), plan "
                f"{sharded.plan.fingerprint}: "
                f"{sharded.n_boundary_pairs} boundary pair(s)"
            )
            for stat in sharded.shard_stats:
                print(
                    f"  shard {stat['shard']}: {stat['records']} records "
                    f"(+{stat['passengers']} passengers), {stat['pairs']} pairs "
                    f"-> {stat['clusters']} clusters in {stat['elapsed']:.2f}s"
                )
        else:
            result = SnapsResolver(config).resolve(
                dataset,
                trace=trace,
                metrics=metrics,
                checkpoint=checkpoint,
                parallel=parallel,
            )
    except GracefulExit as stop:
        print(
            f"{stop}; resume with: repro resolve --resume "
            f"{args.checkpoint or args.resume}",
            file=sys.stderr,
        )
        return 128 + stop.signum
    except TaskQuarantinedError as error:
        print(f"supervised execution error: {error}", file=sys.stderr)
        return 2
    except ResourceFault as error:
        print(f"resource error: {error}", file=sys.stderr)
        return 2
    print(
        f"resolved {len(dataset)} records: |N_A|={result.n_atomic} "
        f"|N_R|={result.n_relational} in {result.timings.total():.1f}s"
    )
    for role_pair in ("Bp-Bp", "Bp-Dp"):
        truth = dataset.true_match_pairs(role_pair)
        if truth:
            ev = evaluate_linkage(result.matched_pairs(role_pair), truth, role_pair)
            print(
                f"  {role_pair}: P={ev.precision:.1f}% R={ev.recall:.1f}% "
                f"F*={ev.f_star:.1f}%"
            )
    graph = build_pedigree_graph(dataset, result.entities)
    if args.out:
        path = save_pedigree_graph(graph, args.out)
        print(f"pedigree graph ({len(graph)} entities) written to {path}")
    if args.snapshot_out:
        from repro.store import SnapshotStore

        sidecar_writer = None
        if sharded is not None:
            from repro.store.shards import write_shard_sidecar

            plan = sharded.plan
            sidecar_writer = lambda directory: write_shard_sidecar(  # noqa: E731
                directory, plan, result.entities
            )
        try:
            manifest = SnapshotStore(args.snapshot_out).save(
                result,
                graph=graph,
                config=config,
                trace=trace,
                metrics=metrics,
                sidecar_writer=sidecar_writer,
            )
        except ResourceFault as error:
            print(f"resource error: {error}", file=sys.stderr)
            return 2
        print(
            f"snapshot {manifest.snapshot_id} "
            f"({manifest.counts['entities']} entities) written to "
            f"{args.snapshot_out}"
        )
    if trace is not None or metrics is not None or profiler is not None:
        report = result.report(meta={"data": args.data or args.resume})
        _finish_profile(args, profiler, report)
        _emit_telemetry(args, report)
    return 0


def _load_snapshot_engine_parts(store_dir: str, graph_only: bool = False):
    """(graph, keyword_index, sim_index, manifest) from a store's HEAD."""
    from repro.store import SnapshotStore

    loaded = SnapshotStore(store_dir).load(
        artifacts=("graph",) if graph_only else ("graph", "indexes")
    )
    return loaded.graph, loaded.keyword_index, loaded.sim_index, loaded.manifest


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.pedigree import load_pedigree_graph
    from repro.query import Query, QueryEngine

    if args.snapshot:
        graph, keyword_index, sim_index, _ = _load_snapshot_engine_parts(
            args.snapshot
        )
    else:
        graph = load_pedigree_graph(args.graph)
        keyword_index = sim_index = None
    trace, metrics = _telemetry(args)
    engine = QueryEngine(
        graph,
        use_geographic_distance=args.geo,
        trace=trace,
        metrics=metrics,
        keyword_index=keyword_index,
        sim_index=sim_index,
    )
    query = Query(
        first_name=args.first_name,
        surname=args.surname,
        gender=args.gender,
        year_from=args.year_from,
        year_to=args.year_to,
        parish=args.parish,
        record_type=args.record_type,
    )
    hits = engine.search(query, top_m=args.top)
    if trace is not None or metrics is not None:
        from repro.obs import build_report

        _emit_telemetry(
            args,
            build_report(
                trace=trace,
                metrics=metrics,
                meta={"kind": "query", "graph": args.graph or args.snapshot},
            ),
        )
    if args.format == "json":
        import json

        from repro.serve.serialization import search_payload

        print(json.dumps(search_payload(hits), indent=2))
        return 0 if hits else 1
    if not hits:
        print("no matches")
        return 1
    print(f"{'entity':>8}  {'score':>7}  name")
    for hit in hits:
        print(
            f"{hit.entity.entity_id:>8}  {hit.score_percent:6.2f}%  "
            f"{hit.entity.display_name()}"
        )
    return 0


def _cmd_serve_prefork(args: argparse.Namespace, workers: int) -> int:
    from repro.serve import PreforkConfig, PreforkMaster, ServeConfig

    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        cache_ttl_s=args.cache_ttl or None,
        max_concurrency=args.max_concurrency,
        max_pending=args.max_pending,
        queue_timeout_s=args.queue_timeout,
        request_timeout_s=args.request_timeout or None,
        use_geographic_distance=args.geo,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        slo_availability=args.slo_availability,
        slo_latency_target=args.slo_latency_target,
        slo_deadline_s=args.slo_deadline,
        slo_window_s=args.slo_window,
    )
    master = PreforkMaster(
        args.snapshot,
        config=PreforkConfig(
            workers=workers,
            reuse_port=args.reuse_port,
            run_dir=args.run_dir,
        ),
        serve_config=serve_config,
    )
    print(
        f"prefork master: {workers} workers on "
        f"http://{args.host}:{args.port} (snapshot store {args.snapshot}, "
        f"run dir {master.run_dir}) — Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        master.start()
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry
    from repro.pedigree import load_pedigree_graph
    from repro.serve import ServeConfig, ServingApp, make_server

    workers = args.workers
    if args.prefork and not workers:
        workers = os.cpu_count() or 1
    if workers:
        if not args.snapshot:
            print(
                "error: --workers/--prefork requires --snapshot (the "
                "workers share one memory-mapped snapshot)",
                file=sys.stderr,
            )
            return 2
        return _cmd_serve_prefork(args, workers)
    store = None
    if args.snapshot:
        # Warm start: the snapshot carries the graph and both prebuilt
        # indexes, so boot performs no index construction at all.  The
        # store stays attached so POST /v1/reload can pick up new
        # snapshots without a restart.
        from repro.store import SnapshotStore

        store = SnapshotStore(args.snapshot)
        graph, keyword_index, sim_index, manifest = _load_snapshot_engine_parts(
            args.snapshot
        )
    else:
        graph = load_pedigree_graph(args.graph)
        keyword_index = sim_index = manifest = None
    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        cache_ttl_s=args.cache_ttl or None,
        max_concurrency=args.max_concurrency,
        max_pending=args.max_pending,
        queue_timeout_s=args.queue_timeout,
        request_timeout_s=args.request_timeout or None,
        use_geographic_distance=args.geo,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        slo_availability=args.slo_availability,
        slo_latency_target=args.slo_latency_target,
        slo_deadline_s=args.slo_deadline,
        slo_window_s=args.slo_window,
    )
    # /metricz always needs a live registry; the --trace/--metrics-out
    # flags only control what is emitted at shutdown.
    _, metrics = _telemetry(args)
    app = ServingApp(
        graph,
        config,
        metrics=metrics or MetricsRegistry(),
        keyword_index=keyword_index,
        sim_index=sim_index,
        store=store,
        manifest=manifest,
    )
    server = make_server(app, config.host, config.port)
    host, port = server.server_address[:2]
    print(
        f"serving {len(graph)} entities on http://{host}:{port} "
        f"(cache={config.cache_size}, concurrency={config.max_concurrency}) "
        "— Ctrl-C to stop",
        file=sys.stderr,
    )
    profiler = _profiler(args)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        if args.trace or args.metrics_out or profiler is not None:
            from repro.obs import build_report

            report = build_report(
                metrics=app.metrics,
                meta={"kind": "serve", "graph": args.graph or args.snapshot},
            )
            _finish_profile(args, profiler, report)
            _emit_telemetry(args, report)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import load_report, render_prometheus, render_report

    try:
        report = load_report(args.report)
    except (OSError, ValueError) as error:
        print(f"cannot read run report: {error}", file=sys.stderr)
        return 1
    if args.format == "prom":
        info = {
            key: str(value)
            for key, value in report.get("meta", {}).items()
            if isinstance(value, (str, int)) and not key.startswith("time_")
        }
        print(render_prometheus(report.get("metrics", {}), info=info or None), end="")
        return 0
    print(render_report(report), end="")
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    import glob
    import os
    from datetime import datetime, timezone

    from repro.obs import load_report
    from repro.obs.history import (
        append_rows,
        compute_deltas,
        find_regressions,
        git_sha,
        history_row,
        load_history,
    )

    pattern = os.path.join(args.results_dir, "*.metrics.json")
    sources = sorted(glob.glob(pattern))
    sha = args.sha if args.sha else git_sha()
    recorded_at = datetime.now(timezone.utc).isoformat()
    rows = []
    for source in sources:
        try:
            report = load_report(source)
        except (OSError, ValueError) as error:
            print(f"skipping {source}: {error}", file=sys.stderr)
            continue
        rows.append(history_row(report, source, recorded_at, sha=sha))
    if not sources:
        print(f"no *.metrics.json artefacts under {args.results_dir}", file=sys.stderr)
    try:
        if args.no_append:
            appended = []
        else:
            appended = append_rows(args.history, rows)
        history = load_history(args.history)
    except ValueError as error:
        print(f"history error: {error}", file=sys.stderr)
        return 1
    print(
        f"{args.history}: {len(history)} row(s), {len(appended)} new"
    )
    if args.show:
        for row in history:
            print(
                f"  {row['recorded_at']}  {row['bench']}"
                f" scale={row.get('scale')} sha={row.get('git_sha')}"
                f" measures={len(row.get('measures', {}))}"
            )
    deltas = compute_deltas(history, window=args.window)
    for entry in deltas:
        if not entry["baseline_runs"]:
            print(
                f"  {entry['bench']} (scale={entry['scale']}): first run, "
                "no baseline yet"
            )
            continue
        times = {
            name: cmp
            for name, cmp in entry["measures"].items()
            if name.startswith("span:") or name.startswith("meta:time_")
        }
        shown = sorted(
            times.items(), key=lambda kv: -abs(kv[1]["delta"])
        )[:4]
        print(
            f"  {entry['bench']} (scale={entry['scale']}, "
            f"baseline of {entry['baseline_runs']}):"
        )
        for name, cmp in shown:
            ratio = cmp["ratio"]
            print(
                f"    {name:<38} {cmp['value']:>9.3f} vs {cmp['baseline']:>9.3f}"
                f"  ({'x%.2f' % ratio if ratio is not None else 'n/a'})"
            )
    if args.check:
        regressions = find_regressions(
            deltas, threshold=args.threshold, min_delta=args.min_delta
        )
        if regressions:
            print(f"REGRESSION: {len(regressions)} measure(s) past x{args.threshold}:")
            for reg in regressions:
                print(
                    f"  {reg['bench']} {reg['measure']}: "
                    f"{reg['value']:.3f} vs baseline {reg['baseline']:.3f} "
                    f"(x{reg['ratio']:.2f})"
                )
            return 3
        print(f"regression check passed (threshold x{args.threshold})")
    return 0


def _cmd_pedigree(args: argparse.Namespace) -> int:
    from repro.pedigree import (
        extract_pedigree,
        load_pedigree_graph,
        render_ascii_tree,
        render_dot,
        render_gedcom,
    )

    if args.snapshot:
        graph, _, _, _ = _load_snapshot_engine_parts(args.snapshot, graph_only=True)
    else:
        graph = load_pedigree_graph(args.graph)
    try:
        pedigree = extract_pedigree(graph, args.entity, args.generations)
    except KeyError:
        print(f"unknown entity id: {args.entity}", file=sys.stderr)
        return 1
    if args.format == "json":
        import json

        from repro.serve.serialization import pedigree_payload

        print(json.dumps(pedigree_payload(pedigree), indent=2))
    elif args.format == "dot":
        print(render_dot(pedigree))
    elif args.format == "gedcom":
        print(render_gedcom(pedigree))
    else:
        print(render_ascii_tree(pedigree))
    return 0


def _cmd_anonymise(args: argparse.Namespace) -> int:
    from repro.anonymize import anonymise_dataset
    from repro.data.loader import load_dataset_csv, save_dataset_csv

    dataset = load_dataset_csv(args.data)
    anonymised, report = anonymise_dataset(dataset, k=args.k, seed=args.seed)
    records_path, certs_path = save_dataset_csv(anonymised, args.out)
    print(f"wrote {records_path} and {certs_path}")
    print(
        f"mapped {report.n_female_names_mapped + report.n_male_names_mapped} "
        f"first names, {report.n_surnames_mapped} surnames; "
        f"generalised {report.n_causes_generalised} causes of death"
    )
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.store import SnapshotError, SnapshotStore

    store = SnapshotStore(args.store)
    try:
        if args.snapshot_command == "log":
            for manifest in store.log(args.id):
                head = " (HEAD)" if manifest.snapshot_id == store.latest() else ""
                print(f"snapshot {manifest.snapshot_id}{head}")
                print(f"  parent:  {manifest.parent or '(root)'}")
                print(f"  created: {manifest.created_at}")
                print(
                    f"  dataset: {manifest.dataset.get('name')} "
                    f"({manifest.dataset.get('records')} records)"
                )
                print(
                    f"  counts:  {manifest.counts.get('entities')} entities, "
                    f"{manifest.counts.get('clusters')} clusters"
                )
            return 0
        if args.snapshot_command == "inspect":
            from repro.store.shards import has_shard_sidecar, load_merge_manifest

            manifest = store.manifest(args.id)
            depth = len(store.log(manifest.snapshot_id)) - 1
            print(f"snapshot {manifest.snapshot_id}")
            print(f"  schema version:     {manifest.schema_version}")
            print(f"  parent:             {manifest.parent or '(root)'}")
            print(f"  chain depth:        {depth} ancestor(s) to root")
            print(f"  created:            {manifest.created_at}")
            print(f"  config fingerprint: {manifest.config_fingerprint}")
            print(
                f"  dataset:            {manifest.dataset.get('name')} "
                f"({manifest.dataset.get('records')} records, "
                f"{manifest.dataset.get('certificates')} certificates)"
            )
            print(f"  dataset sha256:     {manifest.dataset.get('sha256')}")
            for key, value in sorted(manifest.counts.items()):
                print(f"  {key + ':':<19} {value}")
            print("  artifacts:")
            total_bytes = 0
            for name, blob in sorted(manifest.artifacts.items()):
                total_bytes += blob["bytes"]
                print(
                    f"    {name:<16} {blob['path']:<22} "
                    f"{blob['bytes']:>9} B  sha256 {blob['sha256'][:16]}…"
                )
            print(f"    {'(total)':<16} {'':<22} {total_bytes:>9} B")
            directory = store.path_of(manifest.snapshot_id)
            if has_shard_sidecar(directory):
                merge = load_merge_manifest(directory)
                print(
                    f"  shards:             {merge['n_shards']} "
                    f"(partition {merge['partition_fingerprint']}, "
                    f"{merge['covered_records']} covered records)"
                )
                for entry in sorted(merge["shards"], key=lambda e: e["shard"]):
                    print(
                        f"    shard {entry['shard']:<10} {entry['path']:<22} "
                        f"{entry['bytes']:>9} B  {entry['records']} records, "
                        f"{entry['clusters']} clusters"
                    )
            return 0
        if args.snapshot_command == "verify":
            snapshot_id = args.id or store.latest()
            problems = store.verify(args.id)
            if problems:
                print(f"snapshot {snapshot_id}: {len(problems)} problem(s)")
                for problem in problems:
                    print(f"  - {problem}")
                return 1
            print(f"snapshot {snapshot_id}: OK")
            return 0
        # ingest
        from repro.data import DatasetLoadError
        from repro.store import IncrementalResolver

        trace, metrics = _telemetry(args)
        try:
            delta = _load_checked(args, metrics)
        except DatasetLoadError as error:
            print(f"dataset error: {error}", file=sys.stderr)
            if not args.quarantine:
                print(
                    "hint: re-run with --quarantine to drop the bad rows "
                    "and continue (see --quarantine-report)",
                    file=sys.stderr,
                )
            return 2
        profiler = _profiler(args)
        from repro.faults import ResourceFault
        from repro.supervise import TaskQuarantinedError

        try:
            result = IncrementalResolver(store).ingest(
                delta,
                parent=args.parent,
                trace=trace,
                metrics=metrics,
                workers=args.workers,
                shards=args.shards,
                supervise=_supervise_config(args),
            )
        except TaskQuarantinedError as error:
            print(f"supervised execution error: {error}", file=sys.stderr)
            return 2
        except ResourceFault as error:
            print(f"resource error: {error}", file=sys.stderr)
            return 2
        stats = result.stats
        print(
            f"ingested {stats['delta_records']} delta records: re-resolved "
            f"{stats['dirty_pairs']}/{stats['candidate_pairs']} pairs "
            f"({stats['dirty_records']}/{stats['combined_records']} records "
            f"dirty), replayed {stats['replayed_clusters']} clean clusters"
        )
        if "shards_total" in stats:
            print(
                f"  shards: re-resolved {stats['shards_reresolved']}"
                f"/{stats['shards_total']} dirty shard(s); the rest "
                f"replayed untouched"
            )
        print(
            f"snapshot {result.manifest.snapshot_id} written "
            f"(parent {result.manifest.parent})"
        )
        if trace is not None or metrics is not None or profiler is not None:
            report = result.linkage.report(
                meta={"kind": "ingest", "store": args.store, "data": args.data}
            )
            _finish_profile(args, profiler, report)
            _emit_telemetry(args, report)
        return 0
    except (SnapshotError, ValueError) as error:
        print(f"snapshot error: {error}", file=sys.stderr)
        return 1


def _cmd_stream(args: argparse.Namespace) -> int:
    import signal

    from repro.store import SnapshotError, SnapshotStore
    from repro.stream import StreamConfig, StreamPipeline

    try:
        config = StreamConfig(
            spool=args.spool,
            serve_url=args.serve_url,
            checkpoint=args.checkpoint,
            poll_interval_s=args.poll_interval,
            max_lag_batches=args.max_lag_batches,
            coalesce=not args.no_coalesce,
            workers=args.workers,
            validation="quarantine" if args.quarantine else "strict",
            require_ready=args.require_ready,
            drain=args.drain,
            max_batches=args.max_batches,
            journal_max_entries=args.journal_max_entries,
            supervise=_supervise_config(args),
        )
    except ValueError as error:
        print(f"stream error: {error}", file=sys.stderr)
        return 2
    trace, metrics = _telemetry(args)
    profiler = _profiler(args)
    pipeline = StreamPipeline(
        SnapshotStore(args.store), config, metrics=metrics, trace=trace
    )

    def _request_stop(signum, frame):  # pragma: no cover - signal path
        print("stopping after the in-flight window...", file=sys.stderr)
        pipeline.stop()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _request_stop)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        ingested = pipeline.run()
    except SnapshotError as error:
        print(f"stream error: {error}", file=sys.stderr)
        return 1
    lineage = pipeline.journal.snapshot_lineage()
    print(
        f"ingested {ingested} batch(es) into {len(lineage)} snapshot(s)"
        + (f"; HEAD {lineage[-1]}" if lineage else "")
    )
    unpromoted = pipeline.journal.unpromoted() if args.serve_url else []
    if unpromoted:
        print(
            f"warning: {len(unpromoted)} window(s) committed but not "
            "promoted (replica unreachable?); re-run to retry",
            file=sys.stderr,
        )
    if trace is not None or metrics is not None or profiler is not None:
        from repro.obs import build_report

        report = build_report(
            trace,
            pipeline.metrics,
            meta={"kind": "stream", "spool": str(args.spool), "store": args.store},
        )
        _finish_profile(args, profiler, report)
        _emit_telemetry(args, report)
    return 1 if unpromoted else 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "resolve": _cmd_resolve,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "report": _cmd_report,
    "bench-history": _cmd_bench_history,
    "pedigree": _cmd_pedigree,
    "anonymise": _cmd_anonymise,
    "snapshot": _cmd_snapshot,
    "stream": _cmd_stream,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.faults import install_from_env

    # Arm fault injection when SNAPS_FAULTS is set (chaos runs only;
    # a no-op — and no injector churn — for everyone else).
    install_from_env()
    args = build_parser().parse_args(argv)
    if args.verbose:
        from repro.obs.logs import configure

        configure(args.verbose)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pager/grep closed the pipe early (e.g.
        # `repro snapshot inspect | head`); exit quietly like other
        # well-behaved CLI tools.  Detach stdout so the interpreter's
        # shutdown flush doesn't raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
