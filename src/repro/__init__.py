"""SNAPS reproduction: unsupervised graph-based entity resolution for
family pedigree search (Kirielle et al., EDBT 2022).

Public API quick tour::

    from repro import make_ios_dataset, SnapsResolver, SnapsConfig
    from repro.pedigree import build_pedigree_graph, extract_pedigree
    from repro.query import QueryEngine, Query

    dataset = make_ios_dataset(scale=0.1)
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    pedigree_graph = build_pedigree_graph(dataset, result.entities)
    engine = QueryEngine(pedigree_graph)
    hits = engine.search(Query(first_name="mary", surname="macdonald"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the paper
reproduction results.
"""

__version__ = "1.0.0"

# Lazy re-exports (PEP 562): importing ``repro`` stays cheap and free of
# import cycles; symbols resolve from their home package on first access.
_EXPORTS = {
    "Certificate": "repro.data",
    "CertificateType": "repro.data",
    "Dataset": "repro.data",
    "Record": "repro.data",
    "Role": "repro.data",
    "make_ios_dataset": "repro.data",
    "make_kil_dataset": "repro.data",
    "make_bhic_dataset": "repro.data",
    "make_tiny_dataset": "repro.data",
    "SnapsConfig": "repro.core",
    "SnapsResolver": "repro.core",
    "LinkageResult": "repro.core",
    "LinkageEvaluation": "repro.eval",
    "evaluate_linkage": "repro.eval",
    "make_ios_census_dataset": "repro.data",
    "build_pedigree_graph": "repro.pedigree",
    "extract_pedigree": "repro.pedigree",
    "render_ascii_tree": "repro.pedigree",
    "render_dot": "repro.pedigree",
    "render_gedcom": "repro.pedigree",
    "save_pedigree_graph": "repro.pedigree",
    "load_pedigree_graph": "repro.pedigree",
    "QueryEngine": "repro.query",
    "Query": "repro.query",
    "SnapshotStore": "repro.store",
    "IncrementalResolver": "repro.store",
    "Manifest": "repro.store",
    "SnapshotError": "repro.store",
    "SnapshotIntegrityError": "repro.store",
    "SnapshotSchemaError": "repro.store",
    "Trace": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "build_report": "repro.obs",
    "render_report": "repro.obs",
    "save_report": "repro.obs",
    "load_report": "repro.obs",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
