"""Name pools, gazetteers, occupations, and causes of death for the
population simulator.

The pools mimic the characteristics reported in the paper's Table 1 and
Figure 2 for 19th-century Scottish registers: a *small* set of distinct
names with a *very skewed* frequency distribution (the top first name and
surname each cover >8% of records on the Isle of Skye).  Sampling uses a
Zipf-like weighting over these ordered pools — earlier entries are far more
frequent — so the synthetic data reproduces the ambiguity challenge that
motivates the disambiguation similarity (AMB).

``PUBLIC_*`` pools are a disjoint name universe standing in for the US
voter database the paper uses as the public source for anonymisation.
"""

from __future__ import annotations

from repro.similarity.geo import GeoPoint

__all__ = [
    "FEMALE_FIRST_NAMES",
    "MALE_FIRST_NAMES",
    "SURNAMES",
    "PARISHES",
    "PARISH_COORDINATES",
    "ADDRESSES_BY_PARISH",
    "OCCUPATIONS_MALE",
    "OCCUPATIONS_FEMALE",
    "CAUSES_OF_DEATH_COMMON",
    "CAUSES_OF_DEATH_RARE",
    "NAME_VARIANTS",
    "PUBLIC_FEMALE_FIRST_NAMES",
    "PUBLIC_MALE_FIRST_NAMES",
    "PUBLIC_SURNAMES",
    "zipf_weights",
]

# Ordered by (intended) frequency, most common first.
_FEMALE_BASE = [
    "mary", "margaret", "catherine", "ann", "christina", "janet", "elizabeth",
    "isabella", "jane", "flora", "marion", "helen", "agnes", "jessie",
    "effie", "euphemia", "rachel", "johanna", "mary ann", "grace",
    "barbara", "sarah", "julia", "peggy", "kate", "annabella", "henrietta",
    "williamina", "dolina", "christy", "lexy", "jemima", "charlotte",
    "wilhelmina", "joan", "betsy", "sophia", "harriet", "lilias", "mor",
    "marjory", "janetta", "susan", "ellen", "martha", "marianne", "frances",
    "lucy", "alice", "emily", "jean", "eliza", "marie", "dorothea",
    "matilda", "louisa", "victoria", "edith", "florence", "amelia",
    "beatrice", "caroline", "clara", "emma", "esther", "fanny", "georgina",
    "hannah", "ida", "josephine", "lydia", "mabel", "nellie", "olive",
    "phoebe", "rose", "ruth", "selina", "teresa", "ursula", "violet",
]

_MALE_BASE = [
    "john", "donald", "alexander", "angus", "william", "malcolm", "james",
    "norman", "murdo", "neil", "duncan", "kenneth", "roderick", "archibald",
    "hugh", "peter", "charles", "ewen", "lachlan", "allan",
    "samuel", "farquhar", "hector", "george", "robert", "david", "thomas",
    "finlay", "dugald", "martin", "ronald", "colin", "andrew", "torquil",
    "alasdair", "gilbert", "evander", "simon", "aeneas", "coll",
    "edward", "francis", "frederick", "henry", "joseph", "matthew",
    "michael", "patrick", "philip", "richard", "stephen", "walter",
    "adam", "albert", "arthur", "benjamin", "daniel", "ernest", "harry",
    "herbert", "isaac", "jacob", "lewis", "nathaniel", "oliver", "owen",
    "percy", "reginald", "sidney", "theodore", "victor", "vincent",
    "abraham", "alfred", "augustus", "bernard", "cecil", "clement", "cyril",
]

# Scottish registers are full of "-ina" feminisations of male names
# (Donaldina, Angusina, Murdina ...); appending them gives the female pool
# a realistic long tail of rarer names.
FEMALE_FIRST_NAMES = _FEMALE_BASE + sorted(
    {
        (m[:-1] if m.endswith(("a", "e", "o")) else m) + "ina"
        for m in _MALE_BASE[:40]
    }
    # A few feminisations coincide with base names (williamina, georgina).
    - {n for n in _FEMALE_BASE}
)

MALE_FIRST_NAMES = list(_MALE_BASE)

_SURNAME_BASE = [
    "macdonald", "macleod", "mackinnon", "nicolson", "mackenzie", "mackay",
    "matheson", "campbell", "beaton", "macpherson", "ross", "stewart",
    "macrae", "gillies", "maclean", "robertson", "fraser", "grant",
    "ferguson", "macintyre", "munro", "cameron", "macinnes", "maclennan",
    "chisholm", "macaskill", "mclachlan", "buchanan", "macmillan", "morrison",
    "smith", "brown", "wilson", "thomson", "anderson", "scott", "murray",
    "taylor", "mitchell", "walker", "paterson", "watson", "johnston",
    "gibson", "hamilton", "graham", "kerr", "henderson", "simpson", "boyd",
    "macgregor", "macfarlane", "macarthur", "maccallum", "macnab",
    "macewan", "macgillivray", "macquarrie", "macsween", "maccrimmon",
    "maccuish", "macharold", "shaw", "urquhart", "sutherland", "sinclair",
    "gunn", "bain", "bruce", "craig", "davidson", "dewar", "drummond",
    "elliot", "forbes", "galbraith", "gordon", "hay", "innes", "irvine",
    "keith", "kennedy", "lamont", "leitch", "lindsay", "logan", "lyon",
    "maitland", "maxwell", "menzies", "moffat", "napier", "ogilvie",
    "pringle", "rankin", "reid", "rutherford", "spence", "tait", "wallace",
    "wemyss", "whyte", "young",
]

SURNAMES = list(_SURNAME_BASE)

# Isle-of-Skye-flavoured registration districts with rough coordinates
# (the synthetic gazetteer the geo comparator works against).
PARISH_COORDINATES: dict[str, GeoPoint] = {
    "portree": GeoPoint(57.413, -6.196),
    "duirinish": GeoPoint(57.440, -6.580),
    "snizort": GeoPoint(57.480, -6.320),
    "kilmuir": GeoPoint(57.655, -6.340),
    "strath": GeoPoint(57.230, -5.980),
    "sleat": GeoPoint(57.120, -5.890),
    "bracadale": GeoPoint(57.340, -6.400),
    "kilmore": GeoPoint(57.140, -5.862),
    "stenscholl": GeoPoint(57.620, -6.170),
    "raasay": GeoPoint(57.395, -6.040),
    "uig": GeoPoint(57.586, -6.363),
    "dunvegan": GeoPoint(57.436, -6.587),
}

PARISHES = list(PARISH_COORDINATES)

# A handful of address stems per parish; combined with house numbers by the
# simulator so address frequencies stay skewed but not degenerate.
ADDRESSES_BY_PARISH: dict[str, list[str]] = {
    parish: [
        f"{stem} {parish}"
        for stem in (
            "main street", "high street", "church road", "shore road",
            "mill lane", "harbour view", "croft", "glen road", "bridge end",
            "school brae",
        )
    ]
    for parish in PARISHES
}

OCCUPATIONS_MALE = [
    "crofter", "fisherman", "agricultural labourer", "shepherd", "weaver",
    "shoemaker", "carpenter", "blacksmith", "mason", "tailor", "merchant",
    "seaman", "miner", "gamekeeper", "farmer", "joiner", "cooper",
    "ploughman", "slater", "teacher", "minister", "boatman", "innkeeper",
    "carter", "baker",
]

OCCUPATIONS_FEMALE = [
    "domestic servant", "housekeeper", "dressmaker", "knitter", "spinner",
    "fish worker", "dairy maid", "field worker", "laundress", "midwife",
    "weaver", "teacher", "seamstress", "cook", "nurse",
]

# Causes of death: common ones satisfy k-anonymity; rare ones are the
# sensitive tail that the anonymiser generalises (paper Section 9).
CAUSES_OF_DEATH_COMMON = [
    "phthisis", "bronchitis", "old age", "whooping cough", "measles",
    "scarlet fever", "typhus fever", "pneumonia", "debility", "convulsions",
    "heart disease", "dropsy", "paralysis", "croup", "diarrhoea",
    "typhoid fever", "cancer", "influenza", "asthma", "apoplexy",
    "smallpox", "tuberculosis", "enteritis", "jaundice", "rheumatic fever",
]

CAUSES_OF_DEATH_RARE = [
    "drowned at sea near the harbour", "killed by fall from cart",
    "burned in house fire", "struck by lightning", "kicked by horse",
    "crushed in quarry accident", "found dead on the moor",
    "poisoned by tainted shellfish", "fell from cliff while fowling",
    "killed in mill machinery", "died of exposure in snowstorm",
    "gunshot wound by misadventure", "scalded by boiling water",
    "suffocated in peat bog", "thrown from gig on market day",
]

# Spelling variants seen in transcriptions of Scottish registers; the
# corruption model swaps a value for one of its variants.  Keys and values
# are all lowercase.
NAME_VARIANTS: dict[str, list[str]] = {
    "catherine": ["cathrine", "katherine", "catharine", "katie"],
    "margaret": ["margret", "maggie", "margt"],
    "mary": ["marry", "maire"],
    "christina": ["christy", "christena", "chirsty"],
    "isabella": ["isobel", "ishbel", "bella"],
    "elizabeth": ["elisabeth", "eliza", "betsy"],
    "janet": ["jessie", "jannet"],
    "euphemia": ["effie", "euphemie"],
    "ann": ["anne", "anna"],
    "john": ["jon", "jhon", "iain"],
    "alexander": ["alexr", "alex", "sandy"],
    "donald": ["donld", "domhnall"],
    "angus": ["aonghas", "anguss"],
    "william": ["wm", "willm", "willie"],
    "kenneth": ["keneth", "kennith"],
    "roderick": ["rodk", "rory"],
    "archibald": ["archd", "archie"],
    "macdonald": ["mcdonald", "m'donald", "macdonal"],
    "macleod": ["mcleod", "m'leod", "maclead"],
    "mackinnon": ["mckinnon", "m'kinnon"],
    "mackenzie": ["mckenzie", "m'kenzie", "mackenzy"],
    "mackay": ["mckay", "m'kay", "mackey"],
    "macpherson": ["mcpherson", "m'pherson"],
    "macrae": ["mcrae", "m'rae", "macrea"],
    "maclean": ["mclean", "m'lean", "maclaine"],
    "macintyre": ["mcintyre", "m'intyre"],
    "nicolson": ["nicholson", "nickolson"],
    "matheson": ["mathieson", "mathison"],
    "thomson": ["thompson"],
    "johnston": ["johnstone"],
}

# ---------------------------------------------------------------------------
# Public name universe for the anonymiser (stands in for the US voter data).
# Deliberately disjoint from the Scottish pools above.
# ---------------------------------------------------------------------------

_PUBLIC_FEMALE_RAW = [
    "jennifer", "linda", "patricia", "barbra", "susan", "deborah", "carol",
    "nancy", "karen", "donna", "cynthia", "sandra", "pamela", "sharon",
    "kathleen", "brenda", "diane", "janice", "carolyn", "judith",
    "michelle", "laura", "amy", "angela", "melissa", "rebecca", "stephanie",
    "dorothy", "virginia", "judy", "cheryl", "katie", "gloria", "teresa",
    "doris", "evelyn", "joyce", "mildred", "lucille", "edna",
]

_PUBLIC_MALE_RAW = [
    "michael", "richard", "mark", "steven", "gary", "larry", "dennis",
    "jerry", "frank", "raymond", "gregory", "joshua", "dougls", "henry",
    "carl", "arthur", "ryan", "roger", "joe", "juan",
    "jack", "albert", "jonathan", "justin", "terry", "gerald", "keith",
    "harold", "doyd", "ralph", "roy", "louis", "philip", "eugene", "wayne",
    "randy", "howard", "vincent", "russell", "bobby",
]

_PUBLIC_SURNAMES_RAW = [
    "miller", "davis", "garcia", "rodriguez", "martinez", "hernandez",
    "lopez", "gonzalez", "perez", "sanchez", "ramirez", "torres", "flores",
    "rivera", "gomez", "diaz", "cruz", "reyes", "morales", "ortiz",
    "jackson", "harris", "martin", "lee", "lewis", "clark", "hall",
    "allen", "young", "king", "wright", "hill", "green", "adams", "baker",
    "nelson", "carter", "madgar", "macdougall", "mcdufford", "martone",
    "martinat", "moufid",
]


# The public universes must be disjoint from the sensitive (Scottish)
# pools — the whole point of the mapping is that no sensitive name can
# appear in the published data.  Filter defensively in case the curated
# lists drift.
_SENSITIVE_TOKENS = (
    {t for n in FEMALE_FIRST_NAMES for t in n.split()}
    | {t for n in MALE_FIRST_NAMES for t in n.split()}
    | set(SURNAMES)
)
PUBLIC_FEMALE_FIRST_NAMES = [
    n for n in _PUBLIC_FEMALE_RAW if n not in _SENSITIVE_TOKENS
]
PUBLIC_MALE_FIRST_NAMES = [
    n for n in _PUBLIC_MALE_RAW if n not in _SENSITIVE_TOKENS
]
PUBLIC_SURNAMES = [n for n in _PUBLIC_SURNAMES_RAW if n not in _SENSITIVE_TOKENS]


def zipf_weights(n: int, exponent: float = 0.85) -> list[float]:
    """Zipf-like sampling weights for an ordered pool of ``n`` items.

    ``weight[i] ∝ 1 / (i + 1)^exponent``.  With pools of 100+ names and an
    exponent slightly below 1, the most common name covers roughly 8% of
    draws — the Figure-2 shape of the Isle of Skye registers.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    raw = [1.0 / (i + 1) ** exponent for i in range(n)]
    total = sum(raw)
    return [w / total for w in raw]
