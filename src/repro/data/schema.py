"""Attribute schema: Must / Core / Extra categories and weights.

The paper (Section 4.2.3) categorises QID attributes by their importance
in the ER process: *Must* attributes (first name) need high similarity for
a link, *Core* attributes (surname) may be somewhat lower (surnames change
at marriage), *Extra* attributes (occupation, address) add supporting
evidence.  Equation (1) averages within each category and combines the
category averages with weights ``w_M``, ``w_C``, ``w_E``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AttributeCategory", "AttributeSpec", "Schema", "default_schema"]


class AttributeCategory(enum.Enum):
    """Importance class of a QID attribute (paper Section 4.2.3)."""

    MUST = "must"
    CORE = "core"
    EXTRA = "extra"


@dataclass(frozen=True)
class AttributeSpec:
    """Declares one QID attribute used in linkage."""

    name: str
    category: AttributeCategory


@dataclass
class Schema:
    """The set of QID attributes compared in linkage plus category weights.

    The default weights are the paper's worked example: ``w_M=0.5``,
    ``w_C=0.3``, ``w_E=0.2``.
    """

    attributes: tuple[AttributeSpec, ...]
    weight_must: float = 0.5
    weight_core: float = 0.3
    weight_extra: float = 0.2

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("schema needs at least one attribute")
        for weight in (self.weight_must, self.weight_core, self.weight_extra):
            if weight < 0:
                raise ValueError(f"weights must be non-negative, got {weight}")
        if self.weight_must + self.weight_core + self.weight_extra <= 0:
            raise ValueError("at least one category weight must be positive")
        names = [spec.name for spec in self.attributes]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate attribute names in schema: {names}")

    def category(self, attribute: str) -> AttributeCategory | None:
        """Category of ``attribute``, or None if not part of the schema."""
        for spec in self.attributes:
            if spec.name == attribute:
                return spec.category
        return None

    def names(self) -> list[str]:
        """All attribute names in declaration order."""
        return [spec.name for spec in self.attributes]

    def names_in(self, category: AttributeCategory) -> list[str]:
        """Attribute names in ``category``."""
        return [s.name for s in self.attributes if s.category is category]

    def weight(self, category: AttributeCategory) -> float:
        """Weight assigned to ``category``."""
        return {
            AttributeCategory.MUST: self.weight_must,
            AttributeCategory.CORE: self.weight_core,
            AttributeCategory.EXTRA: self.weight_extra,
        }[category]


def default_schema() -> Schema:
    """Schema matching the paper's attribute usage on the Scottish data.

    First name is *Must* (complete, stable over time); surname is *Core*
    (changes at marriage); address/parish/occupation are *Extra* (often
    missing, change over time).
    """
    return Schema(
        attributes=(
            AttributeSpec("first_name", AttributeCategory.MUST),
            AttributeSpec("surname", AttributeCategory.CORE),
            AttributeSpec("parish", AttributeCategory.EXTRA),
            AttributeSpec("address", AttributeCategory.EXTRA),
            AttributeSpec("occupation", AttributeCategory.EXTRA),
        )
    )
